"""Spurious-tuple loss ``ρ(R, S)`` (Eq. 1) and per-split losses (Eq. 28).

``ρ(R, S) = (|⋈ᵢ R[Ωᵢ]| − |R|) / |R|`` counts the relative number of
tuples the re-joined decomposition invents.  Join sizes are obtained by
counting (never materializing): message passing over the join tree for the
full schema, and the columnar two-projection counter
(:func:`~repro.relations.join.split_join_size`) for the splits of the
tree's support.  All counts are memoized on the relation's shared
:class:`~repro.core.evalcontext.EvalContext`, so one analysis — or many
evaluations against the same instance — pays for each join size once.

The pre-engine row-based counters survive in :mod:`repro.core.legacy`
(``split_loss_legacy``, ``spurious_loss_legacy``) as the pinned reference
the equivalence suite compares against.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.evalcontext import EvalContext
from repro.errors import DistributionError
from repro.jointrees.jointree import JoinTree
from repro.relations.join import materialized_acyclic_join
from repro.relations.relation import Relation


def spurious_count(
    relation: Relation, jointree: JoinTree, *, context: EvalContext | None = None
) -> int:
    """``|⋈ᵢ R[Ωᵢ]| − |R|`` — the number of spurious tuples.

    Always non-negative: the join of projections contains ``R``.
    """
    if relation.is_empty():
        return 0
    if context is None:
        context = EvalContext.for_relation(relation)
    return context.spurious_count(jointree)


def spurious_loss(
    relation: Relation, jointree: JoinTree, *, context: EvalContext | None = None
) -> float:
    """``ρ(R, S)`` (Eq. 1) for the schema defined by ``jointree``."""
    if relation.is_empty():
        raise DistributionError("ρ(R, S) is undefined for an empty relation")
    if context is None:
        context = EvalContext.for_relation(relation)
    return context.spurious_loss(jointree)


def _require_split_cover(
    relation: Relation, left: Iterable[str], right: Iterable[str]
) -> tuple[set[str], set[str]]:
    """Validate a two-projection split; returns the sides as sets."""
    if relation.is_empty():
        raise DistributionError("ρ(R, φ) is undefined for an empty relation")
    left = set(left)
    right = set(right)
    missing = relation.schema.name_set - (left | right)
    if missing:
        raise DistributionError(
            f"split must cover all attributes; missing {sorted(missing)}"
        )
    return left, right


def split_loss(
    relation: Relation,
    left: Iterable[str],
    right: Iterable[str],
    *,
    context: EvalContext | None = None,
) -> float:
    """``ρ(R, φ)`` for a two-projection split (Eq. 28).

    ``φ`` joins ``R[left]`` with ``R[right]``; the two attribute sets may
    overlap (their intersection acts as the join key) and must jointly
    cover the relation's attributes.  The join size comes from the
    columnar per-key-group counter — neither projection is materialized.
    """
    left, right = _require_split_cover(relation, left, right)
    if context is None:
        context = EvalContext.for_relation(relation)
    size = context.split_join_size(left, right)
    return (size - len(relation)) / len(relation)


@dataclass(frozen=True)
class SplitLoss:
    """Loss of one rooted-split MVD ``φᵢ`` of a join tree's support."""

    index: int
    separator: frozenset[str]
    prefix: frozenset[str]
    suffix: frozenset[str]
    rho: float


def support_split_losses(
    relation: Relation,
    jointree: JoinTree,
    *,
    root: int | None = None,
    context: EvalContext | None = None,
) -> tuple[SplitLoss, ...]:
    """``ρ(R, φᵢ)`` for every rooted-split MVD in the tree's support.

    These are the terms of Proposition 5.1's product bound
    ``1 + ρ(R, S) ≤ ∏ᵢ (1 + ρ(R, φᵢ))``.
    """
    if context is None:
        context = EvalContext.for_relation(relation)
    out = []
    for split in jointree.rooted_splits(root):
        rho = split_loss(relation, split.prefix, split.suffix, context=context)
        out.append(
            SplitLoss(
                index=split.index,
                separator=split.separator,
                prefix=split.prefix,
                suffix=split.suffix,
                rho=rho,
            )
        )
    return tuple(out)


def spurious_tuples(relation: Relation, jointree: JoinTree) -> Relation:
    """The spurious tuples ``(⋈ᵢ R[Ωᵢ]) \\ R`` — materialized.

    Only for small instances (tests, examples, inspection); the join is
    materialized.  Use :func:`spurious_count` for sizes.
    """
    joined = materialized_acyclic_join(relation, jointree)
    aligned = joined.reorder(relation.schema.names)
    return aligned.difference(
        Relation(aligned.schema, relation.rows(), validate=False)
    )


def satisfies_ajd(relation: Relation, jointree: JoinTree) -> bool:
    """Whether ``R ⊨ AJD(S)`` — the decomposition is lossless (ρ = 0)."""
    if relation.is_empty():
        return True
    return spurious_count(relation, jointree) == 0

"""All quantitative bounds of the paper, as checkable functions.

Each bound returns a :class:`BoundReport` (or a small dedicated dataclass)
carrying the numeric value, whether the theorem's *qualifying condition*
holds for the supplied parameters, and the condition's threshold.  Nothing
is silently extrapolated: callers can see when they are outside a
theorem's regime.  Passing ``strict=True`` raises
:class:`~repro.errors.BoundConditionError` instead.

Everything is in **nats**.

Implemented bounds
------------------
* Lemma 4.1    — deterministic lower bound ``ρ ≥ e^J − 1``.
* Prop. 5.1    — product bound ``log(1+ρ(R,S)) ≤ Σ log(1+ρ(R,φᵢ))``.
* Prop. 5.4    — expected entropy deficit ``≤ C(d_B) = 2·log d_B/√d_B``.
* Thm. 5.2     — entropy confidence ``log d_A − H(A_S) ≤ 20√(d_A log³(η/δ)/η)``.
* Cor. 5.2.1   — MI lower confidence ``I ≥ log(1+ρ̄) − 40√(d_A log³(2η/δ)/η)``.
* Thm. 5.1     — ``log(1+ρ) ≤ I(A;B|C) + ε*`` with
  ``ε* = 60√(d_A·d·log³(6Nd_C/δ)/N)``.
* Prop. 5.3    — schema-level union bound (Eqs. 33–34).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.concentration.inequalities import expected_entropy_deficit
from repro.errors import BoundConditionError
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


@dataclass(frozen=True)
class BoundReport:
    """A bound value together with its qualifying condition status.

    Attributes
    ----------
    value:
        The numeric bound (nats where applicable).
    condition_holds:
        Whether the theorem's qualifying condition is met.
    required:
        The condition's threshold (e.g. minimal ``N``); ``nan`` when the
        bound is unconditional.
    description:
        Human-readable provenance (theorem number and formula).
    """

    value: float
    condition_holds: bool
    required: float
    description: str


def _check_strict(report: BoundReport, strict: bool) -> BoundReport:
    if strict and not report.condition_holds:
        raise BoundConditionError(
            f"{report.description}: qualifying condition fails "
            f"(threshold {report.required:.6g})"
        )
    return report


def _validate_delta(delta: float) -> None:
    if not 0.0 < delta < 1.0:
        raise BoundConditionError(f"delta must lie in (0, 1), got {delta}")


# ----------------------------------------------------------------------
# Lemma 4.1 — the deterministic lower bound
# ----------------------------------------------------------------------
def loss_lower_bound(j_nats: float) -> float:
    """Lemma 4.1 rearranged: ``ρ(R, S) ≥ e^{J(T)} − 1``.

    Tight for the diagonal family of Example 4.1.
    """
    if j_nats < 0:
        raise BoundConditionError(f"J must be non-negative, got {j_nats}")
    return math.expm1(j_nats)


def j_measure_upper_bound(rho: float) -> float:
    """Lemma 4.1 as stated: ``J(T) ≤ log(1 + ρ(R, S))``."""
    if rho < 0:
        raise BoundConditionError(f"ρ must be non-negative, got {rho}")
    return math.log1p(rho)


# ----------------------------------------------------------------------
# Proposition 5.1 — product bound over the support
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProductBoundCheck:
    """Both sides of Proposition 5.1 for a concrete relation and tree.

    ``lhs = log(1 + ρ(R,S))`` and ``rhs = Σᵢ log(1 + ρ(R,φᵢ))``; the
    proposition asserts ``lhs ≤ rhs``.

    **Erratum.** Proposition 5.1 is *false as stated*: with ``ρ(R, φᵢ)``
    defined by Eq. 28 (join of two projections of ``R``), the relation
    ``R = {0000, 0001, 0100, 1110}`` over the chain schema
    ``{AB, BC, CD}`` gives ``1+ρ(S) = 2 > 1.5·1.25``, for *every* rooting
    of the tree.  The inductive proof treats projections of the
    accumulated join as projections of ``R``.  The inequality does hold
    for ``m = 2`` (trivially, with equality) and empirically holds on the
    vast majority of instances; use :func:`stepwise_expansion_check` for
    the provably correct replacement.  See EXPERIMENTS.md §Errata.
    """

    lhs: float
    rhs: float
    split_losses: tuple[float, ...]

    @property
    def holds(self) -> bool:
        """Whether the inequality holds on this instance (with float slack).

        May legitimately be ``False`` — see the class erratum note.
        """
        return self.lhs <= self.rhs + 1e-9 * max(1.0, abs(self.rhs))


def product_bound_check(
    relation: Relation,
    jointree: JoinTree,
    *,
    context: "EvalContext | None" = None,
) -> ProductBoundCheck:
    """Evaluate Proposition 5.1 on a concrete instance (see erratum).

    All join sizes come from the relation's shared
    :class:`~repro.core.evalcontext.EvalContext` (or the supplied one),
    so re-checking the bound after computing ``ρ`` costs nothing extra.
    """
    from repro.core.evalcontext import EvalContext
    from repro.core.loss import spurious_loss, support_split_losses

    if context is None:
        context = EvalContext.for_relation(relation)
    rho = spurious_loss(relation, jointree, context=context)
    splits = support_split_losses(relation, jointree, context=context)
    split_rhos = tuple(s.rho for s in splits)
    return ProductBoundCheck(
        lhs=math.log1p(rho),
        rhs=sum(math.log1p(r) for r in split_rhos),
        split_losses=split_rhos,
    )


@dataclass(frozen=True)
class StepwiseExpansionCheck:
    """The provably correct replacement for Proposition 5.1.

    Let ``J_i = ⋈_{j≤i} R[Ω_j]`` over a depth-first enumeration of the
    tree's bags.  Then ``|J_m| = |J_1|·∏_{i≥2} (|J_i|/|J_{i−1}|)`` and
    ``|J_1| ≤ N``, so

        ``log(1 + ρ(R, S)) ≤ Σ_{i≥2} log(|J_i| / |J_{i−1}|)``

    holds *unconditionally* (a telescoping identity plus ``|J_1| ≤ N``).
    The per-step ratios play the role the paper intended for
    ``1 + ρ(R, φᵢ)``.
    """

    lhs: float
    rhs: float
    step_ratios: tuple[float, ...]
    prefix_sizes: tuple[int, ...]

    @property
    def holds(self) -> bool:
        """Always true up to float slack; exposed for uniformity."""
        return self.lhs <= self.rhs + 1e-9 * max(1.0, abs(self.rhs))


def stepwise_expansion_check(
    relation: Relation,
    jointree: JoinTree,
    *,
    root: int | None = None,
    context: "EvalContext | None" = None,
) -> StepwiseExpansionCheck:
    """Evaluate the stepwise-expansion bound on a concrete instance.

    Prefix join sizes ``|J_i|`` are computed by message passing on the
    induced subtree of the first ``i`` DFS nodes (always a valid join
    tree), so nothing is materialized.  Each prefix size is memoized on
    the evaluation context — the last prefix is the full tree, so the
    size behind ``ρ`` is shared with every other consumer.
    """
    from repro.core.evalcontext import EvalContext
    from repro.core.loss import spurious_loss

    if context is None:
        context = EvalContext.for_relation(relation)
    order = jointree.dfs_order(root)
    parent = jointree.parents(root)
    sizes: list[int] = []
    for i in range(1, len(order) + 1):
        prefix_nodes = order[:i]
        bags = {node: jointree.bag(node) for node in prefix_nodes}
        edges = [
            (parent[node], node) for node in prefix_nodes[1:]
        ]
        subtree = JoinTree(bags, edges)
        sizes.append(context.join_size(subtree))
    ratios = tuple(
        sizes[i] / sizes[i - 1] for i in range(1, len(sizes))
    )
    lhs = math.log1p(spurious_loss(relation, jointree, context=context))
    rhs = sum(math.log(r) for r in ratios if r > 0)
    return StepwiseExpansionCheck(
        lhs=lhs,
        rhs=rhs,
        step_ratios=ratios,
        prefix_sizes=tuple(sizes),
    )


# ----------------------------------------------------------------------
# Proposition 5.4 — expected entropy
# ----------------------------------------------------------------------
def expected_entropy_bounds(
    d_a: int, d_b: int, eta: int, *, strict: bool = False
) -> BoundReport:
    """Prop. 5.4: ``0 ≤ log d_A − E[H(A_S)] ≤ C(d_B)``.

    Returns the deficit bound ``C(d_B) = 2·log(d_B)/√d_B`` with the
    qualifying condition ``η ≥ 60·d_A`` (and ``d_A ≥ d_B``).
    """
    _validate_sizes(d_a=d_a, d_b=d_b)
    required = 60.0 * d_a
    report = BoundReport(
        value=expected_entropy_deficit(d_b),
        condition_holds=(eta >= required and d_a >= d_b),
        required=required,
        description="Prop 5.4: log d_A − E[H(A_S)] ≤ 2·log(d_B)/√d_B",
    )
    return _check_strict(report, strict)


# ----------------------------------------------------------------------
# Proposition 5.5 — concentration of H(A_S) around its expectation
# ----------------------------------------------------------------------
def entropy_concentration_tail(
    t: float, d_a: int, d_b: int, eta: int, *, strict: bool = False
) -> BoundReport:
    """Prop. 5.5: ``P[|H(A_S) − E[H(A_S)]| > t]`` upper bound (Eq. 58).

    ``½·e^{−η/12} + ½·exp(−(η/(2·d_A))·h(r/(2·log(η/e))) + 4·log η)``
    with ``r = max(0, t − 8·d_A/η − C(d_B))`` (Eq. 59) and
    ``h(x) = x·log(1+x)``.  Qualifying conditions: ``d_A > d_B``,
    ``η ≥ 60·d_A``, ``η ≤ d_A·d_B − d_B``.
    """
    from repro.concentration.inequalities import h_rate

    _validate_sizes(d_a=d_a, d_b=d_b)
    if t <= 0:
        raise BoundConditionError(f"t must be positive, got {t}")
    if eta <= 0:
        raise BoundConditionError(f"η must be positive, got {eta}")
    condition = d_a > d_b and eta >= 60 * d_a and eta <= d_a * d_b - d_b
    r = max(0.0, t - 8.0 * d_a / eta - expected_entropy_deficit(d_b))
    log_eta_e = math.log(eta / math.e)
    exponent = -(eta / (2.0 * d_a)) * h_rate(r / (2.0 * log_eta_e)) + 4.0 * math.log(eta)
    value = min(1.0, 0.5 * math.exp(-eta / 12.0) + 0.5 * math.exp(exponent))
    report = BoundReport(
        value=value,
        condition_holds=condition,
        required=60.0 * d_a,
        description="Prop 5.5: tail bound on |H(A_S) − E[H(A_S)]|",
    )
    return _check_strict(report, strict)


# ----------------------------------------------------------------------
# Theorem 5.2 — entropy confidence interval
# ----------------------------------------------------------------------
def entropy_confidence_radius(
    d_a: int, d_b: int, eta: int, delta: float, *, strict: bool = False
) -> BoundReport:
    """Thm. 5.2: with prob. ``≥ 1 − δ``,

    ``log d_A ≥ H(A_S) ≥ log d_A − 20·√(d_A·log³(η/δ)/η)``.

    Qualifying condition (Eq. 40): ``η ≥ 128·d_A·log(128·d_A/δ)`` and
    ``d_A ≥ d_B``.
    """
    _validate_sizes(d_a=d_a, d_b=d_b)
    _validate_delta(delta)
    if eta <= 0:
        raise BoundConditionError(f"η must be positive, got {eta}")
    required = 128.0 * d_a * math.log(128.0 * d_a / delta)
    radius = 20.0 * math.sqrt(d_a * math.log(eta / delta) ** 3 / eta)
    report = BoundReport(
        value=radius,
        condition_holds=(eta >= required and d_a >= d_b),
        required=required,
        description="Thm 5.2: log d_A − H(A_S) ≤ 20·√(d_A·log³(η/δ)/η)",
    )
    return _check_strict(report, strict)


# ----------------------------------------------------------------------
# Corollary 5.2.1 — mutual information lower confidence bound
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MIConfidenceBound:
    """Cor. 5.2.1: ``I(A_S;B_S) ≥ log(1+ρ̄) − radius`` w.p. ``≥ 1 − δ``."""

    target: float
    radius: float
    lower: float
    condition_holds: bool
    required: float


def mi_lower_confidence(
    d_a: int, d_b: int, eta: int, delta: float, *, strict: bool = False
) -> MIConfidenceBound:
    """Evaluate Corollary 5.2.1 (``d_C = 1`` setting, Eq. 42).

    ``ρ̄ = d_A·d_B/η − 1``; ``radius = 40·√(d_A·log³(2η/δ)/η)``.
    """
    _validate_sizes(d_a=d_a, d_b=d_b)
    _validate_delta(delta)
    if not 0 < eta <= d_a * d_b:
        raise BoundConditionError(
            f"η must lie in (0, d_A·d_B] = (0, {d_a * d_b}], got {eta}"
        )
    rho_bar = d_a * d_b / eta - 1.0
    target = math.log1p(rho_bar)
    radius = 40.0 * math.sqrt(d_a * math.log(2.0 * eta / delta) ** 3 / eta)
    required = 128.0 * d_a * math.log(128.0 * d_a / delta)
    bound = MIConfidenceBound(
        target=target,
        radius=radius,
        lower=target - radius,
        condition_holds=(eta >= required and d_a >= d_b),
        required=required,
    )
    if strict and not bound.condition_holds:
        raise BoundConditionError(
            "Cor 5.2.1: qualifying condition fails "
            f"(need η ≥ {required:.6g} and d_A ≥ d_B)"
        )
    return bound


# ----------------------------------------------------------------------
# Theorem 5.1 — high-probability upper bound for a single MVD
# ----------------------------------------------------------------------
def epsilon_star(
    d_a: int,
    d_b: int,
    d_c: int,
    n: int,
    delta: float,
    *,
    strict: bool = False,
) -> BoundReport:
    """Thm. 5.1's deviation term (Eq. 38):

    ``ε*(φ, N, δ) = 60·√(d_A·d·log³(6·N·d_C/δ)/N)`` with
    ``d = max(d_A, d_C)``, under the convention ``d_A ≥ d_B`` (sides are
    swapped automatically when violated, as the theorem is w.l.o.g.).

    Qualifying condition (Eq. 37): ``N ≥ 256·d_A·d·log(384·d/δ)``.
    """
    _validate_sizes(d_a=d_a, d_b=d_b, d_c=d_c)
    _validate_delta(delta)
    if n <= 0:
        raise BoundConditionError(f"N must be positive, got {n}")
    if d_a < d_b:
        d_a, d_b = d_b, d_a
    d = max(d_a, d_c)
    required = 256.0 * d_a * d * math.log(384.0 * d / delta)
    value = 60.0 * math.sqrt(d_a * d * math.log(6.0 * n * d_c / delta) ** 3 / n)
    report = BoundReport(
        value=value,
        condition_holds=n >= required,
        required=required,
        description="Thm 5.1: log(1+ρ(R_S,φ)) ≤ I(A_S;B_S|C_S) + ε*(φ,N,δ)",
    )
    return _check_strict(report, strict)


def mvd_loss_upper_confidence(
    cmi_nats: float,
    d_a: int,
    d_b: int,
    d_c: int,
    n: int,
    delta: float,
    *,
    strict: bool = False,
) -> BoundReport:
    """Thm. 5.1 assembled: the bound ``log(1+ρ) ≤ I + ε*`` as a number."""
    if cmi_nats < 0:
        raise BoundConditionError(f"CMI must be non-negative, got {cmi_nats}")
    eps = epsilon_star(d_a, d_b, d_c, n, delta, strict=strict)
    return BoundReport(
        value=cmi_nats + eps.value,
        condition_holds=eps.condition_holds,
        required=eps.required,
        description=eps.description,
    )


# ----------------------------------------------------------------------
# Proposition 5.3 — schema-level union bound
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemaUpperBound:
    """Prop. 5.3: the two schema-level upper bounds on ``log(1+ρ(R,S))``.

    Attributes
    ----------
    cmi_sum_bound:
        Eq. 33: ``Σᵢ [I(Ω_{1:i−1}; Ω_{i:m} | Δᵢ) + εᵢ]``.
    j_bound:
        Eq. 34: ``(m−1)·J(T) + Σᵢ εᵢ``.
    epsilons:
        The per-split deviation terms ``εᵢ`` (δ split as ``δ/(m−1)``).
    conditions_hold:
        Whether every split's Thm. 5.1 qualifying condition holds.
    actual:
        ``log(1 + ρ(R, S))`` for the supplied instance.
    """

    cmi_sum_bound: float
    j_bound: float
    epsilons: tuple[float, ...]
    conditions_hold: bool
    actual: float


def schema_upper_bound(
    relation: Relation,
    jointree: JoinTree,
    delta: float,
    *,
    root: int | None = None,
    context: "EvalContext | None" = None,
) -> SchemaUpperBound:
    """Assemble Proposition 5.3 for a concrete relation and join tree.

    Domain sizes for each split's ε-term use *active* domain sizes
    (``d_A = |Π_A(R)|`` etc.), matching the paper's convention below
    Eq. 29.  The failure budget δ is split evenly over the ``m − 1``
    support MVDs.  Entropies, join sizes, and projection sizes all come
    from the relation's shared evaluation context.
    """
    from repro.core.evalcontext import EvalContext
    from repro.core.jmeasure import j_measure, support_cmis
    from repro.core.loss import spurious_loss

    _validate_delta(delta)
    if context is None:
        context = EvalContext.for_relation(relation)
    engine = context.engine
    cmis = support_cmis(relation, jointree, root=root, engine=engine)
    m_minus_1 = len(cmis)
    if m_minus_1 == 0:
        actual = math.log1p(spurious_loss(relation, jointree, context=context))
        return SchemaUpperBound(
            cmi_sum_bound=0.0,
            j_bound=0.0,
            epsilons=(),
            conditions_hold=True,
            actual=actual,
        )
    per_mvd_delta = delta / m_minus_1
    epsilons = []
    conditions = []
    n = len(relation)
    for term in cmis:
        sep = term.separator
        side_a = term.prefix - sep
        side_b = term.suffix - sep
        d_a = _projection_size(context, side_a)
        d_b = _projection_size(context, side_b)
        d_c = _projection_size(context, sep) if sep else 1
        eps = epsilon_star(max(d_a, d_b), min(d_a, d_b), d_c, n, per_mvd_delta)
        epsilons.append(eps.value)
        conditions.append(eps.condition_holds)
    cmi_sum = sum(term.cmi for term in cmis)
    j_value = j_measure(relation, jointree, engine=engine)
    actual = math.log1p(spurious_loss(relation, jointree, context=context))
    return SchemaUpperBound(
        cmi_sum_bound=cmi_sum + sum(epsilons),
        j_bound=m_minus_1 * j_value + sum(epsilons),
        epsilons=tuple(epsilons),
        conditions_hold=all(conditions),
        actual=actual,
    )


def _projection_size(context, attrs: frozenset[str]) -> int:
    if not attrs:
        return 1
    return context.projection_size(attrs)


def _validate_sizes(**sizes: int) -> None:
    for name, value in sizes.items():
        if value <= 0:
            raise BoundConditionError(
                f"{name} must be a positive domain size, got {value}"
            )

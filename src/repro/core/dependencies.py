"""Data-dependency checking via Lee's entropic characterizations.

Lee [18, 19] characterized the classic dependency families in terms of
the empirical distribution's information measures; this module exposes
those checks directly:

* **FD** ``X → Y``  ⇔  ``H(Y | X) = 0``;
* **MVD** ``X ↠ Y₁|…|Y_m``  ⇔  the schema ``{XYᵢ}`` is lossless  ⇔  its
  J-measure vanishes;
* **AJD** ``⋈S``  ⇔  ``J(S) = 0`` (Theorem 2.1).

Each check also has a *degree* variant returning the information residual
(how far the dependency is from holding, in nats), which is the natural
"approximate dependency" measure in the paper's framework — the FD
residual is ``H(Y|X)``, and the MVD/AJD residual equals the schema's
J-measure, so Lemma 4.1 converts it into a spurious-tuple floor.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.jmeasure import j_measure
from repro.errors import UnknownAttributeError
from repro.info.entropy import conditional_entropy
from repro.jointrees.build import jointree_from_mvd
from repro.jointrees.jointree import JoinTree
from repro.jointrees.mvds import MVD
from repro.relations.relation import Relation


@dataclass(frozen=True)
class DependencyCheck:
    """Outcome of a dependency check.

    ``residual`` is the information measure that vanishes exactly when
    the dependency holds (nats): ``H(Y|X)`` for FDs, ``J`` for
    MVDs/AJDs.
    """

    kind: str
    description: str
    residual: float
    tolerance: float

    @property
    def holds(self) -> bool:
        """Whether the dependency holds up to the tolerance."""
        return self.residual <= self.tolerance


def check_fd(
    relation: Relation,
    determinant: Iterable[str],
    dependent: Iterable[str],
    *,
    tolerance: float = 1e-9,
) -> DependencyCheck:
    """Check the functional dependency ``determinant → dependent``.

    Residual: ``H(dependent | determinant)`` over the empirical
    distribution — zero iff each determinant value maps to one dependent
    value.

    Examples
    --------
    >>> from repro.relations.relation import Relation
    >>> from repro.relations.schema import RelationSchema
    >>> s = RelationSchema.from_names(["A", "B"])
    >>> check_fd(Relation(s, [(1, "x"), (2, "y")]), ["A"], ["B"]).holds
    True
    """
    determinant = tuple(determinant)
    dependent = tuple(dependent)
    if not determinant or not dependent:
        raise UnknownAttributeError("an FD needs non-empty sides")
    residual = conditional_entropy(relation, dependent, determinant)
    lhs = " ".join(sorted(determinant))
    rhs = " ".join(sorted(dependent))
    return DependencyCheck(
        kind="FD",
        description=f"{lhs} -> {rhs}",
        residual=residual,
        tolerance=tolerance,
    )


def check_mvd(
    relation: Relation, mvd: MVD, *, tolerance: float = 1e-9
) -> DependencyCheck:
    """Check the MVD ``X ↠ Y₁|…|Y_m`` (Lee: its J-measure vanishes).

    The MVD's attributes must cover the relation (Section 2.1 requires
    ``XY₁…Y_m = Ω``).
    """
    missing = relation.schema.name_set - mvd.attributes()
    if missing:
        raise UnknownAttributeError(
            f"MVD must cover the relation's attributes; missing {sorted(missing)}"
        )
    tree = jointree_from_mvd(mvd)
    residual = j_measure(relation, tree)
    return DependencyCheck(
        kind="MVD",
        description=repr(mvd),
        residual=residual,
        tolerance=tolerance,
    )


def check_ajd(
    relation: Relation, jointree: JoinTree, *, tolerance: float = 1e-9
) -> DependencyCheck:
    """Check the acyclic join dependency of ``jointree`` (Theorem 2.1)."""
    residual = j_measure(relation, jointree)
    bags = ", ".join(
        "{" + ",".join(sorted(b)) + "}" for b in sorted(jointree.schema(), key=sorted)
    )
    return DependencyCheck(
        kind="AJD",
        description=f"JD({bags})",
        residual=residual,
        tolerance=tolerance,
    )


def fd_violation_pairs(
    relation: Relation,
    determinant: Iterable[str],
    dependent: Iterable[str],
) -> int:
    """Number of determinant values mapped to more than one dependent value.

    A combinatorial companion to :func:`check_fd`'s entropic residual.
    """
    determinant = tuple(determinant)
    dependent = tuple(dependent)
    groups: dict[tuple, set[tuple]] = {}
    det_idx = relation.schema.indices(determinant)
    dep_idx = relation.schema.indices(dependent)
    for row in relation:
        key = tuple(row[i] for i in det_idx)
        groups.setdefault(key, set()).add(tuple(row[i] for i in dep_idx))
    return sum(1 for images in groups.values() if len(images) > 1)


def discover_fds(
    relation: Relation, *, max_lhs_size: int = 2, tolerance: float = 1e-9
) -> list[DependencyCheck]:
    """Enumerate all minimal exact FDs with small determinants.

    Brute-force over determinant subsets up to ``max_lhs_size`` and
    single dependent attributes; an FD is reported only if no proper
    subset of its determinant already implies the dependent (minimality).
    Exponential in ``max_lhs_size`` — intended for profiling small
    tables.
    """
    import itertools

    names = relation.schema.names
    found: list[DependencyCheck] = []
    holding: set[tuple[frozenset[str], str]] = set()
    for size in range(1, max_lhs_size + 1):
        for lhs in itertools.combinations(names, size):
            lhs_set = frozenset(lhs)
            for target in names:
                if target in lhs_set:
                    continue
                implied = any(
                    (subset, target) in holding
                    for r in range(1, size)
                    for subset in map(
                        frozenset, itertools.combinations(sorted(lhs_set), r)
                    )
                )
                if implied:
                    continue
                check = check_fd(relation, lhs, [target], tolerance=tolerance)
                if check.holds:
                    holding.add((lhs_set, target))
                    found.append(check)
    return found

"""The J-measure of an acyclic schema (Lee; Eq. 7) and its KL form.

Three equivalent views are implemented:

* :func:`j_measure` — the entropy formula
  ``J(T) = Σ_v H(χ(v)) − Σ_e H(χ(v₁)∩χ(v₂)) − H(χ(T))`` (Eq. 7);
* :func:`j_measure_kl` — ``D_KL(P ‖ P^T)`` (Theorem 3.2);
* :func:`support_cmis` — the per-split conditional mutual informations of
  Theorem 2.2, whose max/sum sandwich ``J(T)`` (Eq. 8).

``J`` depends only on the schema defined by the tree, not on the tree's
shape (the paper's ``XU − XV − XW`` example); tests verify this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError, JoinTreeError
from repro.info.distribution import EmpiricalDistribution
from repro.info.divergence import (
    conditional_mutual_information,
    kl_divergence_to_callable,
)
from repro.info.engine import EntropyEngine
from repro.info.entropy import relation_entropy
from repro.info.factorization import junction_tree_factorization
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


def _require_cover(relation: Relation, jointree: JoinTree) -> None:
    tree_attrs = jointree.attributes()
    rel_attrs = relation.schema.name_set
    if tree_attrs != rel_attrs:
        raise JoinTreeError(
            f"J-measure needs χ(T) = Ω; tree covers {sorted(tree_attrs)} "
            f"but the relation has {sorted(rel_attrs)}"
        )


def j_measure(
    relation: Relation,
    jointree: JoinTree,
    *,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> float:
    """``J(T)`` by the entropy formula (Eq. 7), over the empirical distribution.

    Empty separators contribute ``H(∅) = 0``.  The result is clamped at 0
    (``J ≥ 0`` always holds; tiny negative values are floating-point
    noise).  All entropies come from the relation's memoizing
    :class:`~repro.info.engine.EntropyEngine` (or the supplied ``engine``),
    so evaluating many candidate trees over one relation — the discovery
    searches — shares one entropy cache.
    """
    _require_cover(relation, jointree)
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    total = -relation_entropy(relation)
    for node in jointree.node_ids():
        total += engine.entropy(jointree.bag(node))
    for separator in jointree.separators():
        if separator:
            total -= engine.entropy(separator)
    total = max(total, 0.0)
    if base is not None:
        total /= math.log(base)
    return total


def j_measure_kl(
    relation: Relation, jointree: JoinTree, *, base: float | None = None
) -> float:
    """``J(T) = D_KL(P ‖ P^T)`` (Theorem 3.2), computed on the columnar backend.

    For the empirical distribution, ``P^T(x)`` is a product of bag
    marginals over separator marginals, and every marginal probability of
    a support tuple is a projection multiplicity over ``N``.  So the KL
    sum vectorizes completely: one cached
    :class:`~repro.relations.columns.GroupIndex` per bag/separator maps
    each row to the log of its group count, and

        ``D_KL(P‖P^T) = (k − 1)·log N − mean_x Σ_factors ±log c(x)``

    where ``k`` is the number of bag factors minus separator factors.
    Linear in ``|R|`` with no per-tuple Python work; evaluated only on
    ``P``'s support, so it never materializes the join.  The pre-engine
    dict-based path survives as
    :func:`repro.core.legacy.j_measure_kl_legacy`, pinned by the
    equivalence suite.
    """
    _require_cover(relation, jointree)
    if relation.is_empty():
        raise DistributionError(
            "the empirical distribution of an empty relation is undefined"
        )
    schema = relation.schema
    store = relation.columns()
    n = len(relation)
    log_counts = np.zeros(n, dtype=np.float64)
    factor_balance = 0
    for node in jointree.node_ids():
        positions = schema.indices(schema.canonical_order(jointree.bag(node)))
        group = store.groups(positions)
        log_counts += np.log(group.counts.astype(np.float64))[group.gids]
        factor_balance += 1
    for separator in jointree.separators():
        if separator:
            positions = schema.indices(schema.canonical_order(separator))
            group = store.groups(positions)
            log_counts -= np.log(group.counts.astype(np.float64))[group.gids]
            factor_balance -= 1
    total = (factor_balance - 1) * math.log(n) - float(log_counts.mean())
    total = max(total, 0.0)
    if base is not None:
        total /= math.log(base)
    return total


def j_measure_distribution(
    dist: EmpiricalDistribution, jointree: JoinTree, *, base: float | None = None
) -> float:
    """``J(T)`` for a general finite distribution (not necessarily uniform).

    Theorem 3.2 holds for any joint distribution ``P``; this evaluates
    ``D_KL(P‖P^T)`` directly.
    """
    tree_attrs = jointree.attributes()
    if tree_attrs != frozenset(dist.attributes):
        raise JoinTreeError(
            f"J-measure needs χ(T) = Ω; tree covers {sorted(tree_attrs)} "
            f"but the distribution has {sorted(dist.attributes)}"
        )
    p_tree = junction_tree_factorization(dist, jointree)
    return kl_divergence_to_callable(dist, p_tree.prob, base=base)


@dataclass(frozen=True)
class SupportCMI:
    """One rooted-split CMI term ``I(Ω_{1:i−1}; Ω_{i:m} | Δᵢ)``."""

    index: int
    separator: frozenset[str]
    prefix: frozenset[str]
    suffix: frozenset[str]
    cmi: float


def support_cmis(
    relation: Relation,
    jointree: JoinTree,
    *,
    root: int | None = None,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> tuple[SupportCMI, ...]:
    """The ``m − 1`` conditional mutual informations of Theorem 2.2."""
    _require_cover(relation, jointree)
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    out = []
    for split in jointree.rooted_splits(root):
        cmi = conditional_mutual_information(
            relation,
            split.prefix,
            split.suffix,
            split.separator,
            base=base,
            engine=engine,
        )
        out.append(
            SupportCMI(
                index=split.index,
                separator=split.separator,
                prefix=split.prefix,
                suffix=split.suffix,
                cmi=cmi,
            )
        )
    return tuple(out)


@dataclass(frozen=True)
class SandwichBounds:
    """Theorem 2.2: ``max_i Iᵢ ≤ J(T) ≤ Σ_i Iᵢ``."""

    lower: float
    j_value: float
    upper: float

    @property
    def holds(self) -> bool:
        """Whether the sandwich inequalities hold (with float slack)."""
        slack = 1e-9 + 1e-9 * max(abs(self.j_value), abs(self.upper), 1.0)
        return self.lower <= self.j_value + slack and self.j_value <= self.upper + slack


def sandwich_bounds(
    relation: Relation,
    jointree: JoinTree,
    *,
    root: int | None = None,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> SandwichBounds:
    """Evaluate both sides of Theorem 2.2 together with ``J(T)``."""
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    cmis = [
        term.cmi
        for term in support_cmis(
            relation, jointree, root=root, base=base, engine=engine
        )
    ]
    j_value = j_measure(relation, jointree, base=base, engine=engine)
    if not cmis:  # single-node tree: J = 0 with no support terms
        return SandwichBounds(lower=0.0, j_value=j_value, upper=0.0)
    return SandwichBounds(lower=max(cmis), j_value=j_value, upper=sum(cmis))


def is_lossless(
    relation: Relation, jointree: JoinTree, *, tolerance: float = 1e-9
) -> bool:
    """Lee's criterion (Theorem 2.1): ``R ⊨ AJD(S)  ⇔  J(S) = 0``."""
    return j_measure(relation, jointree) <= tolerance

"""One-call loss analysis: everything the paper says about ``(R, S)``.

:func:`analyze` computes the combinatorial loss, the J-measure in both of
its equivalent forms, the Theorem 2.2 sandwich, the deterministic lower
bound of Lemma 4.1, the per-split losses with the product bound of
Proposition 5.1, and — when a failure probability ``δ`` is supplied — the
probabilistic upper bounds of Theorem 5.1 / Proposition 5.3.  The result
renders as a readable report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.bounds import (
    ProductBoundCheck,
    SchemaUpperBound,
    StepwiseExpansionCheck,
    loss_lower_bound,
    product_bound_check,
    schema_upper_bound,
    stepwise_expansion_check,
)
from repro.core.jmeasure import SandwichBounds, j_measure, j_measure_kl, sandwich_bounds
from repro.core.loss import SplitLoss, spurious_count, spurious_loss, support_split_losses
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


@dataclass(frozen=True)
class LossAnalysis:
    """Full loss profile of a relation under an acyclic schema.

    All information quantities are in nats.
    """

    n: int
    num_attributes: int
    schema: tuple[frozenset[str], ...]
    rho: float
    spurious: int
    j_entropy: float
    j_kl: float
    sandwich: SandwichBounds
    rho_lower_bound: float
    split_losses: tuple[SplitLoss, ...]
    product_bound: ProductBoundCheck
    stepwise_bound: StepwiseExpansionCheck
    probabilistic: SchemaUpperBound | None = field(default=None)

    @property
    def lossless(self) -> bool:
        """Whether the AJD holds exactly (no spurious tuples)."""
        return self.spurious == 0

    @property
    def log_loss(self) -> float:
        """``log(1 + ρ(R, S))`` — the quantity all bounds address."""
        return math.log1p(self.rho)

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Loss analysis (all information values in nats)",
            f"  relation size N          : {self.n}",
            f"  attributes               : {self.num_attributes}",
            f"  schema bags              : "
            + ", ".join("{" + ",".join(sorted(b)) + "}" for b in self.schema),
            f"  spurious tuples          : {self.spurious}",
            f"  loss rho(R,S)            : {self.rho:.6g}",
            f"  log(1+rho)               : {self.log_loss:.6g}",
            f"  J-measure (entropy form) : {self.j_entropy:.6g}",
            f"  J-measure (KL form)      : {self.j_kl:.6g}",
            f"  Thm 2.2 sandwich         : "
            f"{self.sandwich.lower:.6g} <= J <= {self.sandwich.upper:.6g}"
            f"  [{'ok' if self.sandwich.holds else 'VIOLATED'}]",
            f"  Lemma 4.1 lower bound    : rho >= {self.rho_lower_bound:.6g}"
            f"  [{'ok' if self.rho + 1e-9 >= self.rho_lower_bound else 'VIOLATED'}]",
            f"  Prop 5.1 product bound   : "
            f"{self.product_bound.lhs:.6g} <= {self.product_bound.rhs:.6g}"
            f"  [{'ok' if self.product_bound.holds else 'fails (known erratum)'}]",
            f"  stepwise expansion bound : "
            f"{self.stepwise_bound.lhs:.6g} <= {self.stepwise_bound.rhs:.6g}"
            f"  [{'ok' if self.stepwise_bound.holds else 'VIOLATED'}]",
        ]
        for split in self.split_losses:
            sep = ",".join(sorted(split.separator)) or "∅"
            lines.append(
                f"    split #{split.index}: sep={{{sep}}} rho={split.rho:.6g}"
            )
        if self.probabilistic is not None:
            p = self.probabilistic
            regime = "in regime" if p.conditions_hold else "OUT OF REGIME"
            lines.append(
                f"  Prop 5.3 upper bounds    : "
                f"log(1+rho)={p.actual:.6g} <= "
                f"sum(I)+sum(eps)={p.cmi_sum_bound:.6g}, "
                f"(m-1)J+sum(eps)={p.j_bound:.6g}  [{regime}]"
            )
        return "\n".join(lines)


def analyze(
    relation: Relation,
    jointree: JoinTree,
    *,
    delta: float | None = None,
) -> LossAnalysis:
    """Compute the full loss profile of ``relation`` under ``jointree``.

    Parameters
    ----------
    relation:
        The universal relation instance ``R``.
    jointree:
        A join tree over exactly the relation's attributes.
    delta:
        If given, also evaluate the probabilistic upper bounds of
        Proposition 5.3 at failure budget ``δ``.
    """
    rho = spurious_loss(relation, jointree)
    j_ent = j_measure(relation, jointree)
    probabilistic = (
        schema_upper_bound(relation, jointree, delta) if delta is not None else None
    )
    return LossAnalysis(
        n=len(relation),
        num_attributes=relation.schema.arity,
        schema=tuple(sorted(jointree.schema(), key=lambda b: sorted(b))),
        rho=rho,
        spurious=spurious_count(relation, jointree),
        j_entropy=j_ent,
        j_kl=j_measure_kl(relation, jointree),
        sandwich=sandwich_bounds(relation, jointree),
        rho_lower_bound=loss_lower_bound(j_ent),
        split_losses=support_split_losses(relation, jointree),
        product_bound=product_bound_check(relation, jointree),
        stepwise_bound=stepwise_expansion_check(relation, jointree),
        probabilistic=probabilistic,
    )

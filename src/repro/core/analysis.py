"""One-call loss analysis: everything the paper says about ``(R, S)``.

:func:`analyze` computes the combinatorial loss, the J-measure in both of
its equivalent forms, the Theorem 2.2 sandwich, the deterministic lower
bound of Lemma 4.1, the per-split losses with the product bound of
Proposition 5.1, and — when a failure probability ``δ`` is supplied — the
probabilistic upper bounds of Theorem 5.1 / Proposition 5.3.  The result
renders as a readable report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.bounds import (
    ProductBoundCheck,
    SchemaUpperBound,
    StepwiseExpansionCheck,
    loss_lower_bound,
    product_bound_check,
    schema_upper_bound,
    stepwise_expansion_check,
)
from repro.core.evalcontext import EvalContext
from repro.core.jmeasure import SandwichBounds, j_measure, j_measure_kl, sandwich_bounds
from repro.core.loss import SplitLoss, spurious_count, spurious_loss, support_split_losses
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


@dataclass(frozen=True)
class LossAnalysis:
    """Full loss profile of a relation under an acyclic schema.

    All information quantities are in nats.
    """

    n: int
    num_attributes: int
    schema: tuple[frozenset[str], ...]
    rho: float
    spurious: int
    j_entropy: float
    j_kl: float
    sandwich: SandwichBounds
    rho_lower_bound: float
    split_losses: tuple[SplitLoss, ...]
    product_bound: ProductBoundCheck
    stepwise_bound: StepwiseExpansionCheck
    probabilistic: SchemaUpperBound | None = field(default=None)

    @property
    def lossless(self) -> bool:
        """Whether the AJD holds exactly (no spurious tuples)."""
        return self.spurious == 0

    @property
    def log_loss(self) -> float:
        """``log(1 + ρ(R, S))`` — the quantity all bounds address."""
        return math.log1p(self.rho)

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Loss analysis (all information values in nats)",
            f"  relation size N          : {self.n}",
            f"  attributes               : {self.num_attributes}",
            f"  schema bags              : "
            + ", ".join("{" + ",".join(sorted(b)) + "}" for b in self.schema),
            f"  spurious tuples          : {self.spurious}",
            f"  loss rho(R,S)            : {self.rho:.6g}",
            f"  log(1+rho)               : {self.log_loss:.6g}",
            f"  J-measure (entropy form) : {self.j_entropy:.6g}",
            f"  J-measure (KL form)      : {self.j_kl:.6g}",
            f"  Thm 2.2 sandwich         : "
            f"{self.sandwich.lower:.6g} <= J <= {self.sandwich.upper:.6g}"
            f"  [{'ok' if self.sandwich.holds else 'VIOLATED'}]",
            f"  Lemma 4.1 lower bound    : rho >= {self.rho_lower_bound:.6g}"
            f"  [{'ok' if self.rho + 1e-9 >= self.rho_lower_bound else 'VIOLATED'}]",
            f"  Prop 5.1 product bound   : "
            f"{self.product_bound.lhs:.6g} <= {self.product_bound.rhs:.6g}"
            f"  [{'ok' if self.product_bound.holds else 'fails (known erratum)'}]",
            f"  stepwise expansion bound : "
            f"{self.stepwise_bound.lhs:.6g} <= {self.stepwise_bound.rhs:.6g}"
            f"  [{'ok' if self.stepwise_bound.holds else 'VIOLATED'}]",
        ]
        for split in self.split_losses:
            sep = ",".join(sorted(split.separator)) or "∅"
            lines.append(
                f"    split #{split.index}: sep={{{sep}}} rho={split.rho:.6g}"
            )
        if self.probabilistic is not None:
            p = self.probabilistic
            regime = "in regime" if p.conditions_hold else "OUT OF REGIME"
            lines.append(
                f"  Prop 5.3 upper bounds    : "
                f"log(1+rho)={p.actual:.6g} <= "
                f"sum(I)+sum(eps)={p.cmi_sum_bound:.6g}, "
                f"(m-1)J+sum(eps)={p.j_bound:.6g}  [{regime}]"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view of the analysis (``repro-ajd analyze --json``).

        Extends the CLI's shared report schema (see
        :mod:`repro.factorize.report`) with every bound the report
        renders; values are plain Python scalars/lists.
        """
        out: dict = {
            "n_rows": self.n,
            "n_cols": self.num_attributes,
            "schema": [sorted(bag) for bag in self.schema],
            "j_measure": self.j_entropy,
            "j_kl": self.j_kl,
            "rho": self.rho,
            "spurious": self.spurious,
            "log_loss": self.log_loss,
            "lossless": self.lossless,
            "sandwich": {
                "lower": self.sandwich.lower,
                "upper": self.sandwich.upper,
                "holds": self.sandwich.holds,
            },
            "rho_lower_bound": self.rho_lower_bound,
            "split_losses": [
                {
                    "index": split.index,
                    "separator": sorted(split.separator),
                    "rho": split.rho,
                }
                for split in self.split_losses
            ],
            "product_bound": {
                "lhs": self.product_bound.lhs,
                "rhs": self.product_bound.rhs,
                "holds": self.product_bound.holds,
            },
            "stepwise_bound": {
                "lhs": self.stepwise_bound.lhs,
                "rhs": self.stepwise_bound.rhs,
                "holds": self.stepwise_bound.holds,
            },
        }
        if self.probabilistic is not None:
            out["probabilistic"] = {
                "cmi_sum_bound": self.probabilistic.cmi_sum_bound,
                "j_bound": self.probabilistic.j_bound,
                "conditions_hold": self.probabilistic.conditions_hold,
                "actual": self.probabilistic.actual,
            }
        return out


def analyze(
    relation: Relation,
    jointree: JoinTree,
    *,
    delta: float | None = None,
    context: EvalContext | None = None,
) -> LossAnalysis:
    """Compute the full loss profile of ``relation`` under ``jointree``.

    Every constituent quantity is served by one shared
    :class:`~repro.core.evalcontext.EvalContext`: entropies come from the
    relation's memoizing engine, and every join size (the full schema's,
    each split's, each stepwise prefix's) is counted exactly once even
    though several bounds consume it.

    Parameters
    ----------
    relation:
        The universal relation instance ``R``.
    jointree:
        A join tree over exactly the relation's attributes.
    delta:
        If given, also evaluate the probabilistic upper bounds of
        Proposition 5.3 at failure budget ``δ``.
    context:
        Optional evaluation context to reuse (defaults to the one cached
        on the relation).
    """
    if context is None:
        context = EvalContext.for_relation(relation)
    rho = spurious_loss(relation, jointree, context=context)
    j_ent = j_measure(relation, jointree, engine=context.engine)
    probabilistic = (
        schema_upper_bound(relation, jointree, delta, context=context)
        if delta is not None
        else None
    )
    return LossAnalysis(
        n=len(relation),
        num_attributes=relation.schema.arity,
        schema=tuple(sorted(jointree.schema(), key=lambda b: sorted(b))),
        rho=rho,
        spurious=spurious_count(relation, jointree, context=context),
        j_entropy=j_ent,
        j_kl=j_measure_kl(relation, jointree),
        sandwich=sandwich_bounds(relation, jointree, engine=context.engine),
        rho_lower_bound=loss_lower_bound(j_ent),
        split_losses=support_split_losses(relation, jointree, context=context),
        product_bound=product_bound_check(relation, jointree, context=context),
        stepwise_bound=stepwise_expansion_check(relation, jointree, context=context),
        probabilistic=probabilistic,
    )

"""The random relation model of Definition 5.2.

A relation of size ``N`` over attributes with domains ``[d₁], …, [d_n]``
is drawn *uniformly at random without replacement* from the product domain
``[d₁] × … × [d_n]``.  Equivalently: a uniform ``N``-subset of the
``∏dᵢ`` possible tuples.

Sampling strategies (picked automatically by density):

* ``permutation`` — materialize a random permutation of all cell indices
  and take a prefix.  Exact and fast when the product domain is small.
* ``rejection``   — draw random cell indices and deduplicate until ``N``
  distinct ones are collected.  Memory-light when ``N ≪ ∏dᵢ``.
* ``complement``  — sample the ``∏dᵢ − N`` *excluded* cells by rejection
  when the relation is very dense.

Cells are encoded as mixed-radix integers so only ``O(N)`` tuples are ever
materialized.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema

#: Product-domain size below which the permutation strategy is used.
PERMUTATION_LIMIT = 4_000_000

#: Density above which the complement strategy is used.
COMPLEMENT_DENSITY = 0.9


def product_domain_size(sizes: Sequence[int]) -> int:
    """``∏ᵢ dᵢ`` with validation."""
    total = 1
    for d in sizes:
        if d <= 0:
            raise SamplingError(f"domain sizes must be positive, got {d}")
        total *= d
    return total


def decode_cells(indices: np.ndarray, sizes: Sequence[int]) -> np.ndarray:
    """Mixed-radix decode of cell indices into value columns.

    Returns an ``(len(indices), len(sizes))`` array where column ``j``
    holds the value of attribute ``j`` (least-significant attribute last,
    matching row-major order of the product domain).
    """
    out = np.empty((len(indices), len(sizes)), dtype=np.int64)
    rem = np.asarray(indices, dtype=np.int64).copy()
    for j in range(len(sizes) - 1, -1, -1):
        out[:, j] = rem % sizes[j]
        rem //= sizes[j]
    return out


def _sample_distinct_indices(
    total: int, n: int, rng: np.random.Generator, *, method: str
) -> np.ndarray:
    """``n`` distinct uniform indices from ``range(total)``."""
    if method == "permutation":
        return rng.permutation(total)[:n]
    if method == "rejection":
        # Insertion-ordered dict keeps exactly the first n distinct draws,
        # preserving uniformity (truncating a *set* of ints would bias
        # toward small hash values).
        chosen: dict[int, None] = {}
        while len(chosen) < n:
            need = n - len(chosen)
            for x in rng.integers(0, total, size=max(2 * need, 64)):
                if len(chosen) == n:
                    break
                chosen[int(x)] = None
        return np.fromiter(chosen, dtype=np.int64, count=n)
    if method == "complement":
        excluded = _sample_distinct_indices(
            total, total - n, rng, method="rejection"
        )
        mask = np.ones(total, dtype=bool)
        mask[excluded] = False
        return np.nonzero(mask)[0]
    raise SamplingError(f"unknown sampling method {method!r}")


def _pick_method(total: int, n: int) -> str:
    if total <= PERMUTATION_LIMIT:
        return "permutation"
    if n / total >= COMPLEMENT_DENSITY and total <= 50_000_000:
        return "complement"
    return "rejection"


def random_relation(
    sizes: Mapping[str, int],
    n: int,
    rng: np.random.Generator,
    *,
    method: str = "auto",
) -> Relation:
    """Draw a relation from the random relation model (Definition 5.2).

    Parameters
    ----------
    sizes:
        Mapping attribute name → domain size ``dᵢ`` (domains are
        ``{0, …, dᵢ−1}``); iteration order fixes the schema order.
    n:
        Number of tuples ``N``; must satisfy ``0 < N ≤ ∏dᵢ``.
    rng:
        Source of randomness.
    method:
        ``"auto"`` (default), ``"permutation"``, ``"rejection"``, or
        ``"complement"``.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> r = random_relation({"A": 10, "B": 10}, 30, rng)
    >>> len(r)
    30
    """
    names = tuple(sizes)
    dims = tuple(sizes[name] for name in names)
    total = product_domain_size(dims)
    if not 0 < n <= total:
        raise SamplingError(
            f"relation size must satisfy 0 < N <= {total}, got {n}"
        )
    if method == "auto":
        method = _pick_method(total, n)
    indices = _sample_distinct_indices(total, n, rng, method=method)
    cells = decode_cells(indices, dims)
    schema = RelationSchema.integer_domains(dict(zip(names, dims)))
    return Relation.from_codes(schema, cells, distinct=True)


def random_mvd_relation(
    d_a: int,
    d_b: int,
    d_c: int,
    n: int,
    rng: np.random.Generator,
    *,
    method: str = "auto",
) -> Relation:
    """Random relation over attributes ``A, B, C`` (the single-MVD setting).

    ``d_C = 1`` gives the degenerate model of Section 5.1 (attribute ``C``
    is constant).
    """
    return random_relation({"A": d_a, "B": d_b, "C": d_c}, n, rng, method=method)


def relation_size_for_loss(sizes: Mapping[str, int], rho: float) -> int:
    """``N = ∏dᵢ / (1 + ρ)`` — the size that targets loss ``ρ``.

    Figure 1's protocol: fixing the *maximal* loss
    ``ρ̄ = ∏dᵢ/N − 1`` and solving for ``N``.  Result is clamped to
    ``[1, ∏dᵢ]``.
    """
    if rho < 0:
        raise SamplingError(f"target loss must be non-negative, got {rho}")
    total = product_domain_size(tuple(sizes.values()))
    n = round(total / (1.0 + rho))
    return max(1, min(total, n))


def expected_cell_probability(sizes: Mapping[str, int], n: int) -> float:
    """``P[(i,j,…) ∈ S] = N / ∏dᵢ`` — each cell's inclusion probability."""
    total = product_domain_size(tuple(sizes.values()))
    if not 0 < n <= total:
        raise SamplingError(f"relation size must satisfy 0 < N <= {total}, got {n}")
    return n / total


def max_loss(sizes: Mapping[str, int], n: int) -> float:
    """``ρ̄ = ∏dᵢ/N − 1`` — the deterministic ceiling on ρ for any split.

    For any two-projection split the join is contained in the product
    domain, so ``ρ(R, φ) ≤ ρ̄`` always (used in Corollary 5.2.1).
    """
    total = product_domain_size(tuple(sizes.values()))
    if not 0 < n <= total:
        raise SamplingError(f"relation size must satisfy 0 < N <= {total}, got {n}")
    return total / n - 1.0


def sample_loss_and_mi(
    d: int,
    rho: float,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """One draw of Figure 1's experiment: ``(log(1+ρ̄), I(A;B))``.

    Samples ``N = d²/(1+ρ)`` tuples over ``d_A = d_B = d`` (``d_C = 1``)
    and returns the target ``log(1+ρ̄)`` with the realized mutual
    information, both in nats.
    """
    from repro.info.divergence import mutual_information

    sizes = {"A": d, "B": d}
    n = relation_size_for_loss(sizes, rho)
    relation = random_relation(sizes, n, rng)
    mi = mutual_information(relation, ["A"], ["B"])
    return math.log(d * d / n), mi

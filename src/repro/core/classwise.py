"""Per-class loss decomposition — the log-sum step of Theorem 5.1's proof.

For an MVD ``φ = C ↠ A|B``, conditioning on ``C = ℓ`` gives per-class
relations ``R_ℓ = σ_{C=ℓ}(R)`` with sizes ``N(ℓ)``, realized per-class
losses ``ρ(ℓ)``, per-class loss *ceilings* ``ρ̄(ℓ) = d_A·d_B/N(ℓ) − 1``
(Eq. 323), and mutual informations ``I(A;B | C = ℓ)``.  The proof of
Theorem 5.1 glues the per-class picture together with the log-sum
inequality (Eq. 44 / Eq. 335):

    log(1 + ρ(R, φ)) ≤ [log d_C − H(C)] + Σ_ℓ P[C=ℓ]·log(1 + ρ̄(ℓ)),

— note the *ceilings* on the right (with realized per-class losses the
inequality is false; two same-size classes, one diagonal and one
constant-B, violate it) — and the averaging identity
``I(A;B|C) = Σ_ℓ P[C=ℓ]·I(A;B|C=ℓ)`` (Eq. 336).  This module computes
all the pieces so both facts can be inspected and tested on concrete
instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DistributionError, UnknownAttributeError
from repro.info.divergence import (
    conditional_mutual_information,
    mutual_information,
)
from repro.relations.join import join_size
from repro.relations.relation import Relation


@dataclass(frozen=True)
class ClassProfile:
    """One conditioning class ``C = value`` of an MVD split."""

    value: tuple
    n: int
    weight: float          # P[C = value] = n / N
    rho: float             # realized per-class loss (Eq. 28 on the class)
    rho_ceiling: float     # ρ̄(ℓ) = d_A·d_B/N(ℓ) − 1 (Eq. 323)
    mi: float              # I(A; B | C = value), nats


@dataclass(frozen=True)
class ClasswiseDecomposition:
    """All per-class quantities plus the glued (Eq. 44) bound.

    Attributes
    ----------
    classes:
        Per-class profiles, sorted by class value.
    log_loss:
        ``log(1 + ρ(R, φ))`` — the global quantity being bounded.
    entropy_gap:
        ``log d_C − H(C)`` where ``d_C`` is the *active* domain of ``C``.
    weighted_log_ceiling:
        ``Σ_ℓ P[C=ℓ]·log(1 + ρ̄(ℓ))`` — the Eq. 44 sum (ceilings!).
    weighted_log_loss:
        ``Σ_ℓ P[C=ℓ]·log(1 + ρ(ℓ))`` with realized losses, for contrast.
    cmi:
        ``I(A;B|C)`` — equals the weighted average of per-class MIs.
    """

    classes: tuple[ClassProfile, ...]
    log_loss: float
    entropy_gap: float
    weighted_log_ceiling: float
    weighted_log_loss: float
    cmi: float

    @property
    def eq44_bound(self) -> float:
        """The right-hand side of Eq. 44 (entropy gap + ceiling sum)."""
        return self.entropy_gap + self.weighted_log_ceiling

    @property
    def eq44_holds(self) -> bool:
        """Whether the log-sum glue step holds on this instance.

        Always true — Eq. 44 is unconditional for the ceiling form.
        """
        return self.log_loss <= self.eq44_bound + 1e-9

    @property
    def averaging_identity_gap(self) -> float:
        """``|I(A;B|C) − Σ_ℓ P[C=ℓ]·I(A;B|C=ℓ)|`` (should be ~0, Eq. 336)."""
        weighted = sum(c.weight * c.mi for c in self.classes)
        return abs(self.cmi - weighted)


def classwise_decomposition(
    relation: Relation,
    left: str | tuple[str, ...],
    right: str | tuple[str, ...],
    condition: str,
) -> ClasswiseDecomposition:
    """Decompose the loss of ``condition ↠ left | right`` per class.

    Domain sizes ``d_A, d_B`` for the ceilings use the *global active*
    domains ``|Π_left(R)|, |Π_right(R)|`` — the tightest sizes for which
    every per-class projection still fits.

    Parameters
    ----------
    relation:
        The universal relation; ``left``/``right``/``condition`` must
        cover its attributes.
    left, right:
        The two MVD groups (single attribute name or tuple of names).
    condition:
        The conditioning attribute ``C`` (single attribute).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.random_relations import random_relation
    >>> r = random_relation({"A": 4, "B": 4, "C": 2}, 12, np.random.default_rng(0))
    >>> dec = classwise_decomposition(r, "A", "B", "C")
    >>> dec.eq44_holds and dec.averaging_identity_gap < 1e-9
    True
    """
    if relation.is_empty():
        raise DistributionError("classwise decomposition of an empty relation")
    left_attrs = (left,) if isinstance(left, str) else tuple(left)
    right_attrs = (right,) if isinstance(right, str) else tuple(right)
    covered = set(left_attrs) | set(right_attrs) | {condition}
    missing = relation.schema.name_set - covered
    if missing:
        raise UnknownAttributeError(
            f"MVD groups must cover the relation; missing {sorted(missing)}"
        )
    n_total = len(relation)
    d_a = relation.projection_size(left_attrs)
    d_b = relation.projection_size(right_attrs)

    values = sorted(relation.active_domain(condition), key=repr)
    d_c = len(values)
    profiles = []
    for value in values:
        block = relation.select_eq(condition, value)
        n = len(block)
        left_proj = block.project(
            block.schema.canonical_order(set(left_attrs) | {condition})
        )
        right_proj = block.project(
            block.schema.canonical_order(set(right_attrs) | {condition})
        )
        rho = (join_size(left_proj, right_proj) - n) / n
        mi = mutual_information(block, left_attrs, right_attrs)
        profiles.append(
            ClassProfile(
                value=(value,),
                n=n,
                weight=n / n_total,
                rho=rho,
                rho_ceiling=d_a * d_b / n - 1.0,
                mi=mi,
            )
        )

    from repro.core.loss import split_loss
    from repro.info.entropy import joint_entropy

    global_rho = split_loss(
        relation,
        set(left_attrs) | {condition},
        set(right_attrs) | {condition},
    )
    h_c = joint_entropy(relation, [condition])
    cmi = conditional_mutual_information(
        relation, left_attrs, right_attrs, [condition]
    )
    return ClasswiseDecomposition(
        classes=tuple(profiles),
        log_loss=math.log1p(global_rho),
        entropy_gap=math.log(d_c) - h_c,
        weighted_log_ceiling=sum(
            p.weight * math.log1p(p.rho_ceiling) for p in profiles
        ),
        weighted_log_loss=sum(
            p.weight * math.log1p(p.rho) for p in profiles
        ),
        cmi=cmi,
    )

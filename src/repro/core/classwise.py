"""Per-class loss decomposition — the log-sum step of Theorem 5.1's proof.

For an MVD ``φ = C ↠ A|B``, conditioning on ``C = ℓ`` gives per-class
relations ``R_ℓ = σ_{C=ℓ}(R)`` with sizes ``N(ℓ)``, realized per-class
losses ``ρ(ℓ)``, per-class loss *ceilings* ``ρ̄(ℓ) = d_A·d_B/N(ℓ) − 1``
(Eq. 323), and mutual informations ``I(A;B | C = ℓ)``.  The proof of
Theorem 5.1 glues the per-class picture together with the log-sum
inequality (Eq. 44 / Eq. 335):

    log(1 + ρ(R, φ)) ≤ [log d_C − H(C)] + Σ_ℓ P[C=ℓ]·log(1 + ρ̄(ℓ)),

— note the *ceilings* on the right (with realized per-class losses the
inequality is false; two same-size classes, one diagonal and one
constant-B, violate it) — and the averaging identity
``I(A;B|C) = Σ_ℓ P[C=ℓ]·I(A;B|C=ℓ)`` (Eq. 336).  This module computes
all the pieces so both facts can be inspected and tested on concrete
instances.

Since the evaluation-layer refactor, the per-class quantities are
computed *without materializing any per-class relation*: one columnar
group-by per attribute group plus per-class ``bincount`` reductions
yield every class's size, distinct-projection counts, and entropy sums
in a handful of vectorized passes.  The original row-at-a-time loop
(select one class, project, join-count, per-block engine) survives as
:func:`classwise_decomposition_legacy` — the pinned reference of the
equivalence suite, and the fallback when the MVD groups overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.evalcontext import EvalContext
from repro.errors import DistributionError, UnknownAttributeError
from repro.info.divergence import (
    conditional_mutual_information,
    mutual_information,
)
from repro.relations.join import join_size
from repro.relations.relation import Relation


@dataclass(frozen=True)
class ClassProfile:
    """One conditioning class ``C = value`` of an MVD split."""

    value: tuple
    n: int
    weight: float          # P[C = value] = n / N
    rho: float             # realized per-class loss (Eq. 28 on the class)
    rho_ceiling: float     # ρ̄(ℓ) = d_A·d_B/N(ℓ) − 1 (Eq. 323)
    mi: float              # I(A; B | C = value), nats


@dataclass(frozen=True)
class ClasswiseDecomposition:
    """All per-class quantities plus the glued (Eq. 44) bound.

    Attributes
    ----------
    classes:
        Per-class profiles, sorted by class value.
    log_loss:
        ``log(1 + ρ(R, φ))`` — the global quantity being bounded.
    entropy_gap:
        ``log d_C − H(C)`` where ``d_C`` is the *active* domain of ``C``.
    weighted_log_ceiling:
        ``Σ_ℓ P[C=ℓ]·log(1 + ρ̄(ℓ))`` — the Eq. 44 sum (ceilings!).
    weighted_log_loss:
        ``Σ_ℓ P[C=ℓ]·log(1 + ρ(ℓ))`` with realized losses, for contrast.
    cmi:
        ``I(A;B|C)`` — equals the weighted average of per-class MIs.
    """

    classes: tuple[ClassProfile, ...]
    log_loss: float
    entropy_gap: float
    weighted_log_ceiling: float
    weighted_log_loss: float
    cmi: float

    @property
    def eq44_bound(self) -> float:
        """The right-hand side of Eq. 44 (entropy gap + ceiling sum)."""
        return self.entropy_gap + self.weighted_log_ceiling

    @property
    def eq44_holds(self) -> bool:
        """Whether the log-sum glue step holds on this instance.

        Always true — Eq. 44 is unconditional for the ceiling form.
        """
        return self.log_loss <= self.eq44_bound + 1e-9

    @property
    def averaging_identity_gap(self) -> float:
        """``|I(A;B|C) − Σ_ℓ P[C=ℓ]·I(A;B|C=ℓ)|`` (should be ~0, Eq. 336)."""
        weighted = sum(c.weight * c.mi for c in self.classes)
        return abs(self.cmi - weighted)


def _normalize_groups(
    relation: Relation,
    left: str | tuple[str, ...],
    right: str | tuple[str, ...],
    condition: str,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Validate the MVD groups and return the two sides as tuples."""
    if relation.is_empty():
        raise DistributionError("classwise decomposition of an empty relation")
    left_attrs = (left,) if isinstance(left, str) else tuple(left)
    right_attrs = (right,) if isinstance(right, str) else tuple(right)
    covered = set(left_attrs) | set(right_attrs) | {condition}
    missing = relation.schema.name_set - covered
    if missing:
        raise UnknownAttributeError(
            f"MVD groups must cover the relation; missing {sorted(missing)}"
        )
    return left_attrs, right_attrs


def classwise_decomposition(
    relation: Relation,
    left: str | tuple[str, ...],
    right: str | tuple[str, ...],
    condition: str,
    *,
    context: EvalContext | None = None,
) -> ClasswiseDecomposition:
    """Decompose the loss of ``condition ↠ left | right`` per class.

    Domain sizes ``d_A, d_B`` for the ceilings use the *global active*
    domains ``|Π_left(R)|, |Π_right(R)|`` — the tightest sizes for which
    every per-class projection still fits.

    Fully vectorized on the columnar backend: for each of the groups
    ``L∪{C}`` and ``R∪{C}``, one cached group-by plus two per-class
    ``bincount`` reductions produce every class's distinct-projection
    count (for ``ρ(ℓ)``) and entropy sum ``Σ c·log c`` (for
    ``I(A;B|C=ℓ)``, since ``C`` is constant within a class).  When the
    groups overlap (the sides share attributes beyond ``C``), the
    product-of-distincts join count does not apply and the pinned
    row-based path takes over.

    Parameters
    ----------
    relation:
        The universal relation; ``left``/``right``/``condition`` must
        cover its attributes.
    left, right:
        The two MVD groups (single attribute name or tuple of names).
    condition:
        The conditioning attribute ``C`` (single attribute).
    context:
        Optional shared :class:`~repro.core.evalcontext.EvalContext`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.random_relations import random_relation
    >>> r = random_relation({"A": 4, "B": 4, "C": 2}, 12, np.random.default_rng(0))
    >>> dec = classwise_decomposition(r, "A", "B", "C")
    >>> dec.eq44_holds and dec.averaging_identity_gap < 1e-9
    True
    """
    left_attrs, right_attrs = _normalize_groups(relation, left, right, condition)
    left_set = set(left_attrs)
    right_set = set(right_attrs)
    if (
        left_set & right_set
        or condition in left_set
        or condition in right_set
    ):
        # Overlapping groups join on more than C; the vectorized
        # product-of-distincts count below would undercount.
        return classwise_decomposition_legacy(relation, left, right, condition)
    if context is None:
        context = EvalContext.for_relation(relation)
    engine = context.engine
    schema = relation.schema
    store = relation.columns()
    n_total = len(relation)
    d_a = context.projection_size(left_attrs)
    d_b = context.projection_size(right_attrs)

    condition_group = store.groups(schema.indices((condition,)))
    n_classes = len(condition_group.counts)
    class_sizes = condition_group.counts
    row_list = store.row_list
    condition_pos = schema.index(condition)
    class_values = [
        row_list[i][condition_pos] for i in condition_group.first_index.tolist()
    ]

    def class_reductions(attrs: set[str]) -> tuple[np.ndarray, np.ndarray]:
        """Per-class ``Σ c·log c`` and distinct count of ``attrs ∪ {C}``."""
        positions = schema.indices(schema.canonical_order(attrs | {condition}))
        group = store.groups(positions)
        classes_of_group = condition_group.gids[group.first_index]
        counts = group.counts.astype(np.float64)
        entropy_sums = np.bincount(
            classes_of_group, weights=counts * np.log(counts), minlength=n_classes
        )
        distinct = np.bincount(classes_of_group, minlength=n_classes)
        return entropy_sums, distinct

    # C is constant within a class, so the multiplicities of L (resp. R)
    # inside class ℓ equal the multiplicities of the L∪{C} (resp. R∪{C})
    # groups that fall in ℓ; and the block projects to distinct full
    # tuples, hence H_ℓ(L∪R) = log N(ℓ) exactly.
    left_sums, left_distinct = class_reductions(left_set)
    right_sums, right_distinct = class_reductions(right_set)
    sizes = class_sizes.astype(np.float64)
    mi = np.maximum(np.log(sizes) - (left_sums + right_sums) / sizes, 0.0)
    rho = (left_distinct * right_distinct - class_sizes) / sizes
    ceilings = d_a * d_b / sizes - 1.0
    weights = sizes / n_total

    profiles = [
        ClassProfile(
            value=(class_values[g],),
            n=int(class_sizes[g]),
            weight=float(weights[g]),
            rho=float(rho[g]),
            rho_ceiling=float(ceilings[g]),
            mi=float(mi[g]),
        )
        for g in range(n_classes)
    ]
    profiles.sort(key=lambda p: repr(p.value[0]))

    global_rho = (
        context.split_join_size(left_set | {condition}, right_set | {condition})
        - n_total
    ) / n_total
    h_c = engine.entropy((condition,))
    cmi = engine.cmi(left_attrs, right_attrs, (condition,))
    return ClasswiseDecomposition(
        classes=tuple(profiles),
        log_loss=math.log1p(global_rho),
        entropy_gap=math.log(n_classes) - h_c,
        weighted_log_ceiling=float(weights @ np.log1p(ceilings)),
        weighted_log_loss=float(weights @ np.log1p(rho)),
        cmi=cmi,
    )


def classwise_decomposition_legacy(
    relation: Relation,
    left: str | tuple[str, ...],
    right: str | tuple[str, ...],
    condition: str,
) -> ClasswiseDecomposition:
    """The pinned row-at-a-time path (one select/project/join per class).

    Reference implementation for the equivalence suite, and the general
    path for overlapping MVD groups.
    """
    left_attrs, right_attrs = _normalize_groups(relation, left, right, condition)
    n_total = len(relation)
    d_a = relation.projection_size(left_attrs)
    d_b = relation.projection_size(right_attrs)

    values = sorted(relation.active_domain(condition), key=repr)
    d_c = len(values)
    profiles = []
    for value in values:
        block = relation.select_eq(condition, value)
        n = len(block)
        left_proj = block.project(
            block.schema.canonical_order(set(left_attrs) | {condition})
        )
        right_proj = block.project(
            block.schema.canonical_order(set(right_attrs) | {condition})
        )
        rho = (join_size(left_proj, right_proj) - n) / n
        mi = mutual_information(block, left_attrs, right_attrs)
        profiles.append(
            ClassProfile(
                value=(value,),
                n=n,
                weight=n / n_total,
                rho=rho,
                rho_ceiling=d_a * d_b / n - 1.0,
                mi=mi,
            )
        )

    from repro.core.legacy import split_loss_legacy
    from repro.info.entropy import joint_entropy

    global_rho = split_loss_legacy(
        relation,
        set(left_attrs) | {condition},
        set(right_attrs) | {condition},
    )
    h_c = joint_entropy(relation, [condition])
    cmi = conditional_mutual_information(
        relation, left_attrs, right_attrs, [condition]
    )
    return ClasswiseDecomposition(
        classes=tuple(profiles),
        log_loss=math.log1p(global_rho),
        entropy_gap=math.log(d_c) - h_c,
        weighted_log_ceiling=sum(
            p.weight * math.log1p(p.rho_ceiling) for p in profiles
        ),
        weighted_log_loss=sum(
            p.weight * math.log1p(p.rho) for p in profiles
        ),
        cmi=cmi,
    )

"""Evaluation context: everything one loss evaluation needs, in one bundle.

The discovery layer has :class:`~repro.discovery.context.SearchContext`;
this is its evaluation-side sibling.  An :class:`EvalContext` carries one
relation together with its memoizing :class:`~repro.info.engine.EntropyEngine`
*and* three further memo layers the evaluation pipeline shares:

* **tree join sizes** — ``|⋈ᵢ R[Ωᵢ]|`` per join tree (hashable), so
  ``ρ``, the product-bound check, and the stepwise-expansion bound all
  pay for each message-passing count exactly once (the stepwise bound's
  last prefix *is* the full tree, so even cross-function reuse happens);
* **split join sizes** — the two-projection counts of Eq. 28, keyed by
  the unordered ``{left, right}`` pair, shared between per-split losses,
  the product bound, and the classwise decomposition;
* **projection sizes** — active domain sizes ``|Π_Y(R)|`` for the
  bounds' ``d_A``-style quantities.

Like the relation's entropy engine, the context is cached *on* the
relation (:meth:`EvalContext.for_relation`), so every evaluation entry
point — :func:`~repro.core.analysis.analyze`, the loss functions, the
factorization pipeline, experiments — converges on one shared memo per
relation instance.  Relations are immutable, hence nothing is ever
invalidated.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import DistributionError
from repro.info.engine import EntropyEngine
from repro.jointrees.jointree import JoinTree
from repro.relations.join import acyclic_join_size, split_join_size
from repro.relations.relation import Relation

#: Cache key for an unordered two-projection split.
_SplitKey = frozenset


@dataclass
class EvalContext:
    """Shared memo state for evaluating schemas against one relation.

    Attributes
    ----------
    relation:
        The universal relation instance ``R`` being evaluated.
    engine:
        The relation's memoizing entropy engine; all ``H``/CMI queries
        route through it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.random_relations import random_relation
    >>> from repro.jointrees.build import jointree_from_schema
    >>> r = random_relation({"A": 4, "B": 4, "C": 2}, 20, np.random.default_rng(0))
    >>> ctx = EvalContext.for_relation(r)
    >>> tree = jointree_from_schema([{"A", "C"}, {"B", "C"}])
    >>> ctx.spurious_count(tree) == ctx.join_size(tree) - len(r)
    True
    >>> ctx.join_size(tree) == ctx.join_size(tree)  # second call is a memo hit
    True
    """

    relation: Relation
    engine: EntropyEngine
    _join_sizes: dict[JoinTree, int] = field(default_factory=dict, repr=False)
    _split_sizes: dict[frozenset, int] = field(default_factory=dict, repr=False)
    _projection_sizes: dict[tuple[str, ...], int] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def for_relation(
        cls, relation: Relation, *, engine: EntropyEngine | None = None
    ) -> "EvalContext":
        """The context cached on ``relation`` (created on first use).

        All evaluation call sites route through this accessor, so any mix
        of ``analyze`` / loss / factorization calls against the same
        relation instance shares one memo, exactly like
        :meth:`EntropyEngine.for_relation`.  Passing an explicit
        ``engine`` builds a detached context around it instead.
        """
        if engine is not None:
            return cls(relation=relation, engine=engine)
        context = relation._eval
        if context is None:
            context = cls(
                relation=relation, engine=EntropyEngine.for_relation(relation)
            )
            relation._eval = context
        return context

    # ------------------------------------------------------------------
    # Entropy queries (delegated to the engine)
    # ------------------------------------------------------------------
    def entropy(self, attributes: Iterable[str], *, base: float | None = None) -> float:
        """``H(attributes)`` via the shared engine memo."""
        return self.engine.entropy(attributes, base=base)

    def cmi(
        self,
        left: Iterable[str],
        right: Iterable[str],
        given: Iterable[str] = (),
        *,
        base: float | None = None,
    ) -> float:
        """``I(left; right | given)`` via the shared engine memo."""
        return self.engine.cmi(left, right, given, base=base)

    # ------------------------------------------------------------------
    # Counting queries (memoized here)
    # ------------------------------------------------------------------
    def projection_size(self, attributes: Iterable[str]) -> int:
        """``|Π_attributes(R)|`` (memoized per canonical subset)."""
        key = self.relation.schema.canonical_order(attributes)
        size = self._projection_sizes.get(key)
        if size is None:
            size = self.relation.projection_size(key)
            self._projection_sizes[key] = size
        return size

    def join_size(self, jointree: JoinTree) -> int:
        """``|⋈ᵢ R[Ωᵢ]|`` for the tree's bags (memoized per tree)."""
        size = self._join_sizes.get(jointree)
        if size is None:
            size = acyclic_join_size(self.relation, jointree)
            self._join_sizes[jointree] = size
        return size

    def split_join_size(self, left: Iterable[str], right: Iterable[str]) -> int:
        """``|R[left] ⋈ R[right]|`` (memoized per unordered side pair)."""
        schema = self.relation.schema
        left_key = frozenset(schema.canonical_order(left))
        right_key = frozenset(schema.canonical_order(right))
        key = _SplitKey((left_key, right_key))
        size = self._split_sizes.get(key)
        if size is None:
            size = split_join_size(self.relation, left_key, right_key)
            self._split_sizes[key] = size
        return size

    # ------------------------------------------------------------------
    # Loss quantities
    # ------------------------------------------------------------------
    def spurious_count(self, jointree: JoinTree) -> int:
        """``|⋈ᵢ R[Ωᵢ]| − |R|`` — the number of spurious tuples."""
        if self.relation.is_empty():
            return 0
        return self.join_size(jointree) - len(self.relation)

    def spurious_loss(self, jointree: JoinTree) -> float:
        """``ρ(R, S)`` (Eq. 1) for the schema defined by ``jointree``."""
        if self.relation.is_empty():
            raise DistributionError("ρ(R, S) is undefined for an empty relation")
        return self.spurious_count(jointree) / len(self.relation)

    def j_measure(self, jointree: JoinTree, *, base: float | None = None) -> float:
        """``J(T)`` (entropy form) through the shared engine."""
        from repro.core.jmeasure import j_measure

        return j_measure(self.relation, jointree, base=base, engine=self.engine)

    def j_measure_kl(self, jointree: JoinTree, *, base: float | None = None) -> float:
        """``J(T) = D_KL(P‖P^T)`` on the columnar KL path."""
        from repro.core.jmeasure import j_measure_kl

        return j_measure_kl(self.relation, jointree, base=base)

    def cache_stats(self) -> dict[str, int]:
        """Sizes of the context's memo layers (diagnostics/tests)."""
        return {
            "entropies": self.engine.cache_size(),
            "tree_join_sizes": len(self._join_sizes),
            "split_join_sizes": len(self._split_sizes),
            "projection_sizes": len(self._projection_sizes),
        }

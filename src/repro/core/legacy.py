"""Pinned row-based evaluation paths (the pre-engine implementations).

The evaluation layer — J-measure, KL form, split losses, the classwise
decomposition — now runs on the columnar :class:`~repro.info.engine.EntropyEngine`
backend through :class:`~repro.core.evalcontext.EvalContext`.  This module
keeps the original row-at-a-time implementations alive under ``*_legacy``
names, the same pattern as the pinned ``recursive`` discovery strategy:

* they are the independently-checkable reference the equivalence suite
  (``tests/test_eval_equivalence.py``) compares the engine paths against;
* they are the "before" side of ``make bench-jmeasure``
  (``BENCH_jmeasure.json``).

Nothing in the library calls these on a hot path.  All quantities are in
nats unless ``base`` is given.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.info.distribution import EmpiricalDistribution
from repro.info.divergence import kl_divergence_to_callable
from repro.info.factorization import junction_tree_factorization
from repro.jointrees.jointree import JoinTree
from repro.relations.join import join_size
from repro.relations.relation import Relation
from repro.relations.schema import Row


def j_measure_legacy(
    relation: Relation, jointree: JoinTree, *, base: float | None = None
) -> float:
    """``J(T)`` by the entropy formula, via explicit marginal distributions.

    Materializes the empirical distribution and one marginal per bag and
    per non-empty separator — the pre-engine evaluation path.
    """
    from repro.core.jmeasure import _require_cover

    _require_cover(relation, jointree)
    dist = EmpiricalDistribution.from_relation(relation)
    total = -dist.entropy()
    for node in jointree.node_ids():
        total += dist.marginal(jointree.bag(node)).entropy()
    for separator in jointree.separators():
        if separator:
            total -= dist.marginal(separator).entropy()
    total = max(total, 0.0)
    if base is not None:
        total /= math.log(base)
    return total


def j_measure_kl_legacy(
    relation: Relation, jointree: JoinTree, *, base: float | None = None
) -> float:
    """``J(T) = D_KL(P ‖ P^T)`` via the lazily-evaluated factorization.

    Builds :class:`~repro.info.distribution.EmpiricalDistribution` and a
    :class:`~repro.info.factorization.FactorizedDistribution`, then sums
    ``p·log(p/q)`` tuple by tuple over ``P``'s support — the pre-engine
    KL path (linear in ``|R|`` but entirely dict-based).
    """
    from repro.core.jmeasure import _require_cover

    _require_cover(relation, jointree)
    p = EmpiricalDistribution.from_relation(relation)
    p_tree = junction_tree_factorization(p, jointree)
    return kl_divergence_to_callable(p, p_tree.prob, base=base)


def split_join_size_legacy(relation: Relation, left, right) -> int:
    """``|R[left] ⋈ R[right]|`` by materializing both projections.

    The pre-engine path behind :func:`~repro.core.loss.split_loss`:
    projects twice, then counts via the ``Counter``-rekeying pairwise
    :func:`~repro.relations.join.join_size`.
    """
    left_proj = relation.project(relation.schema.canonical_order(left))
    right_proj = relation.project(relation.schema.canonical_order(right))
    return join_size(left_proj, right_proj)


def split_loss_legacy(relation: Relation, left, right) -> float:
    """``ρ(R, φ)`` for a two-projection split, on the legacy join counter."""
    from repro.core.loss import _require_split_cover

    left, right = _require_split_cover(relation, left, right)
    size = split_join_size_legacy(relation, left, right)
    return (size - len(relation)) / len(relation)


def acyclic_join_size_legacy(relation: Relation, jointree: JoinTree) -> int:
    """``|⋈ᵢ R[Ωᵢ]|`` via the dict-of-tuples message passing (exact bignums).

    Runs the reference Python DP directly, bypassing the dense/columnar
    fast tiers of :func:`~repro.relations.join.acyclic_join_size`.
    """
    bags = jointree.bags()
    missing = set().union(*bags) - set(relation.schema.names)
    if missing:
        from repro.errors import JoinTreeError

        raise JoinTreeError(
            f"join tree mentions attributes not in the relation: {sorted(missing)}"
        )
    if relation.is_empty():
        return 0
    order = jointree.topological_order()
    parent_of = jointree.parents()

    tables: dict[int, dict[Row, int]] = {}
    bag_orders: dict[int, tuple[str, ...]] = {}
    for node in jointree.node_ids():
        bag_order = relation.schema.canonical_order(jointree.bag(node))
        bag_orders[node] = bag_order
        getter_idx = relation.schema.indices(bag_order)
        seen = {tuple(row[i] for i in getter_idx) for row in relation.rows()}
        tables[node] = {row: 1 for row in seen}

    for node in order[:-1]:
        parent = parent_of[node]
        separator = jointree.bag(node) & jointree.bag(parent)
        sep_order = relation.schema.canonical_order(separator) if separator else ()
        message: dict[Row, int] = defaultdict(int)
        child_positions = tuple(bag_orders[node].index(a) for a in sep_order)
        for row, weight in tables[node].items():
            message[tuple(row[i] for i in child_positions)] += weight
        parent_positions = tuple(bag_orders[parent].index(a) for a in sep_order)
        parent_table = tables[parent]
        for row in list(parent_table):
            hit = message.get(tuple(row[i] for i in parent_positions))
            if hit is None:
                del parent_table[row]
            else:
                parent_table[row] *= hit
        del tables[node]
    return sum(tables[order[-1]].values())


def spurious_loss_legacy(relation: Relation, jointree: JoinTree) -> float:
    """``ρ(R, S)`` on the legacy join counter."""
    from repro.errors import DistributionError

    if relation.is_empty():
        raise DistributionError("ρ(R, S) is undefined for an empty relation")
    return (acyclic_join_size_legacy(relation, jointree) - len(relation)) / len(
        relation
    )


def support_split_losses_legacy(
    relation: Relation, jointree: JoinTree, *, root: int | None = None
) -> tuple[float, ...]:
    """Per-split ``ρ(R, φᵢ)`` values on the legacy join counter."""
    return tuple(
        split_loss_legacy(relation, split.prefix, split.suffix)
        for split in jointree.rooted_splits(root)
    )


def legacy_loss_profile(relation: Relation, jointree: JoinTree) -> dict[str, object]:
    """The pre-engine cost of one ``analyze``-style evaluation.

    Computes the four quantities every loss analysis needs — ``J``
    (entropy form), ``J`` (KL form), ``ρ``, and the per-split losses —
    entirely on the row-based reference paths.  This is the "before"
    side of ``make bench-jmeasure``.
    """
    return {
        "j_measure": j_measure_legacy(relation, jointree),
        "j_kl": j_measure_kl_legacy(relation, jointree),
        "rho": spurious_loss_legacy(relation, jointree),
        "split_losses": support_split_losses_legacy(relation, jointree),
    }

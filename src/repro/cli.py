"""Command-line interface: analyze tables, mine schemas, run experiments.

Installed as ``repro-ajd`` (see pyproject).  Subcommands:

* ``analyze <csv> --schema "A,B;B,C"`` — full loss analysis of a CSV table
  under a user-supplied acyclic schema;
* ``mine <csv> [--threshold T] [--strategy S] [--workers N]
  [--deadline SEC]`` — discover a low-J acyclic schema with any
  registered strategy, optionally with parallel split scoring and a
  wall-clock budget;
* ``experiment <id>|all``              — run a paper experiment (E1–E8);
* ``version``                          — print the package version.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.core.analysis import analyze
from repro.discovery.miner import mine_jointree
from repro.discovery.strategies import available_strategies
from repro.errors import DiscoveryError, ReproError
from repro.jointrees.build import jointree_from_schema
from repro.relations.io import infer_integer_domains, read_csv
from repro.relations.relation import Relation


def _parse_schema(text: str) -> list[set[str]]:
    """Parse ``"A,B;B,C"`` into ``[{"A","B"}, {"B","C"}]``."""
    bags = []
    for part in text.split(";"):
        attrs = {a.strip() for a in part.split(",") if a.strip()}
        if attrs:
            bags.append(attrs)
    if not bags:
        raise ReproError(f"could not parse any schema bags from {text!r}")
    return bags


def _cmd_analyze(args: argparse.Namespace) -> int:
    relation = infer_integer_domains(read_csv(args.csv))
    tree = jointree_from_schema(_parse_schema(args.schema))
    report = analyze(relation, tree, delta=args.delta)
    print(report.render())
    return 0


def _require_minable(relation: Relation, path: str) -> None:
    """Reject inputs no strategy can decompose, with a clean message."""
    if relation.is_empty():
        raise DiscoveryError(
            f"{path} has no data rows; mining needs a non-empty table"
        )
    if relation.schema.arity < 2:
        raise DiscoveryError(
            f"{path} has {relation.schema.arity} column(s); mining a "
            "schema needs at least two"
        )


def _cmd_mine(args: argparse.Namespace) -> int:
    loaded = read_csv(args.csv)
    _require_minable(loaded, args.csv)
    relation = infer_integer_domains(loaded)
    mined = mine_jointree(
        relation,
        threshold=args.threshold,
        max_separator_size=args.max_separator,
        strategy=args.strategy,
        workers=args.workers,
        deadline=args.deadline,
        seed=args.seed,
    )
    print(f"mined schema ({args.strategy}):")
    for bag in sorted(mined.bags, key=lambda b: sorted(b)):
        print("  {" + ", ".join(sorted(bag)) + "}")
    print(f"J-measure: {mined.j_value:.6g} nats")
    print(f"loss rho : {mined.rho:.6g}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    return runner.main([args.id])


def _cmd_version(_: argparse.Namespace) -> int:
    import repro

    print(repro.__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ajd",
        description="Quantify the loss of acyclic join dependencies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a CSV under a schema")
    p_analyze.add_argument("csv", help="path to a CSV file with a header row")
    p_analyze.add_argument(
        "--schema",
        required=True,
        help="acyclic schema as semicolon-separated comma lists, e.g. 'A,B;B,C'",
    )
    p_analyze.add_argument(
        "--delta",
        type=float,
        default=None,
        help="failure budget for the probabilistic bounds (omit to skip)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_mine = sub.add_parser("mine", help="discover a low-J acyclic schema")
    p_mine.add_argument("csv", help="path to a CSV file with a header row")
    p_mine.add_argument(
        "--threshold",
        type=float,
        default=1e-9,
        help="maximum CMI (nats) an accepted split may incur",
    )
    p_mine.add_argument(
        "--max-separator",
        type=int,
        default=2,
        help="maximum separator size searched",
    )
    p_mine.add_argument(
        "--strategy",
        choices=available_strategies(),
        default="recursive",
        help="search strategy (default: recursive, the classic miner)",
    )
    p_mine.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for split scoring (>1 enables the "
        "multiprocessing backend; default: serial)",
    )
    p_mine.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; anytime-aware strategies "
        "return their best-so-far schema when it expires",
    )
    p_mine.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for randomized strategies",
    )
    p_mine.set_defaults(func=_cmd_mine)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (E1..E8) or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_version = sub.add_parser("version", help="print the package version")
    p_version.set_defaults(func=_cmd_version)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises


if __name__ == "__main__":
    raise SystemExit(main())

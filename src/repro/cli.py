"""Command-line interface: analyze tables, mine schemas, decompose, run experiments.

Installed as ``repro-ajd`` (see pyproject).  Subcommands:

* ``analyze <csv> --schema "A,B;B,C" [--json]`` — full loss analysis of a
  CSV table under a user-supplied acyclic schema;
* ``mine <csv> [--threshold T] [--strategy S] [--workers N]
  [--deadline SEC] [--json]`` — discover a low-J acyclic schema with any
  registered strategy, optionally with parallel split scoring and a
  wall-clock budget;
* ``decompose <csv> [--strategy S | --schema ...] [--out-dir DIR]`` —
  mine (or take) a schema, materialize the semijoin-reduced bag
  projections, measure the decomposition, and emit a JSON report (plus
  one CSV per bag when ``--out-dir`` is given);
* ``serve [--port P] [--workers N] [--memory-budget-mb M]
  [--spill-dir DIR] ...`` — run the decomposition service: an HTTP/JSON
  API with a dataset registry, fingerprint-keyed result cache, and a job
  worker pool (see :mod:`repro.service` and ``docs/service.md``);
* ``snapshot <csv> <out>`` — write a persistent columnar snapshot of a
  CSV (mmap-loadable ``.npy`` code arrays + decoders, see
  :mod:`repro.relations.persist`), so later runs and service restarts
  reload it without re-parsing;
* ``experiment <id>|all``              — run a paper experiment (E1–E10);
* ``version``                          — print the package version.

Exit codes follow the usual CLI contract (service smoke scripts rely on
it): 0 on success and on ``--help`` (top-level or any subcommand), 2 on
usage errors (unknown subcommand, bad flags) and on clean-rejection
errors (unreadable/malformed input, contradictory flags).

``mine --json``, ``analyze --json``, and ``decompose`` share one JSON
report core (see :mod:`repro.factorize.report`): ``command``,
``strategy``, ``j_measure``, ``rho``, ``wall_time_s``, ``n_rows``,
``n_cols``.

All three table-consuming commands take ``--chunk-rows N`` (stream the
CSV in bounded-memory chunks instead of an eager load) and ``--backend
exact|sketch`` (exact columnar entropies, or one-pass CountMin/KMV
streaming estimates with Miller–Madow correction).  What the sketch
backend affects differs per command: ``mine`` scores splits and reports
J and ρ from streaming estimates; ``analyze`` estimates the
entropy-derived quantities (J entropy form, CMIs, sandwich) while ρ and
the join-size-based bounds still run the exact counters; ``decompose``
uses it for the mining phase only — the written decomposition and its
report stay exact.
"""

from __future__ import annotations

import argparse
import json
import time
from collections.abc import Sequence

from repro.core.analysis import analyze
from repro.core.evalcontext import EvalContext
from repro.discovery.miner import mine_jointree
from repro.discovery.strategies import available_strategies
from repro.errors import DiscoveryError, ReproError
from repro.factorize.pipeline import decompose, write_decomposition
from repro.factorize.report import base_report
from repro.info.backends import available_backends, make_backend
from repro.info.engine import EntropyEngine
from repro.jointrees.build import jointree_from_schema
from repro.relations.io import infer_integer_domains, read_csv
from repro.relations.relation import Relation


def _parse_schema(text: str) -> list[set[str]]:
    """Parse ``"A,B;B,C"`` into ``[{"A","B"}, {"B","C"}]``."""
    bags = []
    for part in text.split(";"):
        attrs = {a.strip() for a in part.split(",") if a.strip()}
        if attrs:
            bags.append(attrs)
    if not bags:
        raise ReproError(f"could not parse any schema bags from {text!r}")
    return bags


def _print_json(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _load_csv(args: argparse.Namespace) -> Relation:
    """Load the command's CSV — eagerly, or streamed when ``--chunk-rows``.

    The streamed path (:meth:`Relation.from_csv_stream`) ingests the file
    in bounded-memory chunks and produces a relation equal to the eager
    one, with its columnar store pre-seeded from the streamed codes.
    """
    if args.chunk_rows is not None:
        return Relation.from_csv_stream(args.csv, chunk_rows=args.chunk_rows)
    return read_csv(args.csv)


def _resolve_backend(args: argparse.Namespace):
    """The run's entropy backend instance, or ``None`` for plain exact."""
    if args.backend == "exact":
        return None
    return make_backend(args.backend, chunk_rows=args.chunk_rows)


def _cmd_analyze(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    relation = infer_integer_domains(_load_csv(args))
    tree = jointree_from_schema(_parse_schema(args.schema))
    backend = _resolve_backend(args)
    context = (
        EvalContext.for_relation(
            relation, engine=EntropyEngine(relation, backend=backend)
        )
        if backend is not None
        else None
    )
    report = analyze(relation, tree, delta=args.delta, context=context)
    if args.json:
        payload = base_report(
            command="analyze",
            strategy=None,
            j_measure=report.j_entropy,
            rho=report.rho,
            wall_time_s=time.perf_counter() - start,
            n_rows=report.n,
            n_cols=report.num_attributes,
        )
        payload.update(report.to_dict())
        payload["backend"] = args.backend
        _print_json(payload)
    else:
        print(report.render())
    return 0


def _require_minable(relation: Relation, path: str) -> None:
    """Reject inputs no strategy can decompose, with a clean message."""
    if relation.is_empty():
        raise DiscoveryError(
            f"{path} has no data rows; mining needs a non-empty table"
        )
    if relation.schema.arity < 2:
        raise DiscoveryError(
            f"{path} has {relation.schema.arity} column(s); mining a "
            "schema needs at least two"
        )


def _cmd_mine(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    loaded = _load_csv(args)
    _require_minable(loaded, args.csv)
    relation = infer_integer_domains(loaded)
    mined = mine_jointree(
        relation,
        threshold=args.threshold,
        max_separator_size=args.max_separator,
        strategy=args.strategy,
        workers=args.workers,
        deadline=args.deadline,
        seed=args.seed,
        backend=_resolve_backend(args),
    )
    sorted_bags = sorted((sorted(bag) for bag in mined.bags))
    if args.json:
        payload = base_report(
            command="mine",
            strategy=args.strategy,
            j_measure=mined.j_value,
            rho=mined.rho,
            wall_time_s=time.perf_counter() - start,
            n_rows=len(relation),
            n_cols=relation.schema.arity,
        )
        payload["bags"] = sorted_bags
        payload["threshold"] = args.threshold
        payload["backend"] = args.backend
        _print_json(payload)
        return 0
    print(f"mined schema ({args.strategy}):")
    for bag in sorted_bags:
        print("  {" + ", ".join(bag) + "}")
    print(f"J-measure: {mined.j_value:.6g} nats")
    print(f"loss rho : {mined.rho:.6g}")
    return 0


def _require_no_mining_flags(args: argparse.Namespace) -> None:
    """``--schema`` and the mining knobs contradict each other; say so."""
    conflicting = [
        f"--{name.replace('_', '-')}"
        for name, default in _MINING_DEFAULTS.items()
        if getattr(args, name) != default
    ]
    if conflicting:
        raise ReproError(
            "--schema supplies the schema directly; the mining option(s) "
            f"{', '.join(conflicting)} would be ignored — drop one side"
        )


def _cmd_decompose(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    loaded = _load_csv(args)
    strategy: str | None = None
    if args.schema is not None:
        _require_no_mining_flags(args)
        relation = infer_integer_domains(loaded)
        tree = jointree_from_schema(_parse_schema(args.schema))
    else:
        _require_minable(loaded, args.csv)
        relation = infer_integer_domains(loaded)
        strategy = args.strategy
        mined = mine_jointree(
            relation,
            threshold=args.threshold,
            max_separator_size=args.max_separator,
            strategy=strategy,
            workers=args.workers,
            deadline=args.deadline,
            seed=args.seed,
            backend=_resolve_backend(args),
        )
        tree = mined.jointree
    decomposition = decompose(relation, tree)
    report = decomposition.report
    payload = base_report(
        command="decompose",
        strategy=strategy,
        j_measure=report.j_measure,
        rho=report.rho,
        wall_time_s=time.perf_counter() - start,
        n_rows=report.n_rows,
        n_cols=report.n_cols,
    )
    payload.update(report.to_dict())
    payload["backend"] = args.backend
    if args.out_dir is not None:
        try:
            paths = write_decomposition(
                decomposition,
                args.out_dir,
                report_extra={
                    key: payload[key]
                    for key in ("command", "strategy", "wall_time_s")
                },
            )
        except OSError as exc:
            raise ReproError(
                f"cannot write decomposition to {args.out_dir}: "
                f"{exc.strerror or exc}"
            ) from exc
        payload["out_dir"] = str(paths["report"].parent)
    _print_json(payload)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service layer (threads, HTTP machinery) should
    # not tax `mine`/`analyze` one-shot invocations.
    from repro.service import Service, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        memory_budget_bytes=(
            args.memory_budget_mb * 1024 * 1024
            if args.memory_budget_mb is not None
            else None
        ),
        max_queue=args.max_queue,
        cache_entries=args.cache_entries,
        spill_dir=args.spill_dir,
        default_deadline_s=args.default_deadline,
        fault_plan=args.fault_plan,
        breaker_failures=args.breaker_failures,
        breaker_cooldown_s=args.breaker_cooldown,
        snapshots=not args.no_snapshots,
        worker_procs=args.worker_procs,
        revalidate_tolerance=args.revalidate_tolerance,
        telemetry=not args.no_telemetry,
        request_log_path=args.request_log,
        request_log_capacity=args.request_log_capacity,
    )
    service = Service(config)
    if service.faults.enabled:
        print(
            json.dumps(
                {
                    "event": "faults_armed",
                    "seed": service.faults.seed,
                    "rules": service.faults.stats()["rules"],
                }
            ),
            flush=True,
        )
    try:
        for path in args.preload:
            entry, _ = service.registry.register_path(path)
            print(
                json.dumps(
                    {
                        "event": "preloaded",
                        "path": path,
                        "fingerprint": entry.fingerprint,
                        "n_rows": entry.n_rows,
                    }
                ),
                flush=True,
            )
    except ReproError:
        service.stop()
        raise
    try:
        port = service.port  # binds the socket
    except OSError as exc:
        service.stop()
        raise ReproError(
            f"cannot bind {config.host}:{config.port}: {exc.strerror or exc}"
        ) from exc
    # One machine-parseable line so wrappers (smoke scripts, benchmarks)
    # can discover an ephemeral port before the blocking serve loop.
    print(
        json.dumps(
            {
                "event": "serving",
                "host": config.host,
                "port": port,
                "workers": config.workers,
                **(
                    {"worker_procs": config.worker_procs}
                    if config.worker_procs
                    else {}
                ),
            }
        ),
        flush=True,
    )
    service.serve_forever()
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.relations.persist import save_snapshot

    start = time.perf_counter()
    relation = _load_csv(args)
    relation = infer_integer_domains(relation)
    out = save_snapshot(
        relation, args.out, source=args.csv, extra={"chunk_rows": args.chunk_rows}
    )
    _print_json(
        {
            "command": "snapshot",
            "fingerprint": relation.fingerprint(),
            "n_rows": len(relation),
            "n_cols": relation.schema.arity,
            "out": str(out),
            "wall_time_s": time.perf_counter() - start,
        }
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    return runner.main([args.id])


def _cmd_version(_: argparse.Namespace) -> int:
    import repro

    print(repro.__version__)
    return 0


#: Mining-knob defaults, shared between ``_add_mining_options`` (the
#: ``add_argument(default=...)`` values) and ``_require_no_mining_flags``
#: (the ``decompose --schema`` conflict check) — one source of truth.
_MINING_DEFAULTS: dict[str, object] = {
    "threshold": 1e-9,
    "max_separator": 2,
    "strategy": "recursive",
    "workers": None,
    "deadline": None,
    "seed": 0,
    "backend": "exact",
}


def _add_ingest_options(parser: argparse.ArgumentParser) -> None:
    """CSV-ingestion knobs shared by every table-consuming command."""
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        metavar="N",
        help="stream the CSV in chunks of N data rows (bounded-memory "
        "ingestion); also sizes the sketch backend's streaming passes. "
        "Default: eager load",
    )


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=_MINING_DEFAULTS["backend"],
        help="entropy backend: 'exact' columnar counts, or 'sketch' "
        "bounded-memory streaming estimates (CountMin/KMV with "
        "Miller-Madow correction). Sketch makes entropy-derived values "
        "estimates; for analyze, rho/join-size bounds stay exact, and "
        "for decompose only the mining phase is affected",
    )


def _add_mining_options(parser: argparse.ArgumentParser) -> None:
    """Discovery knobs shared by ``mine`` and ``decompose``."""
    _add_backend_option(parser)
    parser.add_argument(
        "--threshold",
        type=float,
        default=_MINING_DEFAULTS["threshold"],
        help="maximum CMI (nats) an accepted split may incur",
    )
    parser.add_argument(
        "--max-separator",
        type=int,
        default=_MINING_DEFAULTS["max_separator"],
        help="maximum separator size searched",
    )
    parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=_MINING_DEFAULTS["strategy"],
        help="search strategy (default: recursive, the classic miner)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=_MINING_DEFAULTS["workers"],
        help="worker processes for split scoring (>1 enables the "
        "multiprocessing backend; default: serial)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=_MINING_DEFAULTS["deadline"],
        help="wall-clock budget in seconds; anytime-aware strategies "
        "return their best-so-far schema when it expires",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=_MINING_DEFAULTS["seed"],
        help="RNG seed for randomized strategies",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ajd",
        description="Quantify the loss of acyclic join dependencies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a CSV under a schema")
    p_analyze.add_argument("csv", help="path to a CSV file with a header row")
    _add_ingest_options(p_analyze)
    _add_backend_option(p_analyze)
    p_analyze.add_argument(
        "--schema",
        required=True,
        help="acyclic schema as semicolon-separated comma lists, e.g. 'A,B;B,C'",
    )
    p_analyze.add_argument(
        "--delta",
        type=float,
        default=None,
        help="failure budget for the probabilistic bounds (omit to skip)",
    )
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of the text render",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_mine = sub.add_parser("mine", help="discover a low-J acyclic schema")
    p_mine.add_argument("csv", help="path to a CSV file with a header row")
    _add_ingest_options(p_mine)
    _add_mining_options(p_mine)
    p_mine.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of the text summary",
    )
    p_mine.set_defaults(func=_cmd_mine)

    p_decompose = sub.add_parser(
        "decompose",
        help="factorize a CSV: mine (or take) a schema, write reduced "
        "bag CSVs and a JSON report",
    )
    p_decompose.add_argument("csv", help="path to a CSV file with a header row")
    _add_ingest_options(p_decompose)
    _add_mining_options(p_decompose)
    p_decompose.add_argument(
        "--schema",
        default=None,
        help="use this acyclic schema (e.g. 'A,C;B,C') instead of mining one",
    )
    p_decompose.add_argument(
        "--out-dir",
        default=None,
        help="directory to write one CSV per bag plus report.json",
    )
    p_decompose.set_defaults(func=_cmd_decompose)

    p_serve = sub.add_parser(
        "serve",
        help="run the decomposition service (HTTP/JSON API with a "
        "dataset registry, result cache, and job worker pool)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 picks an ephemeral port (printed on startup)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="job worker threads (default: 2)",
    )
    p_serve.add_argument(
        "--memory-budget-mb",
        type=int,
        default=256,
        metavar="MB",
        help="resident-dataset budget for LRU eviction (default: 256)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="waiting-job bound before submissions get 503 (default: 64)",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="in-memory result-cache capacity (default: 1024)",
    )
    p_serve.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="directory for the result cache's on-disk spill and inline "
        "uploads; restarts pointed here start warm (default: no spill)",
    )
    p_serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SEC",
        help="deadline applied to jobs that do not set one (default: none)",
    )
    p_serve.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="CSV",
        help="register this CSV at startup (repeatable)",
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|PATH",
        help="arm the chaos harness: inline JSON fault plan or a path to "
        "one (default: REPRO_FAULT_PLAN env var, else disabled)",
    )
    p_serve.add_argument(
        "--breaker-failures",
        type=int,
        default=5,
        metavar="N",
        help="consecutive infrastructure failures that open an "
        "operation's circuit breaker (default: 5)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SEC",
        help="seconds an open circuit breaker fast-fails submissions "
        "before probing again (default: 5)",
    )
    p_serve.add_argument(
        "--no-snapshots",
        action="store_true",
        help="disable persistent columnar snapshots (the registry then "
        "always re-ingests evicted datasets from CSV)",
    )
    p_serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable per-request telemetry (spans, structured request "
        "logs, latency histograms); component counters and /v1/metrics "
        "stay live",
    )
    p_serve.add_argument(
        "--request-log",
        default=None,
        metavar="PATH",
        help="append structured JSON request/job log lines to this file "
        "(default: stderr)",
    )
    p_serve.add_argument(
        "--request-log-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="bound on the request-log writer queue; lines beyond it are "
        "dropped and counted rather than blocking the request path",
    )
    p_serve.add_argument(
        "--worker-procs",
        type=int,
        default=0,
        metavar="N",
        help="worker subprocesses for compute scale-out; each owns a "
        "consistent-hash shard of the datasets and jobs are dispatched "
        "to the owner over a local socket (default: 0 = in-process, "
        "bit-identical to the single-process service)",
    )
    p_serve.add_argument(
        "--revalidate-tolerance",
        type=float,
        default=0.05,
        metavar="EPS",
        help="delta-ingest cache revalidation: keep a cached mined "
        "jointree across an append when re-scoring it on the appended "
        "data moves J and rho by at most EPS each; 0 keeps only "
        "bit-stable results (default: 0.05)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="write a persistent columnar snapshot of a CSV (zero-parse "
        "reloads via Relation.load_snapshot or 'serve --spill-dir')",
    )
    p_snapshot.add_argument("csv", help="path to a CSV file with a header row")
    p_snapshot.add_argument(
        "out", help="snapshot directory to write (created/replaced atomically)"
    )
    _add_ingest_options(p_snapshot)
    p_snapshot.set_defaults(func=_cmd_snapshot)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("id", help="experiment id (E1..E10) or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_version = sub.add_parser("version", help="print the package version")
    p_version.set_defaults(func=_cmd_version)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises


if __name__ == "__main__":
    raise SystemExit(main())

"""Search context: everything one discovery run needs, in one bundle.

A :class:`SearchContext` carries the pieces every discovery strategy
consumes — the relation, its memoizing :class:`~repro.info.engine.EntropyEngine`,
the split-scoring backend, the acceptance threshold and search caps, an
optional wall-clock deadline, and a seeded RNG for randomized strategies.
Strategies (:mod:`repro.discovery.strategies`) receive a context and
return bags; they never construct engines, pools, or clocks themselves,
so a new strategy is a one-file plug-in.

The context is deliberately dumb: it owns no search logic.  Its only
behaviours are deadline accounting (:meth:`SearchContext.expired`,
:meth:`SearchContext.remaining`) and construction defaults
(:meth:`SearchContext.create`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DiscoveryError
from repro.info.engine import EntropyEngine
from repro.relations.relation import Relation


@dataclass
class SearchContext:
    """Shared state for one schema-discovery run.

    Attributes
    ----------
    relation:
        The training relation being decomposed.
    engine:
        The memoizing entropy engine all scoring routes through (one
        cache per run; the multiprocessing scorer merges worker memos
        back into it).
    scorer:
        The split-scoring backend (:mod:`repro.discovery.scoring`).
    threshold:
        Maximum CMI (nats) an accepted split may incur.
    max_separator_size:
        Cap on ``|X|`` in candidate MVDs ``X ↠ Y|Z``.
    exact_partition_limit:
        Remainder size up to which bipartitions are searched exhaustively.
    deadline:
        Absolute ``time.monotonic()`` timestamp after which anytime-aware
        strategies stop refining, or ``None`` for no time limit.
    rng:
        Seeded generator for randomized strategies (``anytime`` restarts).
    """

    relation: Relation
    engine: EntropyEngine
    scorer: "object"
    threshold: float = 1e-9
    max_separator_size: int = 2
    exact_partition_limit: int = 10
    deadline: float | None = None
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    @classmethod
    def create(
        cls,
        relation: Relation,
        *,
        threshold: float = 1e-9,
        max_separator_size: int = 2,
        exact_partition_limit: int = 10,
        scorer: "object | None" = None,
        workers: int | None = None,
        deadline_seconds: float | None = None,
        deadline_at: float | None = None,
        seed: int = 0,
        backend: "object | None" = None,
    ) -> "SearchContext":
        """Build a context with library defaults.

        ``scorer`` wins over ``workers``; with neither, scoring is serial.
        ``deadline_seconds`` is relative (converted to an absolute
        ``time.monotonic()`` deadline at creation); ``deadline_at`` is an
        absolute ``time.monotonic()`` timestamp, which long-lived callers
        (the service's job workers map each job's wall-clock budget onto
        the search this way) can pass without re-relativizing.  When both
        are given the earlier one wins.  ``backend`` selects the entropy
        backend the run's engine scores with — an
        :class:`~repro.info.backends.EntropyBackend` instance or a name
        (``"exact"``/``"sketch"``); ``None`` keeps the relation's cached
        engine whatever backend it has.
        """
        from repro.discovery.scoring import make_scorer

        if relation.is_empty():
            raise DiscoveryError("cannot mine a schema from an empty relation")
        if threshold < 0:
            raise DiscoveryError(
                f"threshold must be non-negative, got {threshold}"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise DiscoveryError(
                f"deadline must be positive, got {deadline_seconds}"
            )
        deadlines = [
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None,
            deadline_at,
        ]
        effective = [d for d in deadlines if d is not None]
        return cls(
            relation=relation,
            engine=EntropyEngine.for_relation(relation, backend=backend),
            scorer=scorer if scorer is not None else make_scorer(workers=workers),
            threshold=threshold,
            max_separator_size=max_separator_size,
            exact_partition_limit=exact_partition_limit,
            deadline=min(effective) if effective else None,
            rng=np.random.default_rng(seed),
        )

    def expired(self) -> bool:
        """Whether the wall-clock deadline has passed (``False`` if none)."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> float:
        """Seconds until the deadline (``inf`` when no deadline is set)."""
        if self.deadline is None:
            return float("inf")
        return max(self.deadline - time.monotonic(), 0.0)

    def close(self) -> None:
        """Release scorer resources (worker pools); idempotent."""
        close = getattr(self.scorer, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "SearchContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Split scoring: batched CMI evaluation behind a backend interface.

Every discovery strategy reduces to the same inner question — *given a
batch of candidate splits ``X ↠ Y|Z``, what is each one's conditional
mutual information ``I(Y; Z | X)``?*  This module isolates that question
behind :class:`SplitScorer` so strategies stay backend-agnostic:

* :class:`SerialSplitScorer` — scores in-process through the relation's
  shared memoizing :class:`~repro.info.engine.EntropyEngine`;
* :class:`MultiprocessSplitScorer` — shards a candidate batch across a
  persistent ``multiprocessing`` worker pool (fork start method).  Each
  worker keeps its own entropy memo alive across batches and ships the
  *new* cache entries back with its scores; the parent merges them into
  the run's engine, so post-search bookkeeping (J-measure, ρ) is warm.

Both backends produce bit-identical scores: the CMI of a candidate is
computed by the same four-entropy formula over the same columnar counts,
whichever process runs it.

A *candidate* is a ``(separator, left, right)`` triple of attribute
frozensets; a scored candidate is an :class:`MVDSplit`.  Candidate order
is preserved, so deterministic tie-breaking (:func:`prefer_split`) is
backend-independent.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import DiscoveryError
from repro.info.engine import EntropyEngine
from repro.relations.relation import Relation

#: A candidate split: (separator, left, right) attribute frozensets.
SplitCandidate = tuple[frozenset[str], frozenset[str], frozenset[str]]


@dataclass(frozen=True)
class MVDSplit:
    """A scored candidate split ``separator ↠ left | right``."""

    separator: frozenset[str]
    left: frozenset[str]
    right: frozenset[str]
    cmi: float


def rank_key(split: MVDSplit) -> tuple:
    """The canonical split-ordering key: CMI, separator size, lexicographic.

    Single source of truth for every consumer — :func:`prefer_split`'s
    fold, the beam strategy's admissible ordering, the anytime
    strategy's top-k sampling.  The legacy bit-for-bit guarantee and
    cross-strategy determinism both hang on this one tuple.
    """
    return (
        split.cmi,
        len(split.separator),
        sorted(split.separator),
        sorted(split.left),
    )


def prefer_split(candidate: MVDSplit, incumbent: MVDSplit) -> bool:
    """Whether ``candidate`` strictly precedes ``incumbent`` in rank order."""
    return rank_key(candidate) < rank_key(incumbent)


def _score_with_engine(
    engine: EntropyEngine, candidates: Sequence[SplitCandidate]
) -> list[float]:
    """CMI of each candidate via the four-entropy formula, in order."""
    return [
        engine.cmi(left, right, separator)
        for separator, left, right in candidates
    ]


class SplitScorer:
    """Backend interface: score batches of candidate splits.

    Subclasses implement :meth:`score_batch`; :meth:`close` releases any
    held resources (worker pools) and is idempotent.  Scorers are context
    managers.
    """

    #: Registry name of the backend (used by :func:`make_scorer` and the CLI).
    name = "abstract"

    def score_batch(
        self,
        relation: Relation,
        candidates: Sequence[SplitCandidate],
        *,
        engine: EntropyEngine | None = None,
    ) -> list[MVDSplit]:
        """Score ``candidates`` against ``relation``, preserving order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; safe to call repeatedly."""

    def __enter__(self) -> "SplitScorer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialSplitScorer(SplitScorer):
    """In-process scoring through the relation's shared entropy memo."""

    name = "serial"

    def score_batch(
        self,
        relation: Relation,
        candidates: Sequence[SplitCandidate],
        *,
        engine: EntropyEngine | None = None,
    ) -> list[MVDSplit]:
        if engine is None:
            engine = EntropyEngine.for_relation(relation)
        scores = _score_with_engine(engine, candidates)
        return [
            MVDSplit(separator, left, right, cmi)
            for (separator, left, right), cmi in zip(candidates, scores)
        ]


# ----------------------------------------------------------------------
# Multiprocessing backend
# ----------------------------------------------------------------------
# Workers are forked with the relation (and its already-built columnar
# store) in memory; each worker holds one persistent EntropyEngine whose
# memo survives across batches of the same search.  Tasks are chunks of
# candidate triples; results are (scores, new-cache-entries) pairs.
_WORKER_ENGINE: EntropyEngine | None = None


def _init_worker(relation: Relation, backend: "object | None") -> None:
    global _WORKER_ENGINE
    # for_relation with backend=None: the fork inherited the parent's
    # exact engine (and warm memo) on relation._engine; reuse it instead
    # of starting cold.  A non-default backend (sketch runs) gets its own
    # per-worker engine so worker scores use the same estimator the
    # parent merges into — exact and sketch entropies must never mix.
    _WORKER_ENGINE = EntropyEngine.for_relation(relation, backend=backend)


def _score_chunk(
    candidates: Sequence[SplitCandidate],
) -> tuple[list[float], dict[tuple[str, ...], float]]:
    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool not initialized"
    mark = engine.cache_size()
    scores = _score_with_engine(engine, candidates)
    return scores, engine.cache_entries_since(mark)


class MultiprocessSplitScorer(SplitScorer):
    """Shard candidate batches across a persistent fork-based worker pool.

    Parameters
    ----------
    workers:
        Worker process count (defaults to the CPU count).
    min_batch:
        Batches smaller than this are scored serially — pickling and IPC
        dominate below it.

    Notes
    -----
    * The pool is created lazily on the first batch and rebuilt if a
      different relation instance arrives; :meth:`close` terminates it.
    * The relation's columnar store is materialized *before* forking so
      every worker inherits the built code columns for free.
    * Platforms without the ``fork`` start method (or sandboxes where
      process creation fails) degrade to serial scoring transparently.
    """

    name = "multiprocessing"

    def __init__(self, workers: int | None = None, *, min_batch: int = 8) -> None:
        if workers is not None and workers < 1:
            raise DiscoveryError(f"worker count must be >= 1, got {workers}")
        self._workers = workers
        self._min_batch = min_batch
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_relation: Relation | None = None
        self._pool_backend: object | None = None
        self._serial = SerialSplitScorer()
        self._degraded = False

    @property
    def workers(self) -> int:
        """The resolved worker count."""
        return self._workers if self._workers is not None else os.cpu_count() or 1

    def _ensure_pool(
        self, relation: Relation, backend: "object | None"
    ) -> "multiprocessing.pool.Pool | None":
        if self._degraded:
            return None
        if (
            self._pool is not None
            and self._pool_relation is relation
            and self._pool_backend is backend
        ):
            return self._pool
        self.close()
        if "fork" not in multiprocessing.get_all_start_methods():
            self._degraded = True
            return None
        relation.columns()  # build the store once; workers inherit it
        try:
            self._pool = multiprocessing.get_context("fork").Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(relation, backend),
            )
        except OSError:
            self._degraded = True
            return None
        self._pool_relation = relation
        self._pool_backend = backend
        return self._pool

    def score_batch(
        self,
        relation: Relation,
        candidates: Sequence[SplitCandidate],
        *,
        engine: EntropyEngine | None = None,
    ) -> list[MVDSplit]:
        candidates = list(candidates)
        if engine is None:
            engine = EntropyEngine.for_relation(relation)
        if self.workers <= 1 or len(candidates) < self._min_batch:
            return self._serial.score_batch(relation, candidates, engine=engine)
        # Workers must score with the run's backend: None (the inherited
        # cached exact engine) for exact runs, the backend instance itself
        # for non-default (sketch) runs.
        backend = None if engine.backend.name == "exact" else engine.backend
        pool = self._ensure_pool(relation, backend)
        if pool is None:
            return self._serial.score_batch(relation, candidates, engine=engine)
        shards = max(1, min(self.workers * 4, len(candidates) // 2))
        size = -(-len(candidates) // shards)  # ceil division
        chunks = [
            candidates[start : start + size]
            for start in range(0, len(candidates), size)
        ]
        try:
            results = pool.map(_score_chunk, chunks)
        except Exception:
            # A worker died mid-batch (e.g. platforms where fork is
            # listed but unsafe): drop to serial for the rest of the run.
            self.close()
            self._degraded = True
            return self._serial.score_batch(relation, candidates, engine=engine)
        scores: list[float] = []
        for chunk_scores, delta in results:
            scores.extend(chunk_scores)
            engine.merge_cache(delta)
        return [
            MVDSplit(separator, left, right, cmi)
            for (separator, left, right), cmi in zip(candidates, scores)
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_relation = None
            self._pool_backend = None


def make_scorer(
    spec: "str | SplitScorer | None" = None, *, workers: int | None = None
) -> SplitScorer:
    """Resolve a scorer from a name, an instance, or a worker count.

    ``spec`` may be a :class:`SplitScorer` instance (returned as-is), a
    backend name (``"serial"`` / ``"multiprocessing"``), or ``None`` —
    in which case ``workers`` decides: ``workers`` > 1 selects the
    multiprocessing backend, anything else the serial one.
    """
    if workers is not None and workers < 1:
        raise DiscoveryError(f"worker count must be >= 1, got {workers}")
    if isinstance(spec, SplitScorer):
        return spec
    if spec is None:
        if workers is not None and workers > 1:
            return MultiprocessSplitScorer(workers)
        return SerialSplitScorer()
    if spec == SerialSplitScorer.name:
        return SerialSplitScorer()
    if spec == MultiprocessSplitScorer.name:
        return MultiprocessSplitScorer(workers)
    raise DiscoveryError(
        f"unknown scorer backend {spec!r}; "
        f"known: {SerialSplitScorer.name}, {MultiprocessSplitScorer.name}"
    )

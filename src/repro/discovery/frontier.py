"""Schema frontier: the Pareto trade-off between compression and loss.

For a small relation, enumerate every hierarchical acyclic schema and
chart the two axes the paper's motivation cares about:

* **compression** — storage cells of the factorized representation
  relative to the original (``repro.jointrees.metrics.compression_ratio``);
* **loss** — the J-measure (and through Lemma 4.1, a certified floor on
  spurious tuples), plus the realized ``ρ``.

:func:`schema_frontier` returns every schema's point;
:func:`pareto_front` filters to the non-dominated ones (minimize both
axes).  This is the decision-support view for "approximately fitting" a
schema: pick a point on the front.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jmeasure import j_measure
from repro.core.loss import spurious_loss
from repro.discovery.context import SearchContext
from repro.discovery.exhaustive import hierarchical_schemas
from repro.errors import DiscoveryError
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.metrics import compression_ratio
from repro.relations.relation import Relation


@dataclass(frozen=True)
class FrontierPoint:
    """One schema's position in (compression, loss) space."""

    bags: frozenset[frozenset[str]]
    num_bags: int
    compression: float     # factorized cells / original cells (lower=better)
    j_value: float         # nats (lower = better)
    rho: float

    def dominates(self, other: "FrontierPoint") -> bool:
        """Strict Pareto dominance on (compression, J)."""
        no_worse = (
            self.compression <= other.compression + 1e-12
            and self.j_value <= other.j_value + 1e-12
        )
        better = (
            self.compression < other.compression - 1e-12
            or self.j_value < other.j_value - 1e-12
        )
        return no_worse and better


def schema_frontier(
    relation: Relation,
    *,
    max_separator_size: int = 2,
    compute_rho: bool = True,
    context: "SearchContext | None" = None,
) -> list[FrontierPoint]:
    """Evaluate every hierarchical schema of the relation's attributes.

    Exponential in the attribute count (capped at
    :data:`repro.discovery.exhaustive.MAX_EXHAUSTIVE_ATTRIBUTES`).
    Points are sorted by (compression, J).

    ``context`` (optional) shares a
    :class:`~repro.discovery.context.SearchContext`'s entropy memo with
    the enumeration — profiling after a mining run then reuses every
    entropy the search already paid for.
    """
    if relation.is_empty():
        raise DiscoveryError("cannot profile an empty relation")
    from repro.info.engine import EntropyEngine

    engine = (
        context.engine if context is not None
        else EntropyEngine.for_relation(relation)
    )
    points = []
    for schema in hierarchical_schemas(
        relation.schema.name_set, max_separator_size=max_separator_size
    ):
        tree = jointree_from_schema(schema)
        points.append(
            FrontierPoint(
                bags=schema,
                num_bags=len(schema),
                compression=compression_ratio(relation, tree),
                j_value=j_measure(relation, tree, engine=engine),
                rho=spurious_loss(relation, tree) if compute_rho else float("nan"),
            )
        )
    points.sort(key=lambda p: (p.compression, p.j_value))
    return points


def pareto_front(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """The non-dominated subset, sorted by compression."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points)
    ]
    front.sort(key=lambda p: (p.compression, p.j_value))
    return front


def format_frontier(points: list[FrontierPoint]) -> str:
    """Render frontier points as an aligned table."""
    header = f"{'bags':>40} {'m':>3} {'cells%':>7} {'J':>8} {'rho':>8}"
    lines = [header, "-" * len(header)]
    for p in points:
        bags = " ".join(
            "{" + ",".join(sorted(b)) + "}"
            for b in sorted(p.bags, key=lambda b: sorted(b))
        )
        lines.append(
            f"{bags:>40} {p.num_bags:>3} {p.compression:>7.1%} "
            f"{p.j_value:>8.4f} {p.rho:>8.4f}"
        )
    return "\n".join(lines)

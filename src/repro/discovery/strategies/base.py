"""Strategy interface and shared search helpers.

A *discovery strategy* turns a :class:`~repro.discovery.context.SearchContext`
into a set of bags forming an acyclic schema.  Strategies never talk to
entropy caches or worker pools directly — candidate enumeration lives
here and all CMI evaluation goes through ``context.scorer`` — so a new
search mode is one subclass registered with
:func:`repro.discovery.strategies.register_strategy`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.discovery.candidates import (
    binary_partitions,
    candidate_separators,
    greedy_partition,
)
from repro.discovery.context import SearchContext
from repro.discovery.scoring import (
    MVDSplit,
    SplitCandidate,
    prefer_split,
    rank_key,
)

Bag = frozenset[str]


@dataclass(frozen=True)
class SearchOutcome:
    """What a strategy returns: bags (pre-maximality) plus accepted splits.

    ``bags`` may contain nested or duplicate sets; the miner's finalize
    step reduces them to a maximal, deduplicated schema in order.
    """

    bags: tuple[Bag, ...]
    splits: tuple[MVDSplit, ...]


class DiscoveryStrategy:
    """Base class for pluggable search strategies.

    Subclasses set :attr:`name` (the registry key and CLI value) and
    implement :meth:`search`.
    """

    #: Registry key; also the CLI ``--strategy`` value.
    name = "abstract"

    def search(self, context: SearchContext) -> SearchOutcome:
        """Run the search described by ``context`` and return its bags."""
        raise NotImplementedError


def enumerate_split_candidates(
    context: SearchContext, attributes: Bag
) -> Iterator[SplitCandidate]:
    """All candidate splits of ``attributes``, in the canonical order.

    Mirrors the pre-refactor miner loop exactly: separators ascending by
    size then lexicographically; for each, every bipartition of the
    remainder when small enough, otherwise the single greedy partition.
    (The greedy fallback issues its own CMI probes through the context's
    engine, as before.)
    """
    for separator in candidate_separators(
        sorted(attributes), context.max_separator_size
    ):
        rest = attributes - separator
        if len(rest) < 2:
            continue
        if len(rest) <= context.exact_partition_limit:
            for left, right in binary_partitions(sorted(rest)):
                yield separator, left, right
        else:
            left, right = greedy_partition(
                context.relation,
                sorted(rest),
                separator,
                engine=context.engine,
            )
            yield separator, left, right


def best_split_in_context(
    context: SearchContext, attributes: Bag
) -> MVDSplit | None:
    """Lowest-CMI split of ``attributes``, or ``None`` if unsplittable.

    Scores the whole candidate batch through ``context.scorer`` and folds
    with :func:`prefer_split` in enumeration order — bit-for-bit the same
    winner as the pre-refactor serial scan.
    """
    if len(attributes) < 2:
        return None
    candidates = list(enumerate_split_candidates(context, attributes))
    if not candidates:
        return None
    best: MVDSplit | None = None
    for scored in context.scorer.score_batch(
        context.relation, candidates, engine=context.engine
    ):
        if best is None or prefer_split(scored, best):
            best = scored
    return best


def topdown_decompose(
    context: SearchContext,
    pick: Callable[[list[MVDSplit]], MVDSplit | None],
) -> SearchOutcome:
    """The shared top-down splitting loop, parameterized by the pick rule.

    At each node the full candidate batch is scored and handed to
    ``pick`` sorted by :func:`~repro.discovery.scoring.rank_key`;
    ``pick`` returns the split to recurse on or ``None`` to keep the set
    as one bag.  Recursion structure, the deadline gate, and the
    glued-schema acyclicity guard live here once, so every top-down
    strategy (strict-best ``recursive``, rng-among-top-k ``anytime``
    rounds) shares them exactly.
    """
    from repro.jointrees.gyo import is_acyclic

    accepted: list[MVDSplit] = []

    def decompose(attrs: Bag) -> list[Bag]:
        split = None
        if len(attrs) > 2 and not context.expired():
            candidates = list(enumerate_split_candidates(context, attrs))
            if candidates:
                scored = context.scorer.score_batch(
                    context.relation, candidates, engine=context.engine
                )
                split = pick(sorted(scored, key=rank_key))
        if split is None:
            return [attrs]
        combined = decompose(split.separator | split.left) + decompose(
            split.separator | split.right
        )
        # Recursive splits are not automatically closed under union:
        # each side's schema is acyclic, but gluing them can create a
        # cycle when a separator ends up scattered across bags.  Reject
        # such splits (keep the set as one bag).
        if not is_acyclic(combined):
            return [attrs]
        accepted.append(split)
        return combined

    bags = decompose(context.relation.schema.name_set)
    return SearchOutcome(tuple(bags), tuple(accepted))


def maximal_bags(bags: list[Bag]) -> list[Bag]:
    """Drop bags strictly contained in others, then dedupe keeping order."""
    maximal = [bag for bag in bags if not any(bag < other for other in bags)]
    seen: set[Bag] = set()
    schema: list[Bag] = []
    for bag in maximal:
        if bag not in seen:
            seen.add(bag)
            schema.append(bag)
    return schema

"""Beam search over partial schemas: a width-k frontier of split plans.

The recursive strategy commits to the single best split at every node;
when several splits are nearly tied, a greedy mistake at the root can
lock the search out of finer decompositions.  Beam search keeps the
``width`` best partial schemas alive instead: each step expands one open
attribute set of each frontier state into (a) the "close as one bag"
child and (b) a child per top-ranked within-threshold split, then prunes
the frontier back to ``width`` states by accumulated CMI.

All candidate scoring is batched through the context's scorer, so the
beam parallelizes across workers exactly like the other strategies.
Acyclicity is enforced on the *whole* partial schema at every accepted
split (stronger than the recursive strategy's subtree-local check), so
every completed state is a valid acyclic schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discovery.context import SearchContext
from repro.discovery.scoring import MVDSplit, rank_key
from repro.discovery.strategies import register_strategy
from repro.discovery.strategies.base import (
    Bag,
    DiscoveryStrategy,
    SearchOutcome,
    enumerate_split_candidates,
)
from repro.jointrees.gyo import is_acyclic


@dataclass(frozen=True)
class _State:
    """A partial schema: sets still to examine, bags already fixed."""

    open: tuple[Bag, ...]
    closed: tuple[Bag, ...]
    splits: tuple[MVDSplit, ...]
    cost: float  # accumulated CMI of accepted splits

    def bags(self) -> tuple[Bag, ...]:
        return self.closed + self.open

    def order_key(self) -> tuple:
        """Deterministic frontier/pruning order: cheap and fine first."""
        return (
            self.cost,
            -len(self.bags()),
            sorted(sorted(bag) for bag in self.bags()),
        )


@register_strategy
class BeamStrategy(DiscoveryStrategy):
    """Width-``k`` frontier over partial schemas (``k`` = ``width``)."""

    name = "beam"

    def __init__(self, width: int = 4, branch_factor: int | None = None) -> None:
        if width < 1:
            raise ValueError(f"beam width must be >= 1, got {width}")
        self.width = width
        self.branch_factor = branch_factor if branch_factor is not None else width

    def search(self, context: SearchContext) -> SearchOutcome:
        root = context.relation.schema.name_set
        if len(root) > 2:
            frontier = [_State((root,), (), (), 0.0)]
            completed: list[_State] = []
        else:
            frontier = []
            completed = [_State((), (root,), (), 0.0)]

        # Sibling frontier states frequently share the same open set
        # (children of one parent inherit `rest` verbatim); memoize the
        # ranked admissible splits per attribute set for this search.
        admissible_cache: dict[Bag, list[MVDSplit]] = {}

        def admissible_splits(attrs: Bag) -> list[MVDSplit]:
            cached = admissible_cache.get(attrs)
            if cached is None:
                scored = context.scorer.score_batch(
                    context.relation,
                    list(enumerate_split_candidates(context, attrs)),
                    engine=context.engine,
                )
                cached = sorted(
                    (s for s in scored if s.cmi <= context.threshold),
                    key=rank_key,
                )
                admissible_cache[attrs] = cached
            return cached

        while frontier:
            children: list[_State] = []
            for state in frontier:
                attrs, rest = state.open[0], state.open[1:]
                # Child 1: keep `attrs` as one bag.
                children.append(
                    _State(rest, state.closed + (attrs,), state.splits, state.cost)
                )
                if context.expired():
                    continue
                for split in admissible_splits(attrs)[: self.branch_factor]:
                    sides = (
                        split.separator | split.left,
                        split.separator | split.right,
                    )
                    new_open = rest + tuple(s for s in sides if len(s) > 2)
                    new_closed = state.closed + tuple(
                        s for s in sides if len(s) <= 2
                    )
                    if not is_acyclic(new_closed + new_open):
                        continue
                    children.append(
                        _State(
                            new_open,
                            new_closed,
                            state.splits + (split,),
                            state.cost + split.cmi,
                        )
                    )
            children.sort(key=_State.order_key)
            frontier = []
            for child in children[: self.width]:
                (completed if not child.open else frontier).append(child)

        best = min(
            completed,
            key=lambda s: (-len(s.bags()), s.cost, s.order_key()),
        )
        return SearchOutcome(best.bags(), best.splits)

"""Greedy agglomerative discovery: bottom-up bag merging.

Start from the finest conceivable schema — one singleton bag per
attribute — and repeatedly merge the two most entangled bags until the
schema's J-measure drops to the threshold.  The key identity making this
cheap: for a *partition* schema ``{B₁, …, B_m}`` (pairwise-disjoint
bags), the J-measure is the total correlation ``Σ H(Bᵢ) − H(V)``, and
merging ``Bᵢ, Bⱼ`` lowers it by exactly their mutual information
``I(Bᵢ; Bⱼ)``.  So each round scores every pair ``(∅, Bᵢ, Bⱼ)`` as one
batch through the context's scorer and merges the highest-MI pair.

Because only whole bags merge, the bags always partition the attribute
set — the schema is acyclic and attribute-covering at *every* step, so
a deadline can interrupt the loop at any round and still leave a valid
(if lossier) schema.  Termination is guaranteed: the single-bag schema
has J = 0 ≤ threshold.

Compared to the top-down strategies, this one shines when the relation
decomposes into several mutually independent blocks (it finds them
directly instead of peeling binary splits) — and it never produces
overlapping bags, i.e. it searches partition schemas only.
"""

from __future__ import annotations

from repro.discovery.context import SearchContext
from repro.discovery.strategies import register_strategy
from repro.discovery.strategies.base import (
    Bag,
    DiscoveryStrategy,
    SearchOutcome,
)


@register_strategy
class GreedyAgglomerativeStrategy(DiscoveryStrategy):
    """Bottom-up merging of the highest-MI bag pair until J ≤ threshold."""

    name = "greedy-agglomerative"

    def search(self, context: SearchContext) -> SearchOutcome:
        engine = context.engine
        attrs = context.relation.schema.name_set
        bags: list[Bag] = [frozenset({a}) for a in sorted(attrs)]
        h_total = engine.entropy(attrs)

        while len(bags) > 1 and not context.expired():
            j_current = sum(engine.entropy(bag) for bag in bags) - h_total
            if j_current <= context.threshold:
                break
            pairs = [
                (frozenset(), bags[i], bags[j])
                for i in range(len(bags))
                for j in range(i + 1, len(bags))
            ]
            scored = context.scorer.score_batch(
                context.relation, pairs, engine=engine
            )
            # Highest MI first; ties break lexicographically for determinism.
            best = min(
                scored,
                key=lambda s: (-s.cmi, sorted(s.left), sorted(s.right)),
            )
            merged = best.left | best.right
            bags = [
                bag for bag in bags if bag != best.left and bag != best.right
            ]
            bags.append(merged)
            bags.sort(key=sorted)

        return SearchOutcome(tuple(bags), ())

"""Recursive top-down splitting — the classic miner, bit-for-bit.

This is the pre-refactor ``mine_jointree`` search: at each attribute set,
find the lowest-CMI split; if it is within threshold and the glued
sub-schemas stay acyclic, recurse into both sides, otherwise keep the
set as one bag.  Candidate enumeration order, tie-breaking, and the
acyclicity guard are identical to the original, so the default discovery
path is unchanged by the engine refactor (pinned by
``tests/test_strategies.py::TestRecursiveMatchesLegacy``).

Deadline awareness: when the context carries a deadline, expiry stops
further splitting (already-accepted splits are kept), which is what the
``anytime`` strategy builds on.  Without a deadline the guard is inert.
"""

from __future__ import annotations

from repro.discovery.context import SearchContext
from repro.discovery.scoring import MVDSplit
from repro.discovery.strategies import register_strategy
from repro.discovery.strategies.base import (
    DiscoveryStrategy,
    SearchOutcome,
    topdown_decompose,
)


def _strict_best(ranked: list[MVDSplit], threshold: float) -> MVDSplit | None:
    """The rank-order winner, or ``None`` when it exceeds the threshold.

    ``rank_key`` is a strict total order within one batch (two distinct
    candidates always differ in separator or left side), so the sorted
    head equals the legacy miner's fold-min over enumeration order.
    """
    return ranked[0] if ranked[0].cmi <= threshold else None


@register_strategy
class RecursiveStrategy(DiscoveryStrategy):
    """Top-down recursive MVD splitting (the default strategy)."""

    name = "recursive"

    def search(self, context: SearchContext) -> SearchOutcome:
        return topdown_decompose(
            context, lambda ranked: _strict_best(ranked, context.threshold)
        )

"""Pluggable discovery strategies: a name → search-mode registry.

A strategy is a :class:`~repro.discovery.strategies.base.DiscoveryStrategy`
subclass registered under a unique name:

.. code-block:: python

    from repro.discovery.strategies import register_strategy
    from repro.discovery.strategies.base import DiscoveryStrategy, SearchOutcome

    @register_strategy
    class MyStrategy(DiscoveryStrategy):
        name = "my-strategy"

        def search(self, context):
            ...
            return SearchOutcome(bags, splits)

Once registered (importing the defining module is enough), the strategy
is selectable everywhere strategies are named: ``mine_jointree(...,
strategy="my-strategy")``, ``repro-ajd mine --strategy my-strategy``,
and the strategy benchmarks.  Built-ins: ``recursive`` (the default,
bit-for-bit the pre-engine miner), ``beam``, ``greedy-agglomerative``,
and ``anytime``.
"""

from __future__ import annotations

from repro.errors import DiscoveryError

_REGISTRY: dict[str, type] = {}


def register_strategy(cls: type) -> type:
    """Class decorator: add a strategy to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise DiscoveryError(
            f"strategy class {cls.__name__} must define a string `name`"
        )
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise DiscoveryError(f"strategy name {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def get_strategy(name: str) -> "object":
    """A fresh instance of the strategy registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise DiscoveryError(
            f"unknown strategy {name!r}; known: {', '.join(available_strategies())}"
        ) from None
    return cls()


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


# Import the built-in strategy modules so they self-register.  (Placed
# after the registry functions: the modules import `register_strategy`
# from this partially-initialized package.)
from repro.discovery.strategies import (  # noqa: E402
    agglomerative as _agglomerative,
    anytime as _anytime,
    beam as _beam,
    recursive as _recursive,
)
from repro.discovery.strategies.base import (  # noqa: E402
    DiscoveryStrategy,
    SearchOutcome,
)

__all__ = [
    "DiscoveryStrategy",
    "SearchOutcome",
    "available_strategies",
    "get_strategy",
    "register_strategy",
]

"""Anytime discovery: best-so-far refinement under a wall-clock deadline.

Round 0 runs the deterministic recursive search (deadline-aware: expiry
stops further splitting but keeps what was found).  Subsequent rounds
re-run the top-down search with *randomized* split selection — at each
node one of the top few within-threshold splits is chosen by the
context's RNG instead of the strict best — exploring decompositions the
greedy tie-breaking would never reach.  The best schema seen so far
(most bags, then lowest J) is returned whenever the deadline expires.

Without a deadline the strategy runs a fixed small number of randomized
rounds, so results stay deterministic for a given context seed.
"""

from __future__ import annotations

from repro.core.jmeasure import j_measure
from repro.discovery.context import SearchContext
from repro.discovery.scoring import MVDSplit
from repro.discovery.strategies import register_strategy
from repro.discovery.strategies.base import (
    DiscoveryStrategy,
    SearchOutcome,
    maximal_bags,
    topdown_decompose,
)
from repro.jointrees.build import jointree_from_schema


@register_strategy
class AnytimeStrategy(DiscoveryStrategy):
    """Deadline-bounded randomized restarts around the recursive search."""

    name = "anytime"

    #: Randomized rounds when no deadline is given (deterministic mode).
    default_rounds = 2
    #: Hard cap on rounds under a deadline (prevents unbounded spinning
    #: on tiny inputs with generous deadlines).
    max_rounds = 64
    #: A randomized node picks uniformly among this many top splits.
    top_k = 3

    def search(self, context: SearchContext) -> SearchOutcome:
        from repro.discovery.strategies.recursive import RecursiveStrategy

        best = RecursiveStrategy().search(context)
        best_score = self._score(context, best)

        rounds = (
            self.max_rounds if context.deadline is not None else self.default_rounds
        )
        for _ in range(rounds):
            if context.expired():
                break
            candidate = self._randomized_round(context)
            score = self._score(context, candidate)
            if score < best_score:
                best, best_score = candidate, score
        return best

    # ------------------------------------------------------------------
    def _score(
        self, context: SearchContext, outcome: SearchOutcome
    ) -> tuple[int, float]:
        """Objective: most bags first, then lowest J (minimized)."""
        schema = maximal_bags(list(outcome.bags))
        tree = jointree_from_schema(schema)
        return (-len(schema), j_measure(context.relation, tree, engine=context.engine))

    def _randomized_round(self, context: SearchContext) -> SearchOutcome:
        def pick(ranked: list[MVDSplit]) -> MVDSplit | None:
            admissible = [s for s in ranked if s.cmi <= context.threshold]
            if not admissible:
                return None
            index = int(
                context.rng.integers(0, min(self.top_k, len(admissible)))
            )
            return admissible[index]

        return topdown_decompose(context, pick)

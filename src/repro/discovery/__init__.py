"""Approximate acyclic-schema discovery (motivating application).

Layered since the engine refactor:

* :mod:`repro.discovery.context` — :class:`SearchContext` bundles one
  run's relation, entropy engine, scorer, budgets, deadline, and RNG;
* :mod:`repro.discovery.scoring` — batched split scoring (serial or
  multiprocessing with memo-cache merging);
* :mod:`repro.discovery.strategies` — the pluggable search-mode registry
  (``recursive``, ``beam``, ``greedy-agglomerative``, ``anytime``);
* :mod:`repro.discovery.miner` — the ``mine_jointree`` front door.

See ``docs/architecture.md`` for the full map and how to register a new
strategy.
"""

from repro.discovery.budget import BudgetFit, fit_schema_with_budget
from repro.discovery.candidates import (
    binary_partitions,
    candidate_separators,
    greedy_partition,
)
from repro.discovery.context import SearchContext
from repro.discovery.exhaustive import (
    MAX_EXHAUSTIVE_ATTRIBUTES,
    hierarchical_schemas,
    mine_exhaustive,
)
from repro.discovery.frontier import (
    FrontierPoint,
    format_frontier,
    pareto_front,
    schema_frontier,
)
from repro.discovery.miner import MVDSplit, MinedSchema, best_split, mine_jointree
from repro.discovery.scoring import (
    MultiprocessSplitScorer,
    SerialSplitScorer,
    SplitScorer,
    make_scorer,
)
from repro.discovery.strategies import (
    DiscoveryStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)

__all__ = [
    "MAX_EXHAUSTIVE_ATTRIBUTES",
    "BudgetFit",
    "DiscoveryStrategy",
    "FrontierPoint",
    "MVDSplit",
    "MinedSchema",
    "MultiprocessSplitScorer",
    "SearchContext",
    "SerialSplitScorer",
    "SplitScorer",
    "available_strategies",
    "best_split",
    "binary_partitions",
    "candidate_separators",
    "fit_schema_with_budget",
    "format_frontier",
    "get_strategy",
    "greedy_partition",
    "hierarchical_schemas",
    "make_scorer",
    "mine_exhaustive",
    "mine_jointree",
    "pareto_front",
    "register_strategy",
    "schema_frontier",
]

"""Approximate acyclic-schema discovery (motivating application)."""

from repro.discovery.budget import BudgetFit, fit_schema_with_budget
from repro.discovery.candidates import (
    binary_partitions,
    candidate_separators,
    greedy_partition,
)
from repro.discovery.exhaustive import (
    MAX_EXHAUSTIVE_ATTRIBUTES,
    hierarchical_schemas,
    mine_exhaustive,
)
from repro.discovery.frontier import (
    FrontierPoint,
    format_frontier,
    pareto_front,
    schema_frontier,
)
from repro.discovery.miner import MVDSplit, MinedSchema, best_split, mine_jointree

__all__ = [
    "MAX_EXHAUSTIVE_ATTRIBUTES",
    "BudgetFit",
    "FrontierPoint",
    "MVDSplit",
    "MinedSchema",
    "best_split",
    "binary_partitions",
    "candidate_separators",
    "fit_schema_with_budget",
    "format_frontier",
    "greedy_partition",
    "hierarchical_schemas",
    "mine_exhaustive",
    "mine_jointree",
    "pareto_front",
    "schema_frontier",
]

"""Candidate separators and binary partitions for schema discovery.

The miner searches MVD splits ``X ↠ Y | Z`` of an attribute set.  This
module enumerates the search space:

* :func:`candidate_separators` — subsets ``X`` up to a size cap;
* :func:`binary_partitions` — all unordered partitions ``{Y, Z}`` of a set
  (exponential; the miner caps the set size for exact search);
* :func:`greedy_partition` — a pairwise-CMI clustering heuristic for
  larger sets.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

from repro.errors import DiscoveryError
from repro.info.divergence import conditional_mutual_information
from repro.info.engine import EntropyEngine
from repro.relations.relation import Relation


def candidate_separators(
    attributes: Sequence[str], max_size: int
) -> Iterator[frozenset[str]]:
    """All subsets of ``attributes`` with ``0 ≤ |X| ≤ max_size``.

    A separator must leave at least two attributes to split, so subsets
    larger than ``len(attributes) − 2`` are skipped.
    """
    if max_size < 0:
        raise DiscoveryError(f"max separator size must be >= 0, got {max_size}")
    limit = min(max_size, len(attributes) - 2)
    for size in range(0, limit + 1):
        for combo in itertools.combinations(sorted(attributes), size):
            yield frozenset(combo)


def binary_partitions(
    attributes: Sequence[str],
) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
    """All unordered two-block partitions of ``attributes``.

    Yields ``2^{n−1} − 1`` pairs; callers cap ``n`` (the miner uses exact
    search only for small remainders).
    """
    items = sorted(attributes)
    if len(items) < 2:
        raise DiscoveryError("binary partition needs at least two attributes")
    pivot, rest = items[0], items[1:]
    for size in range(0, len(rest) + 1):
        for combo in itertools.combinations(rest, size):
            left = frozenset((pivot, *combo))
            right = frozenset(items) - left
            if right:
                yield left, right


def greedy_partition(
    relation: Relation,
    attributes: Sequence[str],
    separator: frozenset[str],
    *,
    engine: EntropyEngine | None = None,
) -> tuple[frozenset[str], frozenset[str]]:
    """Heuristic partition minimizing ``I(Y; Z | X)`` for larger sets.

    Builds the pairwise conditional-MI graph among ``attributes`` (given
    the separator) and grows ``Y`` from the most strongly tied pair:
    attributes whose maximum tie to ``Y`` exceeds their maximum tie to the
    rest join ``Y``.  One local-improvement sweep then tries single moves.
    All CMIs share one memoizing entropy engine.
    """
    items = sorted(attributes)
    if len(items) < 2:
        raise DiscoveryError("greedy partition needs at least two attributes")
    if len(items) == 2:
        return frozenset({items[0]}), frozenset({items[1]})
    if engine is None:
        engine = EntropyEngine.for_relation(relation)

    pair_cmi: dict[tuple[str, str], float] = {}
    for a, b in itertools.combinations(items, 2):
        pair_cmi[(a, b)] = conditional_mutual_information(
            relation, [a], [b], separator, engine=engine
        )

    def tie(a: str, b: str) -> float:
        return pair_cmi[(a, b) if (a, b) in pair_cmi else (b, a)]

    # Seed Y with the most strongly tied pair: splitting them apart would
    # cost the most, so they belong together.
    seed = max(pair_cmi, key=pair_cmi.get)
    left = {seed[0], seed[1]}
    right = set(items) - left
    # Move attributes that are more tied to `left` than to `right`.
    moved = True
    while moved and len(right) > 1:
        moved = False
        for attr in sorted(right):
            if len(right) == 1:
                break
            to_left = max(tie(attr, other) for other in left)
            to_right = max((tie(attr, other) for other in right if other != attr),
                           default=0.0)
            if to_left > to_right:
                left.add(attr)
                right.discard(attr)
                moved = True

    def cost(y: set[str], z: set[str]) -> float:
        return conditional_mutual_information(relation, y, z, separator, engine=engine)

    best = (frozenset(left), frozenset(right))
    best_cost = cost(left, right)
    # One local-improvement sweep: try moving each attribute across.
    for attr in items:
        if attr in left and len(left) > 1:
            new_left, new_right = left - {attr}, right | {attr}
        elif attr in right and len(right) > 1:
            new_left, new_right = left | {attr}, right - {attr}
        else:
            continue
        candidate_cost = cost(new_left, new_right)
        if candidate_cost < best_cost:
            best = (frozenset(new_left), frozenset(new_right))
            best_cost = candidate_cost
            left, right = set(new_left), set(new_right)
    return best

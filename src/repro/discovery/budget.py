"""Schema fitting under a spurious-tuple budget.

The paper's stated practical consequence (§1): *"Understanding how the
J-measure relates to the loss in terms of spurious tuples will enable
finding acyclic schemas that generate a bounded number of spurious
tuples."*  This module implements exactly that workflow:

Given a loss budget ``ρ_max``, Lemma 4.1 says any schema with
``J > log(1 + ρ_max)`` *cannot* meet the budget — the J-measure (cheap:
entropies only) prunes candidates before any join size is counted.  The
fitter then verifies the realized ``ρ`` of the survivors and returns the
best-compressing schema within budget.

Two search modes:

* exhaustive (``≤ MAX_EXHAUSTIVE_ATTRIBUTES`` attributes) — globally
  optimal over hierarchical schemas;
* greedy — delegates to :func:`repro.discovery.miner.mine_jointree` with
  the J threshold implied by the budget, then verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.jmeasure import j_measure
from repro.core.loss import spurious_loss
from repro.discovery.exhaustive import (
    MAX_EXHAUSTIVE_ATTRIBUTES,
    hierarchical_schemas,
)
from repro.discovery.miner import mine_jointree
from repro.errors import DiscoveryError
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.jointree import JoinTree
from repro.jointrees.metrics import compression_ratio
from repro.relations.relation import Relation


@dataclass(frozen=True)
class BudgetFit:
    """Result of :func:`fit_schema_with_budget`.

    Attributes
    ----------
    jointree:
        The chosen schema's join tree.
    bags:
        Its maximal bags.
    j_value:
        J-measure on the training relation (nats).
    rho:
        Realized spurious-tuple loss (``≤ budget``).
    compression:
        Factorized storage cells / original cells.
    pruned_by_j:
        Number of candidates eliminated by the Lemma 4.1 pre-filter
        alone (exhaustive mode; 0 in greedy mode).
    verified:
        Candidates whose realized ρ had to be counted.
    """

    jointree: JoinTree
    bags: frozenset[frozenset[str]]
    j_value: float
    rho: float
    compression: float
    pruned_by_j: int
    verified: int


def fit_schema_with_budget(
    relation: Relation,
    rho_budget: float,
    *,
    max_separator_size: int = 2,
    mode: str = "auto",
    strategy: str = "recursive",
    workers: int | None = None,
    deadline: float | None = None,
) -> BudgetFit:
    """Find the best-compressing acyclic schema with ``ρ ≤ rho_budget``.

    Parameters
    ----------
    relation:
        Training data.
    rho_budget:
        Maximum tolerated relative number of spurious tuples (≥ 0).
    max_separator_size:
        Cap on separator size in candidate splits.
    mode:
        ``"exhaustive"``, ``"greedy"``, or ``"auto"`` (exhaustive when
        the attribute count permits).
    strategy, workers, deadline:
        Forwarded to :func:`repro.discovery.miner.mine_jointree` in
        greedy mode: any registered discovery strategy can drive the
        budget fit, with optional parallel split scoring and wall-clock
        budget (ignored in exhaustive mode).

    Notes
    -----
    The trivial one-bag schema always meets any budget (ρ = 0), so the
    fitter always succeeds; "failure" manifests as no decomposition.
    """
    if relation.is_empty():
        raise DiscoveryError("cannot fit a schema to an empty relation")
    if rho_budget < 0:
        raise DiscoveryError(f"loss budget must be non-negative, got {rho_budget}")
    if mode not in {"auto", "exhaustive", "greedy"}:
        raise DiscoveryError(f"unknown mode {mode!r}")
    if mode == "auto":
        mode = (
            "exhaustive"
            if relation.schema.arity <= MAX_EXHAUSTIVE_ATTRIBUTES
            else "greedy"
        )
    # Tiny slack so floating-point noise in J never prunes a genuinely
    # lossless schema at budget 0.
    j_ceiling = math.log1p(rho_budget) + 1e-9

    if mode == "greedy":
        mined = mine_jointree(
            relation,
            threshold=j_ceiling,
            max_separator_size=max_separator_size,
            strategy=strategy,
            workers=workers,
            deadline=deadline,
        )
        if mined.rho <= rho_budget:
            tree = mined.jointree
        else:
            tree = jointree_from_schema([relation.schema.name_set])
        return BudgetFit(
            jointree=tree,
            bags=frozenset(tree.schema()),
            j_value=j_measure(relation, tree),
            rho=spurious_loss(relation, tree),
            compression=compression_ratio(relation, tree),
            pruned_by_j=0,
            verified=1,
        )

    best: BudgetFit | None = None
    pruned = 0
    verified = 0
    for schema in hierarchical_schemas(
        relation.schema.name_set, max_separator_size=max_separator_size
    ):
        tree = jointree_from_schema(schema)
        j_value = j_measure(relation, tree)
        if j_value > j_ceiling:
            pruned += 1  # Lemma 4.1: rho >= e^J − 1 > budget, no join needed
            continue
        verified += 1
        rho = spurious_loss(relation, tree)
        if rho > rho_budget:
            continue
        compression = compression_ratio(relation, tree)
        candidate = BudgetFit(
            jointree=tree,
            bags=schema,
            j_value=j_value,
            rho=rho,
            compression=compression,
            pruned_by_j=0,
            verified=0,
        )
        if best is None or _prefer(candidate, best):
            best = candidate
    if best is None:
        # Unreachable: the trivial schema has J = rho = 0.
        raise DiscoveryError("no schema met the budget (internal error)")
    return BudgetFit(
        jointree=best.jointree,
        bags=best.bags,
        j_value=best.j_value,
        rho=best.rho,
        compression=best.compression,
        pruned_by_j=pruned,
        verified=verified,
    )


def _prefer(candidate: BudgetFit, incumbent: BudgetFit) -> bool:
    """Order: compression first, then fewer spurious tuples, then J."""
    return (candidate.compression, candidate.rho, candidate.j_value) < (
        incumbent.compression,
        incumbent.rho,
        incumbent.j_value,
    )

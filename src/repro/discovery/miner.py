"""Approximate acyclic-schema discovery (the spirit of Kenig et al. [14]).

Given a relation, find an acyclic schema with small J-measure.  Since the
engine refactor, this module is the thin *front door* of a layered
discovery engine:

* :class:`~repro.discovery.context.SearchContext` bundles the relation,
  its memoizing entropy engine, the split-scoring backend, budget knobs,
  a wall-clock deadline, and an RNG;
* :mod:`repro.discovery.scoring` scores batches of candidate
  ``(separator, partition)`` splits — serially or sharded across worker
  processes with memo-cache merging;
* :mod:`repro.discovery.strategies` holds the pluggable search modes:
  ``recursive`` (the default; bit-for-bit the classic top-down miner),
  ``beam``, ``greedy-agglomerative``, and ``anytime``.

:func:`mine_jointree` wires the three together and finalizes the result
(maximality, join-tree construction, J and ρ).  The default call —
``mine_jointree(relation)`` — produces exactly the schemas, J-values,
and split sequences of the pre-refactor miner.

The search space is the family of *hierarchical* join trees — the same
family mined in [14]; exhaustive enumeration of all join trees is
factorial and out of scope (see DESIGN.md §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.jmeasure import j_measure
from repro.discovery.context import SearchContext
from repro.discovery.scoring import MVDSplit, SplitScorer, make_scorer
from repro.discovery.strategies import get_strategy
from repro.discovery.strategies.base import best_split_in_context, maximal_bags
from repro.errors import DiscoveryError
from repro.info.engine import EntropyEngine
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation

__all__ = ["MVDSplit", "MinedSchema", "best_split", "mine_jointree"]


@dataclass(frozen=True)
class MinedSchema:
    """Result of :func:`mine_jointree`.

    Attributes
    ----------
    jointree:
        The discovered join tree.
    bags:
        Its schema (maximal bags).
    j_value:
        ``J`` of the discovered schema on the training relation (nats).
    rho:
        Spurious-tuple loss of the discovered schema.
    splits:
        The accepted splits, in discovery order.
    """

    jointree: JoinTree
    bags: frozenset[frozenset[str]]
    j_value: float
    rho: float
    splits: tuple[MVDSplit, ...]


def best_split(
    relation: Relation,
    attributes: frozenset[str],
    *,
    max_separator_size: int = 2,
    exact_partition_limit: int = 10,
    engine: EntropyEngine | None = None,
) -> MVDSplit | None:
    """The lowest-CMI split of ``attributes``, or ``None`` if unsplittable.

    Searches every separator up to the size cap; for each, partitions the
    remainder exactly (small remainders) or greedily.  Ties break toward
    smaller separators, then lexicographically, for determinism.  All CMIs
    are served by one memoizing entropy engine (the relation's shared one
    unless ``engine`` is given), so the four-entropy expansions of
    overlapping candidate splits are each computed once.
    """
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    context = SearchContext(
        relation=relation,
        engine=engine,
        scorer=make_scorer(),
        max_separator_size=max_separator_size,
        exact_partition_limit=exact_partition_limit,
    )
    return best_split_in_context(context, attributes)


def mine_jointree(
    relation: Relation,
    *,
    threshold: float = 1e-9,
    max_separator_size: int = 2,
    exact_partition_limit: int = 10,
    compute_loss: bool = True,
    strategy: str = "recursive",
    workers: int | None = None,
    scorer: SplitScorer | None = None,
    deadline: float | None = None,
    deadline_at: float | None = None,
    seed: int = 0,
    backend: "object | None" = None,
) -> MinedSchema:
    """Discover an acyclic schema with small J-measure for ``relation``.

    Parameters
    ----------
    relation:
        Training data.
    threshold:
        Maximum CMI (nats) a split may incur to be accepted.  ``1e-9``
        mines only exact (lossless) decompositions; larger values mine
        approximate schemas, trading spurious tuples for decomposition.
    max_separator_size:
        Cap on ``|X|`` in candidate MVDs ``X ↠ Y|Z``.
    exact_partition_limit:
        Remainder size up to which bipartitions are searched exhaustively.
    compute_loss:
        Also evaluate ``ρ`` of the mined schema (skippable when only J is
        needed).
    strategy:
        Registered search mode (see
        :func:`repro.discovery.strategies.available_strategies`);
        ``"recursive"`` reproduces the classic miner bit-for-bit.
    workers:
        Worker-process count for split scoring; > 1 shards candidate
        batches across a ``multiprocessing`` pool and merges the memo
        caches back.  Default: serial.
    scorer:
        Explicit scoring backend (overrides ``workers``).
    deadline:
        Wall-clock budget in seconds; deadline-aware strategies
        (``anytime``, and all strategies' refinement loops) return their
        best-so-far schema when it expires.
    deadline_at:
        Absolute ``time.monotonic()`` deadline, for callers that already
        hold one (the service's job workers).  Combined with ``deadline``
        by taking the earlier of the two.
    seed:
        RNG seed for randomized strategies.
    backend:
        Entropy backend for the run's engine — an
        :class:`~repro.info.backends.EntropyBackend` instance or a name
        (``"exact"``/``"sketch"``).  The sketch backend scores splits
        (and evaluates the final J and ρ) from bounded-memory streaming
        estimates; ``None`` keeps the relation's cached engine.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import planted_mvd_relation
    >>> r = planted_mvd_relation(6, 6, 4, np.random.default_rng(0))
    >>> mined = mine_jointree(r)
    >>> mined.j_value <= 1e-9
    True
    """
    context = SearchContext.create(
        relation,
        threshold=threshold,
        max_separator_size=max_separator_size,
        exact_partition_limit=exact_partition_limit,
        scorer=scorer,
        workers=workers,
        deadline_seconds=deadline,
        deadline_at=deadline_at,
        seed=seed,
        backend=backend,
    )
    search = get_strategy(strategy)
    try:
        outcome = search.search(context)
    finally:
        # Only close pools the miner itself created; caller-supplied
        # scorers stay open for reuse across calls.
        if scorer is None:
            context.close()
    return finalize_outcome(context, outcome, compute_loss=compute_loss)


def finalize_outcome(
    context: SearchContext,
    outcome,
    *,
    compute_loss: bool = True,
) -> MinedSchema:
    """Turn a strategy's bags into a :class:`MinedSchema`.

    Shared post-processing for every strategy: drop non-maximal bags,
    deduplicate preserving discovery order, build the join tree, and
    evaluate J (always) and ρ (unless skipped) on the training relation.
    Both J and ρ are produced by the run's entropy backend, so a sketch
    run reports streaming estimates and an exact run the exact values
    (the exact backend routes ρ through the relation's shared
    :class:`~repro.core.evalcontext.EvalContext`, as before).
    """
    bags = list(outcome.bags)
    if not bags:
        raise DiscoveryError("strategy returned no bags")
    schema = maximal_bags(bags)
    tree = jointree_from_schema(schema)
    j_value = j_measure(context.relation, tree, engine=context.engine)
    rho = (
        context.engine.backend.spurious_loss(context.relation, tree)
        if compute_loss
        else math.nan
    )
    return MinedSchema(
        jointree=tree,
        bags=frozenset(schema),
        j_value=j_value,
        rho=rho,
        splits=tuple(outcome.splits),
    )

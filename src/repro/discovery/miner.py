"""Approximate acyclic-schema discovery (the spirit of Kenig et al. [14]).

Given a relation, find an acyclic schema with small J-measure by
recursively splitting the attribute set with low-CMI MVDs:

1. search separators ``X`` (up to ``max_separator_size``) and partitions
   ``Y | Z`` of the remaining attributes minimizing ``I(Y; Z | X)``;
2. if the best split's CMI is at most ``threshold``, recurse into
   ``X ∪ Y`` and ``X ∪ Z``;
3. otherwise keep the attribute set as one bag.

The bags produced by such recursive splits always form an acyclic schema,
so a join tree is recovered with GYO.  The search space is the family of
*hierarchical* join trees — the same family mined in [14]; exhaustive
enumeration of all join trees is factorial and out of scope (see
DESIGN.md §4).

Partition search is exact (all ``2^{k−1}−1`` bipartitions) when the
remainder has at most ``exact_partition_limit`` attributes and falls back
to the greedy pairwise-CMI heuristic beyond that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.jmeasure import j_measure
from repro.core.loss import spurious_loss
from repro.discovery.candidates import (
    binary_partitions,
    candidate_separators,
    greedy_partition,
)
from repro.errors import DiscoveryError
from repro.info.divergence import conditional_mutual_information
from repro.info.engine import EntropyEngine
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


@dataclass(frozen=True)
class MVDSplit:
    """A scored candidate split ``separator ↠ left | right``."""

    separator: frozenset[str]
    left: frozenset[str]
    right: frozenset[str]
    cmi: float


@dataclass(frozen=True)
class MinedSchema:
    """Result of :func:`mine_jointree`.

    Attributes
    ----------
    jointree:
        The discovered join tree.
    bags:
        Its schema (maximal bags).
    j_value:
        ``J`` of the discovered schema on the training relation (nats).
    rho:
        Spurious-tuple loss of the discovered schema.
    splits:
        The accepted splits, in discovery order.
    """

    jointree: JoinTree
    bags: frozenset[frozenset[str]]
    j_value: float
    rho: float
    splits: tuple[MVDSplit, ...]


def best_split(
    relation: Relation,
    attributes: frozenset[str],
    *,
    max_separator_size: int = 2,
    exact_partition_limit: int = 10,
    engine: EntropyEngine | None = None,
) -> MVDSplit | None:
    """The lowest-CMI split of ``attributes``, or ``None`` if unsplittable.

    Searches every separator up to the size cap; for each, partitions the
    remainder exactly (small remainders) or greedily.  Ties break toward
    smaller separators, then lexicographically, for determinism.  All CMIs
    are served by one memoizing entropy engine (the relation's shared one
    unless ``engine`` is given), so the four-entropy expansions of
    overlapping candidate splits are each computed once.
    """
    if len(attributes) < 2:
        return None
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    best: MVDSplit | None = None
    for separator in candidate_separators(sorted(attributes), max_separator_size):
        rest = attributes - separator
        if len(rest) < 2:
            continue
        if len(rest) <= exact_partition_limit:
            partitions = binary_partitions(sorted(rest))
        else:
            partitions = [
                greedy_partition(relation, sorted(rest), separator, engine=engine)
            ]
        for left, right in partitions:
            cmi = conditional_mutual_information(
                relation, left, right, separator, engine=engine
            )
            candidate = MVDSplit(separator, left, right, cmi)
            if best is None or _prefer(candidate, best):
                best = candidate
    return best


def _prefer(candidate: MVDSplit, incumbent: MVDSplit) -> bool:
    """Strict preference order: CMI, then separator size, then lexicographic."""
    key_new = (
        candidate.cmi,
        len(candidate.separator),
        sorted(candidate.separator),
        sorted(candidate.left),
    )
    key_old = (
        incumbent.cmi,
        len(incumbent.separator),
        sorted(incumbent.separator),
        sorted(incumbent.left),
    )
    return key_new < key_old


def mine_jointree(
    relation: Relation,
    *,
    threshold: float = 1e-9,
    max_separator_size: int = 2,
    exact_partition_limit: int = 10,
    compute_loss: bool = True,
) -> MinedSchema:
    """Discover an acyclic schema with small J-measure for ``relation``.

    Parameters
    ----------
    relation:
        Training data.
    threshold:
        Maximum CMI (nats) a split may incur to be accepted.  ``1e-9``
        mines only exact (lossless) decompositions; larger values mine
        approximate schemas, trading spurious tuples for decomposition.
    max_separator_size:
        Cap on ``|X|`` in candidate MVDs ``X ↠ Y|Z``.
    exact_partition_limit:
        Remainder size up to which bipartitions are searched exhaustively.
    compute_loss:
        Also evaluate ``ρ`` of the mined schema (skippable when only J is
        needed).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import planted_mvd_relation
    >>> r = planted_mvd_relation(6, 6, 4, np.random.default_rng(0))
    >>> mined = mine_jointree(r)
    >>> mined.j_value <= 1e-9
    True
    """
    if relation.is_empty():
        raise DiscoveryError("cannot mine a schema from an empty relation")
    if threshold < 0:
        raise DiscoveryError(f"threshold must be non-negative, got {threshold}")

    from repro.jointrees.gyo import is_acyclic

    accepted: list[MVDSplit] = []
    engine = EntropyEngine.for_relation(relation)

    def decompose(attrs: frozenset[str]) -> list[frozenset[str]]:
        split = (
            best_split(
                relation,
                attrs,
                max_separator_size=max_separator_size,
                exact_partition_limit=exact_partition_limit,
                engine=engine,
            )
            if len(attrs) > 2
            else None
        )
        if split is None or split.cmi > threshold:
            return [attrs]
        combined = decompose(split.separator | split.left) + decompose(
            split.separator | split.right
        )
        # Recursive splits are not automatically closed under union:
        # each side's schema is acyclic, but gluing them can create a
        # cycle when a separator ends up scattered across bags.  Reject
        # such splits (keep the set as one bag).
        if not is_acyclic(combined):
            return [attrs]
        accepted.append(split)
        return combined

    bags = decompose(relation.schema.name_set)

    # Drop bags contained in others (a schema requires maximality).
    maximal = [
        bag for bag in bags if not any(bag < other for other in bags)
    ]
    # Deduplicate while preserving order.
    seen: set[frozenset[str]] = set()
    schema = []
    for bag in maximal:
        if bag not in seen:
            seen.add(bag)
            schema.append(bag)
    tree = jointree_from_schema(schema)
    j_value = j_measure(relation, tree, engine=engine)
    rho = spurious_loss(relation, tree) if compute_loss else math.nan
    return MinedSchema(
        jointree=tree,
        bags=frozenset(schema),
        j_value=j_value,
        rho=rho,
        splits=tuple(accepted),
    )

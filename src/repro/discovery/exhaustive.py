"""Exhaustive search over hierarchical acyclic schemas (miner baseline).

The greedy miner (:mod:`repro.discovery.miner`) accepts the first split
below threshold at each level; this module enumerates *every* schema
reachable by recursive binary MVD splits and returns the global optimum,
providing an exactness baseline for small attribute counts (the space is
super-exponential: use ``n ≤ 6``).

A "hierarchical schema" here is the family produced by recursively
splitting an attribute set ``V`` into ``(X ∪ Y) , (X ∪ Z)`` with
``X = separator``, ``Y ⊎ Z = V∖X`` — exactly the search space of [14]'s
miner and of ours.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

from repro.core.jmeasure import j_measure
from repro.core.loss import spurious_loss
from repro.discovery.candidates import binary_partitions, candidate_separators
from repro.discovery.context import SearchContext
from repro.discovery.miner import MinedSchema
from repro.errors import DiscoveryError
from repro.jointrees.build import jointree_from_schema
from repro.relations.relation import Relation

#: Hard cap on attribute count for exhaustive enumeration.
MAX_EXHAUSTIVE_ATTRIBUTES = 6


def hierarchical_schemas(
    attributes: frozenset[str], *, max_separator_size: int = 2
) -> Iterator[frozenset[frozenset[str]]]:
    """Yield every hierarchical schema over ``attributes`` (deduplicated).

    Includes the trivial one-bag schema.  Exponential; guarded by
    :data:`MAX_EXHAUSTIVE_ATTRIBUTES`.
    """
    if len(attributes) > MAX_EXHAUSTIVE_ATTRIBUTES:
        raise DiscoveryError(
            f"exhaustive enumeration capped at {MAX_EXHAUSTIVE_ATTRIBUTES} "
            f"attributes; got {len(attributes)}"
        )

    @lru_cache(maxsize=None)
    def decompositions(attrs: frozenset[str]) -> frozenset[frozenset[frozenset[str]]]:
        """All bag-sets reachable from ``attrs`` (as frozensets of bags)."""
        results = {frozenset({attrs})}
        if len(attrs) >= 2:
            for separator in candidate_separators(
                sorted(attrs), max_separator_size
            ):
                rest = attrs - separator
                if len(rest) < 2:
                    continue
                for left, right in binary_partitions(sorted(rest)):
                    for left_schema in decompositions(separator | left):
                        for right_schema in decompositions(separator | right):
                            results.add(left_schema | right_schema)
        return frozenset(results)

    from repro.jointrees.gyo import is_acyclic

    seen: set[frozenset[frozenset[str]]] = set()
    for schema in decompositions(frozenset(attributes)):
        # Drop non-maximal bags (can appear when a separator bag is
        # swallowed by a larger sibling bag).
        maximal = frozenset(
            bag for bag in schema if not any(bag < other for other in schema)
        )
        if maximal in seen:
            continue
        seen.add(maximal)
        # Recursive splits are not closed under union (the glued schema
        # can be cyclic when a separator scatters across bags); keep only
        # genuine acyclic schemas.
        if is_acyclic(maximal):
            yield maximal


def mine_exhaustive(
    relation: Relation,
    *,
    threshold: float = 1e-9,
    max_separator_size: int = 2,
    context: "SearchContext | None" = None,
) -> MinedSchema:
    """Globally optimal hierarchical schema by full enumeration.

    Objective: among schemas whose J-measure is at most ``threshold``,
    pick the one with the most bags (finest decomposition), breaking
    ties by smaller J; if none beats the trivial schema, return the
    trivial schema.  This matches the greedy miner's goal so the two are
    directly comparable.

    ``context`` (optional) supplies a shared
    :class:`~repro.discovery.context.SearchContext` so the enumeration
    reuses a strategy run's entropy memo; its threshold/cap fields are
    ignored in favour of the explicit arguments.
    """
    if relation.is_empty():
        raise DiscoveryError("cannot mine a schema from an empty relation")
    from repro.info.engine import EntropyEngine

    attrs = relation.schema.name_set
    engine = (
        context.engine if context is not None
        else EntropyEngine.for_relation(relation)
    )

    best_tree = None
    best_key: tuple[float, float] | None = None
    seen: set[frozenset[frozenset[str]]] = set()
    for schema in hierarchical_schemas(
        attrs, max_separator_size=max_separator_size
    ):
        if schema in seen:
            continue
        seen.add(schema)
        tree = jointree_from_schema(schema)
        j_value = j_measure(relation, tree, engine=engine)
        if j_value > threshold:
            continue
        key = (-float(len(schema)), j_value)
        if best_key is None or key < best_key:
            best_key = key
            best_tree = tree
    if best_tree is None:  # even the trivial schema exceeded the threshold?
        raise DiscoveryError(
            "no hierarchical schema met the threshold (the trivial schema "
            "has J = 0, so this indicates an internal error)"
        )
    return MinedSchema(
        jointree=best_tree,
        bags=frozenset(best_tree.schema()),
        j_value=j_measure(relation, best_tree, engine=engine),
        rho=spurious_loss(relation, best_tree),
        splits=(),
    )

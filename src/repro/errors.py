"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the failure mode by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation schema is malformed (duplicate attributes, empty, ...)."""


class DomainError(SchemaError):
    """A tuple value falls outside the declared attribute domain."""


class ArityError(SchemaError):
    """A tuple's length does not match the schema's attribute count."""


class UnknownAttributeError(SchemaError):
    """An operation referenced an attribute the schema does not contain."""


class JoinTreeError(ReproError):
    """A join tree is structurally invalid (not a tree, bad bags, ...)."""


class RunningIntersectionError(JoinTreeError):
    """A candidate join tree violates the running intersection property."""


class CyclicSchemaError(JoinTreeError):
    """A schema expected to be acyclic admits no join tree (GYO failed)."""


class DistributionError(ReproError):
    """A probability distribution is malformed (negative mass, sum != 1)."""


class BoundConditionError(ReproError):
    """A theorem's qualifying condition is violated and ``strict`` was set."""


class SamplingError(ReproError):
    """The random-relation sampler received infeasible parameters."""


class DiscoveryError(ReproError):
    """The schema miner could not produce a valid decomposition."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class SnapshotError(ReproError):
    """An on-disk columnar snapshot cannot be written or trusted.

    Raised when a snapshot is structurally invalid (bad format marker,
    version mismatch, truncated arrays, shape/cardinality disagreement),
    when its recorded fingerprint does not match the expected content,
    or when a relation's values cannot be represented faithfully on disk
    (:meth:`repro.relations.relation.Relation.save_snapshot` verifies the
    round-trip before publishing).  Callers holding the original CSV
    fall back to re-ingesting it."""


class ServiceError(ReproError):
    """The decomposition service was asked for something it cannot do."""


class UnknownDatasetError(ServiceError):
    """A request referenced a dataset fingerprint the registry never saw."""


class UnknownJobError(ServiceError):
    """A request referenced a job id the queue has never issued."""


class QueueFullError(ServiceError):
    """The job queue is at capacity; the caller should back off and retry."""


class DatasetDegradedError(ServiceError):
    """A dataset survives as metadata only: its source vanished or mutated
    after eviction, so the relation cannot be re-ingested.  Re-registering
    the dataset (or restoring its source) heals it."""


class CircuitOpenError(ServiceError):
    """An operation's circuit breaker is open after consecutive
    infrastructure failures; the caller should retry after the cooldown
    (``retry_after_s``, surfaced as an HTTP ``Retry-After`` header)."""

    def __init__(self, message: str, *, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class InjectedFaultError(ServiceError):
    """A deterministic fault-injection rule fired (chaos testing only;
    never raised unless a :class:`~repro.service.faults.FaultPlan` is
    explicitly enabled)."""

"""repro — Quantifying the Loss of Acyclic Join Dependencies.

A reproduction of Kenig & Weinberger (PODS 2023): the J-measure of an
acyclic schema equals the KL divergence between a relation's empirical
distribution and its junction-tree factorization, and it bounds the number
of spurious tuples from below deterministically (Lemma 4.1) and from above
with high probability under the random relation model (Theorem 5.1).

Quick start
-----------
>>> import numpy as np
>>> from repro import analyze, jointree_from_schema, random_relation
>>> r = random_relation({"A": 8, "B": 8, "C": 4}, 40, np.random.default_rng(0))
>>> tree = jointree_from_schema([{"A", "C"}, {"B", "C"}])
>>> report = analyze(r, tree)
>>> report.rho >= np.expm1(report.j_entropy) - 1e-9   # Lemma 4.1
True

Subpackages
-----------
``repro.relations``      relational algebra (schemas, joins, counting)
``repro.jointrees``      join trees, GYO, MVD support
``repro.info``           empirical distributions, entropies, divergences
``repro.concentration``  Appendix D probability tooling
``repro.core``           J-measure, loss, bounds, random relation model
``repro.datasets``       synthetic workloads and noise
``repro.discovery``      approximate acyclic-schema mining
``repro.factorize``      materialized decompositions + JSON reports
``repro.experiments``    the paper's evaluation harness (Figure 1 etc.)
"""

from repro.core import (
    EvalContext,
    LossAnalysis,
    analyze,
    entropy_confidence_radius,
    epsilon_star,
    expected_entropy_bounds,
    is_lossless,
    j_measure,
    j_measure_kl,
    j_measure_upper_bound,
    loss_lower_bound,
    mi_lower_confidence,
    product_bound_check,
    random_mvd_relation,
    random_relation,
    sandwich_bounds,
    satisfies_ajd,
    schema_upper_bound,
    split_loss,
    spurious_count,
    spurious_loss,
    support_cmis,
    support_split_losses,
)
from repro.discovery import mine_jointree
from repro.factorize import (
    Decomposition,
    DecompositionReport,
    decompose,
    discover_and_decompose,
    reconstruct,
    write_decomposition,
)
from repro.info import (
    EmpiricalDistribution,
    conditional_mutual_information,
    joint_entropy,
    junction_tree_factorization,
    kl_divergence,
    models_tree,
    mutual_information,
)
from repro.jointrees import (
    MVD,
    JoinTree,
    chain_jointree,
    edge_support,
    is_acyclic,
    jointree_from_mvd,
    jointree_from_schema,
    star_jointree,
)
from repro.relations import (
    Relation,
    RelationSchema,
    acyclic_join_size,
    join_size,
    natural_join,
    natural_join_all,
    read_csv,
    write_csv,
)

__version__ = "1.0.0"

__all__ = [
    "Decomposition",
    "DecompositionReport",
    "EmpiricalDistribution",
    "EvalContext",
    "JoinTree",
    "LossAnalysis",
    "MVD",
    "Relation",
    "RelationSchema",
    "__version__",
    "acyclic_join_size",
    "analyze",
    "chain_jointree",
    "conditional_mutual_information",
    "decompose",
    "discover_and_decompose",
    "edge_support",
    "entropy_confidence_radius",
    "epsilon_star",
    "expected_entropy_bounds",
    "is_acyclic",
    "is_lossless",
    "j_measure",
    "j_measure_kl",
    "j_measure_upper_bound",
    "join_size",
    "joint_entropy",
    "jointree_from_mvd",
    "jointree_from_schema",
    "junction_tree_factorization",
    "kl_divergence",
    "loss_lower_bound",
    "mi_lower_confidence",
    "mine_jointree",
    "models_tree",
    "mutual_information",
    "natural_join",
    "natural_join_all",
    "product_bound_check",
    "random_mvd_relation",
    "random_relation",
    "read_csv",
    "reconstruct",
    "sandwich_bounds",
    "satisfies_ajd",
    "schema_upper_bound",
    "split_loss",
    "spurious_count",
    "spurious_loss",
    "star_jointree",
    "support_cmis",
    "support_split_losses",
    "write_csv",
    "write_decomposition",
]

"""Multivalued dependencies and the MVD support of a join tree.

An MVD ``φ = X ↠ Y₁ | … | Y_m`` (Section 2.1) asserts that the schema
``{XY₁, …, XY_m}`` is lossless for the instance.  Beeri et al. showed that
a relation satisfies an acyclic join dependency iff it satisfies the
``m − 1`` MVDs attached to the join tree's edges — the tree's *support*.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True)
class MVD:
    """A multivalued dependency ``lhs ↠ groups[0] | groups[1] | …``.

    Groups are pairwise disjoint and disjoint from ``lhs``; together with
    ``lhs`` they cover the MVD's attribute universe.

    Examples
    --------
    >>> phi = MVD.parse("X -> U | V W")
    >>> sorted(phi.lhs), [sorted(g) for g in phi.groups]
    (['X'], [['U'], ['V', 'W']])
    """

    lhs: frozenset[str]
    groups: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        lhs = frozenset(self.lhs)
        groups = tuple(frozenset(g) for g in self.groups)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "groups", groups)
        if len(groups) < 2:
            raise SchemaError("an MVD needs at least two groups")
        seen: set[str] = set(lhs)
        for group in groups:
            if not group:
                raise SchemaError("MVD groups must be non-empty")
            overlap = group & seen
            if overlap:
                raise SchemaError(
                    f"MVD groups must be disjoint from each other and the "
                    f"lhs; {sorted(overlap)} repeats"
                )
            seen |= group

    # ------------------------------------------------------------------
    @classmethod
    def binary(
        cls, lhs: Iterable[str], left: Iterable[str], right: Iterable[str]
    ) -> "MVD":
        """The two-group MVD ``lhs ↠ left | right``."""
        return cls(frozenset(lhs), (frozenset(left), frozenset(right)))

    @classmethod
    def parse(cls, text: str) -> "MVD":
        """Parse ``"X Y -> A B | C | D"`` style notation.

        The left-hand side may be empty (``"-> A | B"`` denotes the
        degenerate MVD with ``d_C = 1``).
        """
        if "->" not in text:
            raise SchemaError(f"cannot parse MVD {text!r}: missing '->'")
        lhs_text, rhs_text = text.split("->", 1)
        lhs = frozenset(lhs_text.split())
        groups = tuple(
            frozenset(part.split()) for part in rhs_text.split("|")
        )
        return cls(lhs, groups)

    # ------------------------------------------------------------------
    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by the MVD."""
        out = set(self.lhs)
        for group in self.groups:
            out |= group
        return frozenset(out)

    def schema(self) -> tuple[frozenset[str], ...]:
        """The acyclic schema ``{lhs ∪ Yᵢ}`` the MVD decomposes into."""
        return tuple(self.lhs | group for group in self.groups)

    def is_binary(self) -> bool:
        """Whether the MVD has exactly two groups (``X ↠ Y | Z``)."""
        return len(self.groups) == 2

    def __repr__(self) -> str:
        lhs = " ".join(sorted(self.lhs)) or "∅"
        rhs = " | ".join(" ".join(sorted(g)) for g in self.groups)
        return f"MVD({lhs} ↠ {rhs})"


def edge_support(jointree) -> tuple[MVD, ...]:
    """The ``m − 1`` edge MVDs ``φ_{u,v}`` of a join tree (Beeri et al.).

    For each edge ``(u, v)``, removing the edge splits the tree into
    subtrees ``T_u`` and ``T_v``; the MVD is
    ``χ(u) ∩ χ(v) ↠ χ(T_u) \\ sep | χ(T_v) \\ sep``.

    By running intersection, the two sides overlap exactly in the
    separator, so the groups are genuinely disjoint.
    """
    mvds = []
    for u, v in jointree.edges():
        separator = jointree.separator(u, v)
        side_u, side_v = jointree.edge_subtree_attributes(u, v)
        left = side_u - separator
        right = side_v - separator
        if not left or not right:
            # Degenerate edge (one side adds no attributes): no constraint.
            continue
        mvds.append(MVD(separator, (left, right)))
    return tuple(mvds)

"""GYO reduction: testing acyclicity of a schema (hypergraph).

A schema ``S = {Ω₁, …, Ω_m}`` is *acyclic* iff it admits a join tree
(Definition 2.1).  The classic Graham/Yu–Özsoyoğlu (GYO) algorithm decides
this by repeatedly removing "ears":

1. remove any attribute that appears in exactly one hyperedge ("isolated");
2. remove any hyperedge that is contained in another hyperedge.

The schema is acyclic iff the reduction terminates with at most one
(possibly empty) hyperedge.  Recording *which* surviving edge witnessed
each removal yields a join tree directly (see
:func:`repro.jointrees.build.jointree_from_schema`).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class EarRemoval:
    """One step of a successful GYO reduction.

    ``edge_index`` was removed because, after dropping its isolated
    attributes, the remainder was contained in ``witness_index`` (an edge
    still alive at that point).  ``witness_index`` is ``None`` only for the
    final surviving edge.
    """

    edge_index: int
    witness_index: int | None


@dataclass
class GYOResult:
    """Outcome of :func:`gyo_reduction`.

    Attributes
    ----------
    acyclic:
        Whether the schema is acyclic.
    removals:
        Ear-removal sequence (only meaningful when ``acyclic``); the last
        entry is the final surviving edge with ``witness_index=None``.
    residual:
        Hyperedges (by original index) left when the reduction stalls;
        empty when ``acyclic``.
    """

    acyclic: bool
    removals: list[EarRemoval] = field(default_factory=list)
    residual: list[int] = field(default_factory=list)


def gyo_reduction(hyperedges: Iterable[Iterable[str]]) -> GYOResult:
    """Run GYO reduction on a hypergraph given as attribute collections.

    Duplicate hyperedges are allowed (one will absorb the other).  The
    empty hypergraph and single-edge hypergraphs are trivially acyclic.
    """
    edges: list[frozenset[str]] = [frozenset(e) for e in hyperedges]
    alive: dict[int, set[str]] = {i: set(e) for i, e in enumerate(edges)}
    removals: list[EarRemoval] = []

    if not alive:
        return GYOResult(acyclic=True)

    changed = True
    while changed and len(alive) > 1:
        changed = False

        # Step 1: drop attributes appearing in exactly one live edge.
        attr_count: dict[str, int] = {}
        for attrs in alive.values():
            for attr in attrs:
                attr_count[attr] = attr_count.get(attr, 0) + 1
        for attrs in alive.values():
            isolated = {a for a in attrs if attr_count[a] == 1}
            if isolated:
                attrs -= isolated
                changed = True

        # Step 2: remove edges contained in some other live edge.
        for idx in sorted(alive):
            attrs = alive[idx]
            witness = next(
                (
                    j
                    for j in sorted(alive)
                    if j != idx and attrs <= alive[j]
                ),
                None,
            )
            if witness is not None:
                removals.append(EarRemoval(edge_index=idx, witness_index=witness))
                del alive[idx]
                changed = True
                break  # attribute counts are stale; restart the sweep

    if len(alive) == 1:
        last = next(iter(alive))
        removals.append(EarRemoval(edge_index=last, witness_index=None))
        return GYOResult(acyclic=True, removals=removals)
    return GYOResult(acyclic=False, residual=sorted(alive))


def is_acyclic(hyperedges: Iterable[Iterable[str]]) -> bool:
    """Whether the schema admits a join tree (GYO succeeds)."""
    return gyo_reduction(hyperedges).acyclic

"""Enumerate every join tree of an acyclic schema.

An acyclic schema generally admits many join trees (e.g. the schema of an
MVD ``X ↠ Y₁|…|Y_m`` admits every tree on ``m`` nodes).  The classic
characterization: a tree over the bags is a join tree iff it is a
*maximum-weight* spanning tree of the bag intersection graph, with edge
weight ``|Ωᵢ ∩ Ω_j|``.  Since the schemas here are small, we simply
enumerate all spanning trees (networkx) and keep those satisfying the
running intersection property.

The paper notes that ``J`` depends only on the schema, not the join tree
(Section 2.2); :func:`all_jointrees` lets tests verify that invariance
over the *entire* tree space rather than a few hand-picked shapes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.errors import CyclicSchemaError, JoinTreeError, RunningIntersectionError
from repro.jointrees.jointree import JoinTree


def all_jointrees(schema: Iterable[Iterable[str]]) -> Iterator[JoinTree]:
    """Yield every join tree whose bags are exactly the given schema.

    Raises :class:`CyclicSchemaError` if the schema admits none.
    Exponential in general (Cayley: up to ``m^{m−2}`` trees) — intended
    for small schemas (tests, the discovery baseline).
    """
    bags = [frozenset(b) for b in schema]
    if not bags:
        raise JoinTreeError("cannot enumerate join trees of an empty schema")
    if len(bags) == 1:
        yield JoinTree({0: bags[0]}, [])
        return

    graph = nx.Graph()
    graph.add_nodes_from(range(len(bags)))
    for i in range(len(bags)):
        for j in range(i + 1, len(bags)):
            # Zero-intersection edges are allowed (disconnected-attribute
            # schemas need them to form a tree at all).
            graph.add_edge(i, j, weight=len(bags[i] & bags[j]))

    found = False
    for tree in nx.SpanningTreeIterator(graph):
        try:
            candidate = JoinTree(
                {i: bags[i] for i in range(len(bags))},
                list(tree.edges()),
            )
        except RunningIntersectionError:
            continue
        found = True
        yield candidate
    if not found:
        raise CyclicSchemaError(
            "schema admits no join tree (cyclic hypergraph)"
        )


def count_jointrees(schema: Iterable[Iterable[str]]) -> int:
    """Number of distinct join trees of the schema."""
    return sum(1 for _ in all_jointrees(schema))

"""Structural metrics of join trees and acyclic schemas.

Used by analysis reports and the schema-frontier profiler to describe a
decomposition's shape: width (max bag size), separator sizes, diameter,
and the storage footprint of the factorized representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation

if TYPE_CHECKING:  # avoid a runtime cycle with repro.core.evalcontext
    from repro.core.evalcontext import EvalContext


@dataclass(frozen=True)
class TreeMetrics:
    """Shape statistics of a join tree."""

    num_nodes: int
    num_bags: int          # maximal bags (the schema's size m)
    width: int             # max bag size
    min_bag_size: int
    max_separator_size: int
    diameter: int          # longest path, in edges


def tree_metrics(jointree: JoinTree) -> TreeMetrics:
    """Compute :class:`TreeMetrics` for a join tree."""
    bags = jointree.bags()
    separators = jointree.separators()
    return TreeMetrics(
        num_nodes=jointree.num_nodes,
        num_bags=len(jointree.schema()),
        width=max(len(b) for b in bags),
        min_bag_size=min(len(b) for b in bags),
        max_separator_size=max((len(s) for s in separators), default=0),
        diameter=_diameter(jointree),
    )


def _diameter(jointree: JoinTree) -> int:
    """Longest shortest-path between two nodes (double BFS)."""
    if jointree.num_nodes == 1:
        return 0

    def farthest(start: int) -> tuple[int, int]:
        depth = {start: 0}
        frontier = [start]
        last = start
        while frontier:
            nxt = []
            for node in frontier:
                for nbr in jointree.neighbors(node):
                    if nbr not in depth:
                        depth[nbr] = depth[node] + 1
                        nxt.append(nbr)
                        last = nbr
            frontier = nxt
        return last, depth[last]

    end, _ = farthest(jointree.node_ids()[0])
    _, dist = farthest(end)
    return dist


def storage_cells(
    relation: Relation, jointree: JoinTree, *, context: EvalContext | None = None
) -> int:
    """Cells needed to store the schema's projections of ``relation``.

    ``Σ_bag |R[bag]| · |bag|`` — the factorized footprint the intro's
    compression application cares about (vs ``N·n`` for the original).
    Counted from columnar projection sizes; nothing is materialized.
    ``context`` may be an :class:`~repro.core.evalcontext.EvalContext`
    whose projection-size memo should be shared.
    """
    size_of = context.projection_size if context is not None else relation.projection_size
    return sum(size_of(bag) * len(bag) for bag in jointree.schema())


def compression_ratio(
    relation: Relation, jointree: JoinTree, *, context: EvalContext | None = None
) -> float:
    """``storage_cells / (N·n)`` — below 1 means the factorization saves space."""
    original = len(relation) * relation.schema.arity
    if original == 0:
        return 1.0
    return storage_cells(relation, jointree, context=context) / original

"""Join tree construction.

* :func:`jointree_from_schema` — build a join tree for any acyclic schema
  using the GYO ear-removal witnesses (raises for cyclic schemas).
* :func:`jointree_from_mvd` — the star-shaped tree of an MVD
  ``X ↠ Y₁|…|Y_m`` with bags ``XYᵢ`` (Section 2.1).
* :func:`chain_jointree` / :func:`star_jointree` — explicit shapes used by
  experiments and tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import CyclicSchemaError, JoinTreeError
from repro.jointrees.gyo import gyo_reduction
from repro.jointrees.jointree import JoinTree
from repro.jointrees.mvds import MVD


def jointree_from_schema(schema: Iterable[Iterable[str]]) -> JoinTree:
    """Build a join tree whose bags are the given acyclic schema.

    The GYO reduction removes one "ear" at a time; connecting each removed
    ear to its witness edge yields a tree satisfying the running
    intersection property (classic construction, Beeri et al. [2]).

    Raises
    ------
    CyclicSchemaError
        If the schema admits no join tree.
    """
    bags = [frozenset(b) for b in schema]
    if not bags:
        raise JoinTreeError("cannot build a join tree for an empty schema")
    result = gyo_reduction(bags)
    if not result.acyclic:
        residual = [sorted(bags[i]) for i in result.residual]
        raise CyclicSchemaError(
            f"schema is cyclic; GYO stalled with residual edges {residual}"
        )
    edges = [
        (removal.edge_index, removal.witness_index)
        for removal in result.removals
        if removal.witness_index is not None
    ]
    return JoinTree({i: bag for i, bag in enumerate(bags)}, edges)


def jointree_from_mvd(mvd: MVD) -> JoinTree:
    """The join tree of an MVD: bags ``X·Yᵢ`` in a star around ``X·Y₁``.

    Any tree over these bags has every separator equal to ``X``, so the
    J-measure is shape-independent (the paper's ``XU − XV − XW`` example);
    we pick the star for determinism.
    """
    bags = {i: mvd.lhs | group for i, group in enumerate(mvd.groups)}
    edges = [(0, i) for i in range(1, len(bags))]
    return JoinTree(bags, edges)


def chain_jointree(bags: Sequence[Iterable[str]]) -> JoinTree:
    """A path-shaped join tree ``bag₀ − bag₁ − … − bag_{m−1}``.

    Raises if the chain violates running intersection.
    """
    bag_map = {i: frozenset(b) for i, b in enumerate(bags)}
    edges = [(i, i + 1) for i in range(len(bag_map) - 1)]
    return JoinTree(bag_map, edges)


def star_jointree(center: Iterable[str], leaves: Sequence[Iterable[str]]) -> JoinTree:
    """A star-shaped join tree with ``center`` adjacent to every leaf."""
    bag_map: dict[int, frozenset[str]] = {0: frozenset(center)}
    for i, leaf in enumerate(leaves, start=1):
        bag_map[i] = frozenset(leaf)
    edges = [(0, i) for i in range(1, len(bag_map))]
    return JoinTree(bag_map, edges)

"""Acyclic schemas: join trees, GYO reduction, MVD support."""

from repro.jointrees.build import (
    chain_jointree,
    jointree_from_mvd,
    jointree_from_schema,
    star_jointree,
)
from repro.jointrees.enumerate import all_jointrees, count_jointrees
from repro.jointrees.gyo import EarRemoval, GYOResult, gyo_reduction, is_acyclic
from repro.jointrees.jointree import Bag, JoinTree, RootedSplit
from repro.jointrees.metrics import (
    TreeMetrics,
    compression_ratio,
    storage_cells,
    tree_metrics,
)
from repro.jointrees.mvds import MVD, edge_support

__all__ = [
    "Bag",
    "EarRemoval",
    "GYOResult",
    "JoinTree",
    "MVD",
    "RootedSplit",
    "TreeMetrics",
    "all_jointrees",
    "chain_jointree",
    "count_jointrees",
    "compression_ratio",
    "edge_support",
    "storage_cells",
    "tree_metrics",
    "gyo_reduction",
    "is_acyclic",
    "jointree_from_mvd",
    "jointree_from_schema",
    "star_jointree",
]

"""Join trees (junction trees) over attribute sets.

Implements Definition 2.1 of the paper: a :class:`JoinTree` is an undirected
tree whose nodes carry attribute sets ("bags") satisfying the *running
intersection property* — for every attribute, the nodes containing it form
a connected subtree.

The class also provides the rooted depth-first enumeration used throughout
Section 2.3 (``u₁, …, u_m`` with ``parent(uᵢ) = u_j, j < i``), the
separators ``Δᵢ = χ(parent(uᵢ)) ∩ χ(uᵢ)``, and the prefix/suffix attribute
unions ``Ω_{1:i−1}`` / ``Ω_{i:m}`` that define the tree's MVD support.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import JoinTreeError, RunningIntersectionError

Bag = frozenset[str]


@dataclass(frozen=True)
class RootedSplit:
    """One term of the rooted support (Theorem 2.2 / Eq. 9).

    For the ``i``-th node of a depth-first enumeration (``i ≥ 2``):

    * ``separator`` — ``Δᵢ = χ(parent(uᵢ)) ∩ χ(uᵢ)``;
    * ``prefix``    — ``Ω_{1:i−1}``, the union of the first ``i−1`` bags;
    * ``suffix``    — ``Ω_{i:m}``, the union of the remaining bags.

    The associated conditional mutual information is
    ``I(prefix; suffix | separator)``.
    """

    index: int
    separator: Bag
    prefix: Bag
    suffix: Bag


class JoinTree:
    """An undirected tree of bags with the running intersection property.

    Parameters
    ----------
    bags:
        Mapping from node id (any hashable; ints conventional) to the
        node's attribute set.
    edges:
        Iterable of node-id pairs.  Must form a tree over the node ids
        (``m − 1`` edges, connected, no self-loops).
    validate:
        If true (default), check treeness and running intersection at
        construction and raise on violation.

    Examples
    --------
    >>> t = JoinTree({0: {"X", "U"}, 1: {"X", "V"}}, [(0, 1)])
    >>> sorted(map(sorted, t.bags()))
    [['U', 'X'], ['V', 'X']]
    >>> t.separator(0, 1)
    frozenset({'X'})
    """

    __slots__ = ("_adjacency", "_attributes", "_bags", "_edges", "_node_ids", "_separators")

    def __init__(
        self,
        bags: Mapping[int, Iterable[str]],
        edges: Iterable[tuple[int, int]],
        *,
        validate: bool = True,
    ) -> None:
        if not bags:
            raise JoinTreeError("a join tree needs at least one node")
        self._bags: dict[int, Bag] = {
            node: frozenset(attrs) for node, attrs in bags.items()
        }
        for node, bag in self._bags.items():
            if not bag:
                raise JoinTreeError(f"node {node!r} has an empty bag")
        self._edges: list[tuple[int, int]] = []
        self._adjacency: dict[int, set[int]] = {node: set() for node in self._bags}
        for u, v in edges:
            if u not in self._bags or v not in self._bags:
                raise JoinTreeError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise JoinTreeError(f"self-loop on node {u!r}")
            if v in self._adjacency[u]:
                raise JoinTreeError(f"duplicate edge ({u!r}, {v!r})")
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._edges.append((u, v))
        # Lazily-computed structure caches (the tree is immutable).
        self._node_ids: tuple[int, ...] | None = None
        self._attributes: Bag | None = None
        self._separators: tuple[Bag, ...] | None = None
        if validate:
            self._validate_tree()
            self._validate_running_intersection()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_tree(self) -> None:
        m = len(self._bags)
        if len(self._edges) != m - 1:
            raise JoinTreeError(
                f"a tree on {m} nodes needs {m - 1} edges, got {len(self._edges)}"
            )
        if m == 1:
            return
        seen: set[int] = set()
        start = next(iter(self._bags))
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._adjacency[node] - seen)
        if len(seen) != m:
            raise JoinTreeError("join tree is not connected")

    def _validate_running_intersection(self) -> None:
        attr_nodes: dict[str, list[int]] = {}
        for node, bag in self._bags.items():
            for attr in bag:
                attr_nodes.setdefault(attr, []).append(node)
        for attr, nodes in attr_nodes.items():
            if len(nodes) <= 1:
                continue
            member = set(nodes)
            # BFS within the induced subgraph; must reach every member.
            seen = {nodes[0]}
            stack = [nodes[0]]
            while stack:
                node = stack.pop()
                for nbr in self._adjacency[node]:
                    if nbr in member and nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            if seen != member:
                raise RunningIntersectionError(
                    f"attribute {attr!r} appears in a disconnected node set"
                )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def node_ids(self) -> tuple[int, ...]:
        """Node ids in a deterministic order (cached)."""
        if self._node_ids is None:
            self._node_ids = tuple(sorted(self._bags, key=repr))
        return self._node_ids

    def bag(self, node: int) -> Bag:
        """The attribute set ``χ(node)``."""
        try:
            return self._bags[node]
        except KeyError:
            raise JoinTreeError(f"unknown node {node!r}") from None

    def bags(self) -> tuple[Bag, ...]:
        """All bags, aligned with :meth:`node_ids`."""
        return tuple(self._bags[n] for n in self.node_ids())

    def edges(self) -> tuple[tuple[int, int], ...]:
        """The tree's edges as given at construction."""
        return tuple(self._edges)

    def neighbors(self, node: int) -> frozenset[int]:
        """Neighbor node ids of ``node``."""
        self.bag(node)  # raise on unknown node
        return frozenset(self._adjacency[node])

    def separator(self, u: int, v: int) -> Bag:
        """``χ(u) ∩ χ(v)`` for an *edge* ``(u, v)``."""
        if v not in self._adjacency[u]:
            raise JoinTreeError(f"({u!r}, {v!r}) is not an edge of the tree")
        return self._bags[u] & self._bags[v]

    def separators(self) -> tuple[Bag, ...]:
        """Separators of all edges, aligned with :meth:`edges` (cached)."""
        if self._separators is None:
            self._separators = tuple(
                self._bags[u] & self._bags[v] for u, v in self._edges
            )
        return self._separators

    def attributes(self) -> Bag:
        """``χ(T)`` — the union of all bags (cached)."""
        if self._attributes is None:
            out: set[str] = set()
            for bag in self._bags.values():
                out |= bag
            self._attributes = frozenset(out)
        return self._attributes

    @property
    def num_nodes(self) -> int:
        """``m`` — number of nodes."""
        return len(self._bags)

    # ------------------------------------------------------------------
    # The schema defined by the tree
    # ------------------------------------------------------------------
    def schema(self) -> frozenset[Bag]:
        """The acyclic schema ``S``: the set of *maximal* bags.

        Definition 2.1's schema drops bags contained in another bag (a
        schema requires ``Ωᵢ ⊄ Ω_j``); duplicated or nested bags are legal
        in a join tree but contribute nothing to the schema.
        """
        bags = set(self._bags.values())
        return frozenset(
            bag
            for bag in bags
            if not any(bag < other for other in bags)
        )

    def is_reduced(self) -> bool:
        """Whether no bag is contained in another (schema = bags)."""
        bags = list(self._bags.values())
        return not any(
            a <= b for i, a in enumerate(bags) for j, b in enumerate(bags) if i != j
        )

    # ------------------------------------------------------------------
    # Rooted views
    # ------------------------------------------------------------------
    def default_root(self) -> int:
        """The deterministic default root (smallest node id by repr)."""
        return self.node_ids()[0]

    def dfs_order(self, root: int | None = None) -> tuple[int, ...]:
        """Depth-first enumeration ``u₁, …, u_m`` starting at ``root``.

        Guarantees ``parent(uᵢ)`` precedes ``uᵢ``; children are visited in
        deterministic (sorted) order.
        """
        root = self.default_root() if root is None else root
        self.bag(root)
        order: list[int] = []
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            order.append(node)
            stack.extend(
                sorted(self._adjacency[node] - seen, key=repr, reverse=True)
            )
        return tuple(order)

    def parents(self, root: int | None = None) -> dict[int, int]:
        """Parent map for the rooted tree (root absent from the map)."""
        order = self.dfs_order(root)
        root_node = order[0]
        parent: dict[int, int] = {}
        placed = {root_node}
        for node in order[1:]:
            # the unique already-placed neighbor is the parent
            for nbr in self._adjacency[node]:
                if nbr in placed:
                    parent[node] = nbr
                    break
            placed.add(node)
        return parent

    def topological_order(self, root: int | None = None) -> tuple[int, ...]:
        """Leaves-first order (reverse DFS): every node before its parent."""
        return tuple(reversed(self.dfs_order(root)))

    def rooted_splits(self, root: int | None = None) -> tuple[RootedSplit, ...]:
        """The ``m − 1`` rooted splits of Theorem 2.2 / Eq. 9.

        For each ``i ∈ [2, m]`` of the depth-first enumeration, yields
        ``Δᵢ``, ``Ω_{1:i−1}``, and ``Ω_{i:m}``.
        """
        order = self.dfs_order(root)
        parent = self.parents(root)
        m = len(order)
        prefix_unions: list[Bag] = []
        acc: set[str] = set()
        for node in order:
            acc |= self._bags[node]
            prefix_unions.append(frozenset(acc))
        suffix_unions: list[Bag] = [frozenset()] * m
        acc = set()
        for i in range(m - 1, -1, -1):
            acc |= self._bags[order[i]]
            suffix_unions[i] = frozenset(acc)
        splits = []
        for i in range(1, m):
            node = order[i]
            separator = self._bags[node] & self._bags[parent[node]]
            splits.append(
                RootedSplit(
                    index=i + 1,  # paper's 1-based i ∈ [2, m]
                    separator=separator,
                    prefix=prefix_unions[i - 1],
                    suffix=suffix_unions[i],
                )
            )
        return tuple(splits)

    def edge_subtree_attributes(self, u: int, v: int) -> tuple[Bag, Bag]:
        """``(χ(T_u), χ(T_v))`` after removing edge ``(u, v)``.

        These are the two sides of the MVD ``φ_{u,v}`` associated with the
        edge (Section 2.1).  By running intersection their overlap is
        exactly the edge separator.
        """
        if v not in self._adjacency[u]:
            raise JoinTreeError(f"({u!r}, {v!r}) is not an edge of the tree")
        side_u = self._collect_side(u, blocked=v)
        side_v = self._collect_side(v, blocked=u)
        return side_u, side_v

    def _collect_side(self, start: int, *, blocked: int) -> Bag:
        seen = {start}
        stack = [start]
        attrs: set[str] = set()
        while stack:
            node = stack.pop()
            attrs |= self._bags[node]
            for nbr in self._adjacency[node]:
                if nbr != blocked and nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return frozenset(attrs)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def merge_edge(self, u: int, v: int) -> "JoinTree":
        """Contract edge ``(u, v)`` into one node with bag ``χ(u) ∪ χ(v)``.

        The construction used in the inductive proofs of Prop. 3.1 and
        Prop. 5.1.  The merged node keeps id ``u``.
        """
        if v not in self._adjacency[u]:
            raise JoinTreeError(f"({u!r}, {v!r}) is not an edge of the tree")
        new_bags = {
            node: bag for node, bag in self._bags.items() if node != v
        }
        new_bags[u] = self._bags[u] | self._bags[v]
        new_edges = []
        for a, b in self._edges:
            if {a, b} == {u, v}:
                continue
            a2 = u if a == v else a
            b2 = u if b == v else b
            new_edges.append((a2, b2))
        return JoinTree(new_bags, new_edges)

    def relabel(self, mapping: Mapping[int, int]) -> "JoinTree":
        """Return a copy with node ids relabeled via ``mapping``."""
        new_bags = {mapping.get(n, n): bag for n, bag in self._bags.items()}
        if len(new_bags) != len(self._bags):
            raise JoinTreeError("relabel mapping collapses node ids")
        new_edges = [
            (mapping.get(u, u), mapping.get(v, v)) for u, v in self._edges
        ]
        return JoinTree(new_bags, new_edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinTree):
            return NotImplemented
        return self._bags == other._bags and set(
            frozenset(e) for e in self._edges
        ) == set(frozenset(e) for e in other._edges)

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._bags.items()),
                frozenset(frozenset(e) for e in self._edges),
            )
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{node}:{{{','.join(sorted(self._bags[node]))}}}"
            for node in self.node_ids()
        )
        return f"JoinTree({parts}; edges={self._edges})"

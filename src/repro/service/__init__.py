"""Decomposition-as-a-service: long-lived, cacheable serving infrastructure.

The :mod:`repro.service` package turns the library's one-shot pipeline
(ingest → mine → analyze → decompose) into a concurrent HTTP/JSON
service that amortizes work across requests:

* :class:`~repro.service.registry.DatasetRegistry` — CSVs ingested once
  (eager or streamed), keyed by content fingerprint, kept resident with
  their exact entropy engines under an LRU memory budget;
* :class:`~repro.service.cache.ResultCache` — mine/analyze/decompose
  reports keyed by ``(fingerprint, operation, canonical params)``, with
  an optional on-disk spill so restarts stay warm;
* :class:`~repro.service.jobs.JobQueue` — a thread worker pool with job
  states, per-job deadlines mapped onto search budgets, request
  coalescing, and backpressure;
* :mod:`repro.service.http` / :class:`~repro.service.app.Service` — the
  stdlib ``ThreadingHTTPServer`` API (``repro-ajd serve``);
* :class:`~repro.service.client.ServiceClient` — the Python client,
  with capped-jittered retries and idempotent resubmission;
* :class:`~repro.service.faults.FaultPlan` — the deterministic
  fault-injection harness behind the chaos test suite;
* :mod:`repro.service.telemetry` — the observability plane: a typed
  metrics registry (Prometheus exposition at ``/v1/metrics``), latency
  histograms with exact-ish quantiles, structured JSON request logs,
  and cross-process trace propagation (``docs/observability.md``);
* :mod:`repro.service.cluster` / :mod:`repro.service.dispatch` — the
  ``--worker-procs N`` multi-process scale-out: worker subprocesses own
  consistent-hash shards of the datasets, hydrate them zero-parse from
  snapshots, and receive jobs over a length-prefixed socket protocol.

See ``docs/service.md`` for the API reference and semantics, and
``docs/robustness.md`` for the failure model.
"""

from repro.service.app import Service
from repro.service.cache import ResultCache, canonical_key
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.config import ServiceConfig
from repro.service.dispatch import DispatchError, WorkerCrashedError
from repro.service.faults import FaultPlan, WorkerCrashInjection
from repro.service.jobs import BatchItem, BatchJob, CircuitBreaker, Job, JobQueue
from repro.service.operations import canonicalize_params, run_operation
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.service.telemetry import MetricsRegistry, StageTimings, Telemetry

__all__ = [
    "BatchItem",
    "BatchJob",
    "CircuitBreaker",
    "ClusterSupervisor",
    "DatasetEntry",
    "DatasetRegistry",
    "DispatchError",
    "FaultPlan",
    "Job",
    "JobQueue",
    "MetricsRegistry",
    "ResultCache",
    "Service",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ShardMap",
    "StageTimings",
    "Telemetry",
    "WorkerCrashInjection",
    "WorkerCrashedError",
    "canonical_key",
    "canonicalize_params",
    "run_operation",
]


def __getattr__(name: str):
    # ClusterSupervisor/ShardMap resolve lazily: the cluster module pulls
    # in subprocess machinery that single-process embedders never need.
    if name in ("ClusterSupervisor", "ShardMap"):
        from repro.service import cluster

        return getattr(cluster, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Service telemetry: metrics registry, latency histograms, spans, logs.

Everything the service knows about itself flows through one
process-wide :class:`MetricsRegistry` of typed instruments:

* :class:`Counter` — monotonically increasing totals (cache hits,
  dispatches, evictions).  Optionally labelled
  (``counter.labels("mine").inc()``).
* :class:`Gauge` — point-in-time values (queue depth, resident bytes,
  breaker state), usually refreshed by a *collect hook* just before a
  scrape.
* :class:`Histogram` — fixed-bucket latency distributions with
  **log-spaced** bucket bounds and exact p50/p95/p99 readout from the
  bucket counts (:meth:`Histogram.quantile`).

The registry renders to Prometheus text exposition
(:meth:`MetricsRegistry.render`, served as ``GET /v1/metrics``) and to
a JSON snapshot (:meth:`MetricsRegistry.snapshot`) that worker
subprocesses ship to the front end over the dispatch protocol, where
:class:`RemoteMetrics` folds them — monotonic across worker respawns,
exactly like entropy-memo deltas.

Request/job **timelines** are :class:`StageTimings`: named spans
(``with timings.span("run"): ...``) accumulated in order, rendered as
a ``Server-Timing`` header and embedded in the structured request log.
Trace ids (:func:`new_trace_id`) are minted at the front end and ride
the cluster wire protocol so one job's spans are correlatable across
processes.

The **request log** (:class:`RequestLog`) writes one JSON line per
request/job through a bounded queue drained by a background thread:
``emit()`` never blocks — when the sink is slow or dead the line is
dropped and counted (``telemetry_log_dropped_total``), which the
``telemetry.log_write`` fault site exercises.

Stdlib only; zero third-party dependencies.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from bisect import bisect_left

from repro.errors import ServiceError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RemoteMetrics",
    "RequestLog",
    "StageTimings",
    "Telemetry",
    "default_latency_buckets",
    "merge_snapshots",
    "new_request_id",
    "new_trace_id",
    "render_snapshot",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (64 random bits)."""
    return os.urandom(8).hex()


def new_request_id() -> str:
    """A fresh 16-hex-digit request id (64 random bits)."""
    return os.urandom(8).hex()


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced latency bounds: 100 µs → 100 s, four buckets/decade.

    The warm cache hit (~1 ms), a cold mine (~100 ms), and a deadline
    timeout (~10 s) all land mid-range with ~78% bucket resolution
    (10^(1/4) ≈ 1.78x between bounds).
    """
    return tuple(10.0 ** (-4 + i / 4) for i in range(25))


def _label_key(labelnames, args, kwargs) -> tuple[str, ...]:
    if kwargs:
        if args:
            raise ServiceError("pass label values positionally or by name, not both")
        try:
            args = tuple(kwargs[name] for name in labelnames)
        except KeyError as exc:
            raise ServiceError(f"missing label {exc} (have {labelnames})") from None
    if len(args) != len(labelnames):
        raise ServiceError(
            f"expected {len(labelnames)} label value(s) {labelnames}, "
            f"got {len(args)}"
        )
    return tuple(str(value) for value in args)


class _Instrument:
    """Shared shape: name, help, label-keyed children behind one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames=()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, *args, **kwargs):
        """The child instrument for one label-value combination."""
        key = _label_key(self.labelnames, args, kwargs)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _default_child(self):
        # The unlabeled fast path: inc()/set()/observe() directly on the
        # instrument operates on the () child.
        if self.labelnames:
            raise ServiceError(
                f"{self.name} is labelled {self.labelnames}; use .labels(...)"
            )
        return self.labels()


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ServiceError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def value(self, *args, **kwargs) -> float:
        if args or kwargs:
            return self.labels(*args, **kwargs).value
        return self._default_child().value

    def series(self):
        with self._lock:
            return [
                {"labels": list(key), "value": child._value}
                for key, child in self._children.items()
            ]


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A point-in-time value; goes up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def add(self, amount: float) -> None:
        self._default_child().add(amount)

    def value(self, *args, **kwargs) -> float:
        if args or kwargs:
            return self.labels(*args, **kwargs).value
        return self._default_child().value

    def series(self):
        with self._lock:
            return [
                {"labels": list(key), "value": child._value}
                for key, child in self._children.items()
            ]


class _HistogramChild:
    __slots__ = ("_lock", "_uppers", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, uppers: tuple[float, ...]) -> None:
        self._lock = lock
        self._uppers = uppers  # finite bounds; the +Inf bucket is implicit
        self.counts = [0] * (len(uppers) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # First bound >= value; beyond the last finite bound -> +Inf.
        index = bisect_left(self._uppers, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Exact readout from the bucket counts (linear within a bucket).

        Resolution is the containing bucket's width; with the default
        log-spaced bounds that is a <=1.78x band around the true value.
        The +Inf bucket clamps to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ServiceError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            target = q * total
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    if index >= len(self._uppers):
                        return self._uppers[-1]
                    lo = self._uppers[index - 1] if index else 0.0
                    hi = self._uppers[index]
                    fraction = (target - cumulative) / bucket_count
                    return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
                cumulative += bucket_count
            return self._uppers[-1]


class Histogram(_Instrument):
    """Fixed log-spaced buckets with quantile readout."""

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=None) -> None:
        super().__init__(name, help, labelnames)
        uppers = tuple(sorted(buckets)) if buckets else default_latency_buckets()
        if not uppers:
            raise ServiceError("histogram needs at least one bucket bound")
        self.uppers = uppers

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.uppers)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        """Quantile over ALL children merged (one distribution)."""
        merged = self._merged()
        return merged.quantile(q)

    @property
    def count(self) -> int:
        return sum(child.count for child in self._children.values())

    def _merged(self) -> _HistogramChild:
        merged = _HistogramChild(threading.Lock(), self.uppers)
        with self._lock:
            for child in self._children.values():
                merged.counts = [
                    a + b for a, b in zip(merged.counts, child.counts)
                ]
                merged.sum += child.sum
                merged.count += child.count
        return merged

    def series(self):
        with self._lock:
            return [
                {
                    "labels": list(key),
                    "buckets": list(child.counts),
                    "sum": child.sum,
                    "count": child.count,
                }
                for key, child in self._children.items()
            ]


class MetricsRegistry:
    """Process-wide, named, typed instruments + render/snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collect_hooks: list = []

    # ------------------------------------------------------------------
    # Instrument registration (get-or-create; shape conflicts are bugs)
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ServiceError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def add_collect_hook(self, hook) -> None:
        """``hook()`` runs just before every render/snapshot — the place
        to refresh gauges (queue depth, resident bytes, breaker state)."""
        self._collect_hooks.append(hook)

    def _collect(self) -> None:
        for hook in self._collect_hooks:
            hook()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able dump of every instrument (the wire/merge format)."""
        self._collect()
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict = {}
        for instrument in instruments:
            entry = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": instrument.series(),
            }
            if instrument.kind == "histogram":
                entry["uppers"] = list(instrument.uppers)
            out[instrument.name] = entry
        return out

    def render(self, extra_snapshots: dict | None = None) -> str:
        """Prometheus text exposition (format 0.0.4).

        ``extra_snapshots`` maps a name prefix to a snapshot dict (e.g.
        ``{"worker": merged_worker_snapshot}``) appended with that
        prefix — how the front end exposes folded worker metrics
        without name collisions.
        """
        return render_snapshot(self.snapshot()) + "".join(
            render_snapshot(snap, prefix=prefix)
            for prefix, snap in (extra_snapshots or {}).items()
        )


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_snapshot(snapshot: dict, prefix: str = "") -> str:
    """Render one :meth:`MetricsRegistry.snapshot` dict to Prometheus text."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        full = f"{prefix}_{name}" if prefix else name
        kind = entry.get("kind", "untyped")
        labelnames = entry.get("labelnames", [])
        if entry.get("help"):
            lines.append(f"# HELP {full} {entry['help']}")
        lines.append(f"# TYPE {full} {kind}")
        for series in entry.get("series", []):
            labelvalues = series.get("labels", [])
            if kind == "histogram":
                uppers = list(entry["uppers"]) + [float("inf")]
                cumulative = 0
                for upper, count in zip(uppers, series["buckets"]):
                    cumulative += count
                    le = _labels_text(
                        labelnames, labelvalues,
                        extra=(("le", _format_value(upper)),),
                    )
                    lines.append(f"{full}_bucket{le} {cumulative}")
                base = _labels_text(labelnames, labelvalues)
                lines.append(f"{full}_sum{base} {_format_value(series['sum'])}")
                lines.append(f"{full}_count{base} {series['count']}")
            else:
                base = _labels_text(labelnames, labelvalues)
                lines.append(f"{full}{base} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def merge_snapshots(snapshots) -> dict:
    """Sum a sequence of snapshot dicts series-wise (buckets elementwise)."""
    merged: dict = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    **entry,
                    "series": [dict(s) for s in entry.get("series", [])],
                }
                continue
            index = {
                tuple(s.get("labels", [])): s for s in target["series"]
            }
            for series in entry.get("series", []):
                key = tuple(series.get("labels", []))
                into = index.get(key)
                if into is None:
                    target["series"].append(dict(series))
                elif "buckets" in series:
                    into["buckets"] = [
                        a + b for a, b in zip(into["buckets"], series["buckets"])
                    ]
                    into["sum"] += series["sum"]
                    into["count"] += series["count"]
                else:
                    into["value"] += series["value"]
    return merged


def _snapshot_regressed(previous: dict, current: dict) -> bool:
    """True when any monotonic series went backwards (a process restart)."""
    for name, entry in previous.items():
        if entry.get("kind") not in ("counter", "histogram"):
            continue
        now = current.get(name)
        if now is None:
            return True
        index = {
            tuple(s.get("labels", [])): s for s in now.get("series", [])
        }
        for series in entry.get("series", []):
            other = index.get(tuple(series.get("labels", [])))
            if other is None:
                return True
            before = series.get("count", series.get("value", 0))
            after = other.get("count", other.get("value", 0))
            if after < before:
                return True
    return False


class RemoteMetrics:
    """Fold per-worker metric snapshots; monotonic across respawns.

    Each worker slot reports its live registry snapshot (counters reset
    at process birth).  ``update()`` stores the latest; ``retire()`` —
    called when the supervisor reaps a dead worker — folds the final
    observed values into a committed base so the merged totals never go
    backwards when the respawned process starts again from zero.  A
    counter regression inside ``update()`` (a restart the supervisor
    has not told us about yet) triggers the same fold defensively.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._base: list[dict] = []
        self._live: dict[object, dict] = {}

    def update(self, slot, snapshot: dict) -> None:
        with self._lock:
            previous = self._live.get(slot)
            if previous is not None and _snapshot_regressed(previous, snapshot):
                self._base.append(previous)
            self._live[slot] = snapshot

    def retire(self, slot) -> None:
        with self._lock:
            previous = self._live.pop(slot, None)
            if previous is not None:
                self._base.append(previous)

    def merged(self) -> dict:
        with self._lock:
            parts = list(self._base) + list(self._live.values())
        return merge_snapshots(parts)


class StageTimings:
    """Ordered named spans for one request/job timeline.

    Not thread-safe by design: one timeline belongs to one request (or
    one job), and its stages run sequentially on whichever thread holds
    it at the time.
    """

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    def span(self, name: str):
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def merge(self, stages: dict, prefix: str = "") -> None:
        """Fold another timeline in (e.g. worker-side spans, prefixed)."""
        for name, seconds in stages.items():
            if isinstance(seconds, (int, float)):
                self.add(f"{prefix}{name}", float(seconds))

    def to_dict(self) -> dict[str, float]:
        return dict(self.stages)

    def server_timing(self) -> str:
        """The ``Server-Timing`` header value (durations in ms)."""
        return ", ".join(
            f"{name};dur={seconds * 1e3:.2f}"
            for name, seconds in self.stages.items()
        )


class _Span:
    __slots__ = ("_timings", "_name", "_start")

    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timings.add(self._name, time.perf_counter() - self._start)


#: Sentinel closing the request-log writer thread.
_CLOSE = object()


class RequestLog:
    """One JSON line per request/job; bounded, never blocks the caller.

    ``emit()`` enqueues the record and returns — serialization and the
    sink write happen on a dedicated writer thread.  When the queue is
    full (sink slow or dead) the record is **dropped and counted**
    rather than applying backpressure to the hot path; sink write
    errors are likewise counted and swallowed.  The
    ``telemetry.log_write`` fault site injects both failure modes.
    """

    def __init__(
        self,
        sink=None,
        *,
        capacity: int = 1024,
        metrics: MetricsRegistry | None = None,
        faults=None,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"log capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self._faults = faults
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._thread: threading.Thread | None = None
        self._thread_lock = threading.Lock()
        self._owns_sink = False
        if sink is None or sink == "stderr":
            self._sink = sys.stderr
        elif isinstance(sink, (str, os.PathLike)):
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
        metrics = metrics or MetricsRegistry()
        self.lines = metrics.counter(
            "telemetry_log_lines_total", "Structured log lines written"
        )
        self.dropped = metrics.counter(
            "telemetry_log_dropped_total",
            "Log lines dropped because the bounded writer queue was full",
        )
        self.write_errors = metrics.counter(
            "telemetry_log_write_errors_total",
            "Log sink write failures (line lost, request unaffected)",
        )

    def emit(self, record: dict) -> None:
        """Enqueue one record; never blocks, drops + counts when full."""
        if not self.enabled:
            return
        if self._thread is None:
            self._ensure_thread()
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped.inc()

    def _ensure_thread(self) -> None:
        with self._thread_lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain, name="repro-telemetry-log", daemon=True
                )
                self._thread.start()

    def _drain(self) -> None:
        while True:
            record = self._queue.get()
            if record is _CLOSE:
                return
            try:
                if self._faults is not None:
                    self._faults.check("telemetry.log_write")
                self._sink.write(
                    json.dumps(record, separators=(",", ":"), sort_keys=True)
                    + "\n"
                )
                self._sink.flush()
                self.lines.inc()
            except Exception:
                # A dead sink must never take the service with it.
                self.write_errors.inc()

    def close(self, timeout: float = 2.0) -> None:
        thread = self._thread
        if thread is not None:
            try:
                self._queue.put_nowait(_CLOSE)
            except queue.Full:
                pass  # writer is wedged; the daemon thread dies with us
            thread.join(timeout=timeout)
            self._thread = None
        if self._owns_sink:
            try:
                self._sink.close()
            except OSError:
                pass


class Telemetry:
    """The service's telemetry plane: registry + request log + workers.

    One instance per process (front end or worker).  ``enabled=False``
    turns the per-request work (spans, log lines, latency observations)
    into cheap no-ops while keeping the component counters alive, so
    ``/stats`` stays truthful either way — the overhead bench compares
    the two modes.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        log_sink=None,
        log_capacity: int = 1024,
        faults=None,
        proc: str = "frontend",
    ) -> None:
        self.enabled = enabled
        self.proc = proc
        self.metrics = MetricsRegistry()
        self.log = RequestLog(
            log_sink,
            capacity=log_capacity,
            metrics=self.metrics,
            faults=faults,
            enabled=enabled,
        )
        self.workers = RemoteMetrics()
        self.http_latency = self.metrics.histogram(
            "http_request_seconds",
            "End-to-end HTTP request latency",
            labelnames=("method", "route", "status"),
        )
        self.stage_latency = self.metrics.histogram(
            "stage_seconds",
            "Per-stage span durations across requests and jobs",
            labelnames=("stage",),
        )
        self.queue_wait = self.metrics.histogram(
            "job_queue_wait_seconds", "Time jobs spent queued before running"
        )

    def timings(self) -> StageTimings:
        return StageTimings()

    def observe_stages(self, timings: StageTimings) -> None:
        """Feed a finished timeline's spans into the stage histogram."""
        if not self.enabled:
            return
        for name, seconds in timings.stages.items():
            self.stage_latency.labels(name).observe(seconds)

    def emit(self, kind: str, **fields) -> None:
        """One structured log line (adds kind/proc/ts envelope fields)."""
        if not self.enabled:
            return
        record = {"kind": kind, "proc": self.proc, "ts": round(time.time(), 6)}
        record.update(fields)
        self.log.emit(record)

    def summary(self) -> dict:
        """The ``/stats`` → ``metrics`` section: headline latencies + log."""
        http = self.http_latency
        return {
            "enabled": self.enabled,
            "request_latency": {
                "count": http.count,
                "p50_s": http.quantile(0.50),
                "p95_s": http.quantile(0.95),
                "p99_s": http.quantile(0.99),
            },
            "log": {
                "lines": self.log.lines.value(),
                "dropped": self.log.dropped.value(),
                "write_errors": self.log.write_errors.value(),
            },
        }

    def render(self) -> str:
        """Prometheus exposition: local registry + folded worker metrics."""
        merged = self.workers.merged()
        extra = {"worker": merged} if merged else None
        return self.metrics.render(extra_snapshots=extra)

    def close(self) -> None:
        self.log.close()

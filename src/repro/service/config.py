"""Service configuration: one dataclass, CLI- and test-friendly defaults.

Every tunable of the serving layer lives here so the `repro-ajd serve`
subcommand, the test harness, and embedded users construct the same
object.  All sizes are in bytes (the CLI converts from MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServiceError

#: Default TCP port of ``repro-ajd serve`` (0 = pick an ephemeral port).
DEFAULT_PORT = 8765


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service instance.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` asks the OS for an ephemeral port
        (read it back from ``Service.port`` after ``start()``).
    workers:
        Job-worker threads.  Each worker runs one job at a time; mining
        jobs may additionally request fork-pool split scoring via their
        ``workers`` param, which runs *inside* the job worker.
    memory_budget_bytes:
        Resident-dataset budget for the registry's LRU eviction, or
        ``None`` for unbounded.  Evicted datasets keep their metadata and
        are re-ingested from their source on next use.
    max_queue:
        Backpressure bound: jobs queued (not yet running) beyond this
        are rejected with :class:`~repro.errors.QueueFullError`
        (HTTP 503).
    cache_entries:
        In-memory result-cache capacity (LRU).
    spill_dir:
        Directory for the result cache's on-disk spill and for inline
        CSV uploads; ``None`` disables both (cache is memory-only and
        inline datasets cannot be re-ingested after eviction).
    default_deadline_s:
        Deadline applied to jobs that do not set one; ``None`` means
        jobs without a deadline run unbounded.
    fault_plan:
        Chaos harness: a :class:`~repro.service.faults.FaultPlan` spec
        (dict), inline JSON, or a path to a JSON file.  ``None`` (the
        default) falls back to the ``REPRO_FAULT_PLAN`` environment
        variable, and if that is unset too the shared disabled plan is
        used — zero injection, (near-)zero overhead.
    breaker_failures / breaker_cooldown_s:
        Per-operation circuit breaker: after ``breaker_failures``
        consecutive infrastructure failures, fresh submissions of that
        operation fast-fail (HTTP 503 + ``Retry-After``) for
        ``breaker_cooldown_s`` seconds.
    health_incident_ttl_s:
        How long after an incident (worker crash, spill quarantine,
        dataset degradation) ``/healthz`` keeps reporting ``degraded``
        even once the underlying state has healed.
    snapshots:
        Write persistent columnar snapshots beside the spill CSVs and
        prefer them for eviction reloads and warm restarts (zero-parse
        mmap instead of CSV re-ingest).  Requires ``spill_dir``; with no
        spill dir the flag is inert.
    max_batch_ops:
        Upper bound on the number of operations one ``POST /jobs/batch``
        submission may carry.
    worker_procs:
        Multi-process scale-out: ``0`` (the default) computes in-process
        — bit-identical to the pre-cluster service — while ``N >= 1``
        starts N worker subprocesses, each owning a consistent-hash
        shard of the datasets, with jobs dispatched over the
        :mod:`repro.service.dispatch` socket protocol.  See
        :mod:`repro.service.cluster`.
    worker_inflight:
        Per-worker-process in-flight dispatch limit: a job bound for a
        worker already running this many requests blocks its submitting
        queue thread until the worker drains.
    worker_max_resident:
        How many hydrated datasets one worker process keeps resident
        (LRU); beyond it the oldest is dropped and re-hydrates from its
        snapshot on next use.
    revalidate_tolerance:
        Delta-ingest cache revalidation: after an append, each cached
        mined jointree is re-scored (fixed tree, no search) on the
        appended relation and **kept** — re-keyed under the new content
        fingerprint — when both ``|ΔJ|`` and ``|Δρ|`` moved by at most
        this much; otherwise the entry is dropped so the next request
        re-mines.  ``0.0`` keeps only bit-stable results.
    telemetry:
        Per-request telemetry (latency histograms, stage spans,
        structured request/job log lines).  Component counters stay
        registry-backed either way, so ``/stats`` and ``/v1/metrics``
        remain truthful with telemetry off; disabling only removes the
        per-request work (the overhead bench compares the two modes).
    request_log_path:
        Sink for the structured JSON request log; ``None`` writes to
        stderr.  Lines flow through a bounded non-blocking writer —
        a slow or dead sink drops lines (counted) instead of stalling
        requests.
    request_log_capacity:
        Bound on the request-log writer queue; beyond it lines are
        dropped and counted (``telemetry_log_dropped_total``).
    stats_cache_ttl_s:
        How long one assembled registry-stats snapshot is reused by
        ``GET /stats`` before being rebuilt.  Monitoring pollers within
        the TTL read the cached document without touching the registry
        lock.  Even at the default ``0`` (rebuild every call) a scrape
        never *waits* on the registry lock: when a mine or append holds
        it, the previous document is served stale instead of queueing
        behind the serving path.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    memory_budget_bytes: int | None = 256 * 1024 * 1024
    max_queue: int = 64
    cache_entries: int = 1024
    spill_dir: str | Path | None = None
    default_deadline_s: float | None = None
    fault_plan: dict | str | None = None
    breaker_failures: int = 5
    breaker_cooldown_s: float = 5.0
    health_incident_ttl_s: float = 60.0
    snapshots: bool = True
    max_batch_ops: int = 64
    worker_procs: int = 0
    worker_inflight: int = 8
    worker_max_resident: int = 16
    revalidate_tolerance: float = 0.05
    telemetry: bool = True
    request_log_path: str | Path | None = None
    request_log_capacity: int = 1024
    stats_cache_ttl_s: float = 0.0

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ServiceError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.cache_entries < 1:
            raise ServiceError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if (
            self.memory_budget_bytes is not None
            and self.memory_budget_bytes < 1
        ):
            raise ServiceError(
                "memory_budget_bytes must be positive or None, got "
                f"{self.memory_budget_bytes}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServiceError(
                "default_deadline_s must be positive or None, got "
                f"{self.default_deadline_s}"
            )
        if self.breaker_failures < 1:
            raise ServiceError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ServiceError(
                f"breaker_cooldown_s must be positive, got {self.breaker_cooldown_s}"
            )
        if self.health_incident_ttl_s < 0:
            raise ServiceError(
                "health_incident_ttl_s must be >= 0, got "
                f"{self.health_incident_ttl_s}"
            )
        if self.max_batch_ops < 1:
            raise ServiceError(
                f"max_batch_ops must be >= 1, got {self.max_batch_ops}"
            )
        if self.worker_procs < 0:
            raise ServiceError(
                f"worker_procs must be >= 0, got {self.worker_procs}"
            )
        if self.worker_inflight < 1:
            raise ServiceError(
                f"worker_inflight must be >= 1, got {self.worker_inflight}"
            )
        if self.worker_max_resident < 1:
            raise ServiceError(
                "worker_max_resident must be >= 1, got "
                f"{self.worker_max_resident}"
            )
        if (
            isinstance(self.revalidate_tolerance, bool)
            or not isinstance(self.revalidate_tolerance, (int, float))
            or self.revalidate_tolerance < 0
        ):
            raise ServiceError(
                "revalidate_tolerance must be a number >= 0, got "
                f"{self.revalidate_tolerance!r}"
            )
        if self.request_log_capacity < 1:
            raise ServiceError(
                "request_log_capacity must be >= 1, got "
                f"{self.request_log_capacity}"
            )
        if self.stats_cache_ttl_s < 0:
            raise ServiceError(
                f"stats_cache_ttl_s must be >= 0, got {self.stats_cache_ttl_s}"
            )

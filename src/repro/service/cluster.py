"""Multi-process sharded workers: the front-end/worker split.

``repro-ajd serve --worker-procs N`` keeps everything client-facing in
the front-end process — HTTP, job admission (cache hits, coalescing,
idempotency, breakers, backpressure), the shared
:class:`~repro.service.cache.ResultCache` — and moves the CPU-bound
mine/analyze/decompose compute into ``N`` worker subprocesses, sidestepping
the GIL that caps the threaded pool at one core.

Placement
    Every dataset is owned by exactly one worker, chosen by
    **consistent hashing** on ``Relation.fingerprint()``
    (:class:`ShardMap`: a hash ring of ``vnodes`` blake2b points per
    worker slot — deterministic across processes and
    ``PYTHONHASHSEED``, balanced to a few percent for realistic
    dataset counts, and minimally disruptive: excluding one worker
    moves only that worker's keys).  Owning a dataset concentrates its
    hydration cost and its entropy-engine memo in one process.

Data movement
    Relations are **never pickled**.  The dispatcher ships hydration
    *references* (snapshot directory, CSV source path) and each worker
    rebuilds the dataset locally through
    :func:`repro.relations.persist.hydrate_relation` — the PR 7
    zero-parse snapshot path, memo sidecar included.  Workers return
    the report plus an **entropy-memo delta**: the H() values this job
    added to the worker's resident engine.  The front end folds each
    delta into the shared on-disk memo sidecar
    (:func:`repro.relations.persist.merge_engine_memo`), so a dataset
    rehomed after a worker death — or a whole restarted server —
    hydrates warm.

Supervision
    The PR 6 worker-thread supervision pattern, promoted to process
    level: a monitor thread heartbeats every worker
    (:meth:`~repro.service.dispatch.WorkerHandle.ping`), detects death
    by socket EOF, process exit, or missed pongs, fails the in-flight
    jobs with ``reason: "worker_crashed"``, and respawns a replacement
    into the **same shard slot** — the shard map never changes, so only
    the dead worker's datasets are touched, and they come back from
    their snapshots + folded memos.  The ``cluster.worker_exit`` fault
    site kills a worker process mid-job on demand;
    ``cluster.dispatch`` injects front-end send failures.

``--worker-procs 0`` (the default) never imports a socket: the job
queue computes in-process exactly as before, so single-core deployments
and CI are bit-identical to the pre-cluster service.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import itertools
import json
import os
import queue
import secrets
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from pathlib import Path

from repro.errors import (
    DatasetDegradedError,
    InjectedFaultError,
    ReproError,
    ServiceError,
    SnapshotError,
)
from repro.service.dispatch import (
    DispatchError,
    WorkerCrashedError,
    WorkerHandle,
    recv_frame,
    send_frame,
)
from repro.service.faults import DISABLED, FaultPlan, WorkerCrashInjection
from repro.service.telemetry import MetricsRegistry, StageTimings, Telemetry

#: Environment variables carrying spawn-time secrets/config to workers
#: (argv is visible in ``ps``; the token must not be).
TOKEN_ENV = "REPRO_CLUSTER_TOKEN"
FAULTS_ENV = "REPRO_CLUSTER_FAULTS"

#: Fault sites a worker process arms from the shipped plan spec.  The
#: rest fire in the front end (http.*, cache.*, registry.*, jobs.slow,
#: jobs.worker_crash) — arming them twice would double-fire.  Notably
#: ``cluster.worker_exit`` is NOT shipped: its ``times`` counter must
#: survive respawns (a fresh worker re-arming the spec would reset it),
#: so the front-end plan fires it and the directive rides the request.
WORKER_SITES = ("jobs.oom",)

#: Grace added to a job's remaining deadline before the dispatcher
#: declares a worker unresponsive for that request.
DISPATCH_GRACE_S = 30.0

#: Cap on memo-delta entries shipped per response (a single mine memoizes
#: at most a few thousand subsets; the cap bounds a pathological frame).
MEMO_DELTA_CAP = 8192

#: Pseudo-operation dispatched for delta ingest.  Not a member of
#: :data:`repro.service.operations.OPERATIONS`: it mutates the dataset
#: instead of computing a report, so it bypasses params
#: canonicalization, the result cache, and report validation.
APPEND_OP = "__append__"


# ----------------------------------------------------------------------
# Consistent-hash shard placement
# ----------------------------------------------------------------------
def _ring_point(label: str) -> int:
    """A 64-bit ring position from a stable keyed hash (never ``hash()``,
    which varies with ``PYTHONHASHSEED`` and would re-shard every boot)."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Consistent hashing of fingerprints onto worker slots.

    Each of the ``worker_procs`` slots contributes ``vnodes`` virtual
    points to a 64-bit hash ring; a fingerprint is owned by the first
    point clockwise from its own hash.  Properties the cluster (and
    ``tests/test_cluster.py``) rely on:

    * **deterministic** — pure blake2b, identical in every process;
    * **balanced** — with 128 vnodes the per-worker share deviates by
      ~±10% for 100+ keys;
    * **minimally disruptive** — ``owner(fp, exclude={k})`` only moves
      keys whose owner was ``k``; every other key keeps its worker, so
      a crash-and-respawn cycle touches exactly one shard.
    """

    def __init__(self, worker_procs: int, *, vnodes: int = 128) -> None:
        if worker_procs < 1:
            raise ServiceError(
                f"a shard map needs at least one worker, got {worker_procs}"
            )
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.worker_procs = worker_procs
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for worker_id in range(worker_procs):
            for v in range(vnodes):
                points.append((_ring_point(f"worker-{worker_id}:{v}"), worker_id))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def owner(self, fingerprint: str, *, exclude: frozenset | set = frozenset()) -> int:
        """The worker slot owning ``fingerprint``.

        ``exclude`` skips dead slots by walking clockwise to the next
        live point — the classic consistent-hashing failover that only
        rehomes the excluded workers' keys.
        """
        position = bisect.bisect_right(
            self._hashes, _ring_point(f"key:{fingerprint}")
        )
        n = len(self._points)
        for step in range(n):
            _, worker_id = self._points[(position + step) % n]
            if worker_id not in exclude:
                return worker_id
        raise ServiceError("every worker slot is excluded; no owner exists")

    def assignments(
        self, fingerprints, *, exclude: frozenset | set = frozenset()
    ) -> dict[int, list[str]]:
        """``worker_id → sorted fingerprints`` over all live slots."""
        out: dict[int, list[str]] = {
            worker_id: []
            for worker_id in range(self.worker_procs)
            if worker_id not in exclude
        }
        for fingerprint in fingerprints:
            out[self.owner(fingerprint, exclude=exclude)].append(fingerprint)
        for bucket in out.values():
            bucket.sort()
        return out


# ----------------------------------------------------------------------
# Front end: the supervisor/dispatcher
# ----------------------------------------------------------------------
class ClusterSupervisor:
    """Spawns, heartbeats, respawns, and routes to N worker processes.

    This is the :class:`~repro.service.jobs.JobQueue`'s pluggable
    executor: :meth:`execute` replaces the in-process
    ``registry.relation() + run_operation()`` pair, routing the job to
    its shard's worker over the :mod:`repro.service.dispatch` protocol
    and folding the returned memo delta into the shared sidecar tier.
    """

    def __init__(
        self,
        *,
        worker_procs: int,
        registry,
        faults: FaultPlan | None = None,
        max_inflight: int = 8,
        max_resident: int = 16,
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = 15.0,
        spawn_timeout_s: float = 60.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if worker_procs < 1:
            raise ServiceError(
                f"worker_procs must be >= 1 for a cluster, got {worker_procs}"
            )
        if max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._registry = registry
        self._faults = faults if faults is not None else DISABLED
        self._shards = ShardMap(worker_procs)
        self._max_inflight = max_inflight
        self._max_resident = max_resident
        self._heartbeat_interval_s = heartbeat_interval_s
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._spawn_timeout_s = spawn_timeout_s
        self._token = secrets.token_hex(16)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._handles: dict[int, WorkerHandle | None] = {
            worker_id: None for worker_id in range(worker_procs)
        }
        self._procs: dict[int, subprocess.Popen] = {}
        self._reaped: set[int] = set()  # ids of WorkerHandle objects already accounted
        # Counters live on the shared metrics registry (a private one
        # when constructed standalone); read-only properties preserve
        # the original attribute names for /stats, health, and tests.
        self._telemetry = telemetry
        metrics = telemetry.metrics if telemetry is not None else MetricsRegistry()
        self._c_dispatched = metrics.counter(
            "cluster_dispatched_total", "Jobs dispatched to worker processes"
        )
        self._c_dispatch_failures = metrics.counter(
            "cluster_dispatch_failures_total",
            "Dispatches failed: transport error, crash, malformed reply",
        )
        self._c_worker_crashes = metrics.counter(
            "cluster_worker_crashes_total", "Worker processes reaped after dying"
        )
        self._c_worker_respawns = metrics.counter(
            "cluster_worker_respawns_total",
            "Replacement worker processes spawned into a shard slot",
        )
        self._c_memo_deltas = metrics.counter(
            "cluster_memo_deltas_folded_total",
            "Entropy-memo deltas folded into snapshot sidecars",
        )
        self._c_memo_entries = metrics.counter(
            "cluster_memo_entries_folded_total",
            "Entropy-memo entries added by folded deltas",
        )
        self._c_hydrations = metrics.counter(
            "cluster_hydrations_total",
            "Worker dataset materializations by origin",
            labelnames=("origin",),
        )
        for origin in ("snapshot", "csv", "resident"):
            self._c_hydrations.labels(origin)  # pre-touch: /stats shows zeros

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(worker_procs + 4)
        self._port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        self._accept_thread.start()
        try:
            for worker_id in range(worker_procs):
                self._spawn(worker_id)
            self._await_all_alive()
        except BaseException:
            self.shutdown()
            raise
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    @property
    def worker_procs(self) -> int:
        return self._shards.worker_procs

    @property
    def dispatched(self) -> int:
        return int(self._c_dispatched.value())

    @property
    def dispatch_failures(self) -> int:
        return int(self._c_dispatch_failures.value())

    @property
    def worker_crashes(self) -> int:
        return int(self._c_worker_crashes.value())

    @property
    def worker_respawns(self) -> int:
        return int(self._c_worker_respawns.value())

    @property
    def memo_deltas_folded(self) -> int:
        return int(self._c_memo_deltas.value())

    @property
    def memo_entries_folded(self) -> int:
        return int(self._c_memo_entries.value())

    @property
    def hydrations(self) -> dict:
        return {
            series["labels"][0]: int(series["value"])
            for series in self._c_hydrations.series()
        }

    def slot_for(self, fingerprint: str) -> int:
        """The shard slot owning ``fingerprint`` (observability hook)."""
        return self._shards.owner(fingerprint)

    # ------------------------------------------------------------------
    # Spawning + handshakes
    # ------------------------------------------------------------------
    def _child_env(self) -> dict:
        env = dict(os.environ)
        # The worker must import this very package regardless of how the
        # front end was launched (installed, PYTHONPATH, pytest).
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        env[TOKEN_ENV] = self._token
        if self._faults.enabled:
            env[FAULTS_ENV] = json.dumps(self._faults.to_spec())
        else:
            env.pop(FAULTS_ENV, None)
        # A worker is itself a service child: it must never re-arm the
        # front end's plan through the generic env hook.
        env.pop("REPRO_FAULT_PLAN", None)
        return env

    def _spawn(self, worker_id: int) -> None:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.cluster",
                "--connect", f"127.0.0.1:{self._port}",
                "--worker-id", str(worker_id),
                "--max-resident", str(self._max_resident),
            ],
            env=self._child_env(),
            stdin=subprocess.DEVNULL,
        )
        with self._lock:
            self._procs[worker_id] = process

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            try:
                conn.settimeout(10.0)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                hello = recv_frame(conn)
                if (
                    hello is None
                    or hello.get("t") != "hello"
                    or not secrets.compare_digest(
                        str(hello.get("token", "")), self._token
                    )
                ):
                    conn.close()
                    continue
                worker_id = hello.get("worker_id")
                if worker_id not in self._handles:
                    conn.close()
                    continue
                conn.settimeout(None)
            except (DispatchError, OSError):
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            with self._lock:
                process = self._procs.get(worker_id)
                if process is None or self._closed:
                    conn.close()
                    continue
            handle = WorkerHandle(
                worker_id,
                conn,
                process,
                max_inflight=self._max_inflight,
                request_ids=self._ids,
            )
            with self._cond:
                self._handles[worker_id] = handle
                self._cond.notify_all()

    def _await_all_alive(self) -> None:
        deadline = time.monotonic() + self._spawn_timeout_s
        with self._cond:
            while True:
                missing = [
                    worker_id
                    for worker_id, handle in self._handles.items()
                    if handle is None or not handle.alive
                ]
                if not missing:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"worker process(es) {missing} never connected within "
                        f"{self._spawn_timeout_s:g}s"
                    )
                self._cond.wait(min(remaining, 0.25))

    def _live_handle(self, worker_id: int) -> WorkerHandle:
        """The live handle for a shard slot, waiting out a respawn."""
        deadline = time.monotonic() + self._spawn_timeout_s
        with self._cond:
            while True:
                if self._closed:
                    raise ServiceError("cluster is shut down")
                handle = self._handles.get(worker_id)
                if handle is not None and handle.alive:
                    return handle
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DispatchError(
                        f"shard {worker_id} has no live worker (respawn did "
                        f"not complete within {self._spawn_timeout_s:g}s)"
                    )
                self._cond.wait(min(remaining, 0.25))

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                snapshot = dict(self._handles)
            for worker_id, handle in snapshot.items():
                if handle is None:
                    continue
                if handle.alive and handle.process.poll() is not None:
                    handle.mark_dead(
                        f"process exited with status {handle.process.returncode}"
                    )
                if (
                    handle.alive
                    and handle.heartbeat_age_s() > self._heartbeat_timeout_s
                ):
                    try:
                        handle.process.kill()
                    except OSError:
                        pass
                    handle.mark_dead(
                        f"missed heartbeats for {self._heartbeat_timeout_s:g}s"
                    )
                if handle.alive:
                    handle.ping()
                    tele = self._telemetry
                    snapshot = handle.worker_metrics  # ridden in on pongs
                    if tele is not None and isinstance(snapshot, dict):
                        tele.workers.update(worker_id, snapshot)
                else:
                    self._reap_and_respawn(worker_id, handle)
            time.sleep(self._heartbeat_interval_s)

    def _reap_and_respawn(self, worker_id: int, handle: WorkerHandle) -> None:
        """Account one dead worker and put a replacement in its slot."""
        with self._lock:
            if id(handle) in self._reaped:
                return
            self._reaped.add(id(handle))
            closed = self._closed
        if not closed:
            self._c_worker_crashes.inc()
        # Fold the dead worker's final metric snapshot into the
        # committed base before its slot restarts from zero — merged
        # totals stay monotonic across the respawn.
        tele = self._telemetry
        if tele is not None:
            snapshot = getattr(handle, "worker_metrics", None)
            if isinstance(snapshot, dict):
                tele.workers.update(worker_id, snapshot)
            tele.workers.retire(worker_id)
        try:
            handle.process.kill()
        except OSError:
            pass
        try:
            handle.process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            pass
        if closed:
            return
        self._spawn(worker_id)
        self._c_worker_respawns.inc()

    # ------------------------------------------------------------------
    # Execution (the JobQueue's executor hook)
    # ------------------------------------------------------------------
    def execute(
        self,
        fingerprint: str,
        operation: str,
        params: dict,
        *,
        deadline_at: float | None = None,
        workers: int | None = None,
        trace: str | None = None,
        timings: StageTimings | None = None,
    ) -> dict:
        """Run one operation on the shard's owning worker; return the report.

        Raises the same typed errors the in-process path does —
        :class:`~repro.errors.DatasetDegradedError` for hydrate
        failures, :class:`~repro.errors.ReproError` for client errors —
        plus :class:`~repro.service.dispatch.WorkerCrashedError` when
        the owning process dies mid-job (surfaced as ``reason:
        "worker_crashed"``) and
        :class:`~repro.service.dispatch.DispatchError` for front-end
        transport failures (the ``cluster.dispatch`` fault site).
        """
        with self._lock:
            if self._closed:
                raise ServiceError("cluster is shut down")
        self._c_dispatched.inc()
        try:
            self._faults.check("cluster.dispatch")
        except InjectedFaultError as exc:
            self._c_dispatch_failures.inc()
            raise DispatchError(str(exc)) from exc
        inject_exit = False
        try:
            self._faults.check("cluster.worker_exit")
        except WorkerCrashInjection:
            # Fired here (not in the worker) so one plan counts crashes
            # cluster-wide: a respawned worker re-arming the spec would
            # reset a `times` budget.  The directive rides the request
            # and the worker dies abruptly upon reading it.
            inject_exit = True
        spec = self._registry.hydration_spec(fingerprint)
        worker_id = self._shards.owner(fingerprint)
        handle = self._live_handle(worker_id)
        timeout = None
        if deadline_at is not None:
            timeout = max(deadline_at - time.monotonic(), 0.0) + DISPATCH_GRACE_S
        body = {
            "fingerprint": fingerprint,
            "operation": operation,
            "params": params,
            "workers": workers,
            "deadline_in_s": (
                None
                if deadline_at is None
                else max(deadline_at - time.monotonic(), 0.0)
            ),
            "snapshot_dir": spec["snapshot_dir"],
            "source": spec["source"],
            "chunk_rows": spec["chunk_rows"],
        }
        if trace is not None:
            # Rides the req frame; old workers ignore unknown fields.
            body["trace"] = trace
        if inject_exit:
            body["inject"] = "worker_exit"
        try:
            response = handle.request(body, timeout=timeout)
        except (WorkerCrashedError, DispatchError):
            self._c_dispatch_failures.inc()
            raise
        self._fold_worker_telemetry(worker_id, response, timings)
        if response.get("ok"):
            report = response.get("report")
            if not isinstance(report, dict):
                self._c_dispatch_failures.inc()
                raise DispatchError(
                    f"worker {worker_id} returned a malformed report "
                    f"({type(report).__name__})"
                )
            origin = response.get("origin")
            if origin in ("snapshot", "csv", "resident"):
                self._c_hydrations.labels(origin).inc()
            self._fold_memo_delta(spec, response.get("memo_delta"))
            self._registry.note_remote_outcome(fingerprint, ok=True)
            return report
        message = str(response.get("error") or "worker reported failure")
        kind = response.get("error_kind")
        if kind == "degraded":
            self._registry.note_remote_outcome(
                fingerprint, ok=False, reason=message
            )
            raise DatasetDegradedError(message)
        if kind == "repro":
            raise ReproError(message)
        raise RuntimeError(f"worker {worker_id} failed the job: {message}")

    def append(
        self,
        fingerprint: str,
        rows: list,
        *,
        chain: dict,
        timeout: float | None = None,
    ) -> dict:
        """Delta ingest on the shard owner: extend, snapshot, return info.

        The append is routed to the worker that owns the *current*
        fingerprint (it likely holds the relation resident); the worker
        extends the relation through the same
        :meth:`~repro.relations.relation.Relation.extended_with` path
        the in-process registry uses, writes the new version's snapshot
        (chain in ``extra``) under the shared spill directory, and
        returns the append info for
        :meth:`~repro.service.registry.DatasetRegistry.adopt_appended`.
        The new fingerprint generally hashes to a *different* shard
        owner, which hydrates from that snapshot on first use — the
        snapshot write is therefore mandatory, not advisory, and its
        failure fails the append.
        """
        spill_dir = self._registry.spill_dir
        if spill_dir is None or not self._registry.snapshots_enabled:
            raise ServiceError(
                "cluster append requires snapshots and a spill directory"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("cluster is shut down")
        self._c_dispatched.inc()
        try:
            self._faults.check("cluster.dispatch")
        except InjectedFaultError as exc:
            self._c_dispatch_failures.inc()
            raise DispatchError(str(exc)) from exc
        spec = self._registry.hydration_spec(fingerprint)
        worker_id = self._shards.owner(fingerprint)
        handle = self._live_handle(worker_id)
        body = {
            "fingerprint": fingerprint,
            "operation": APPEND_OP,
            "append_rows": [list(row) for row in rows],
            "chain": chain,
            "spill_dir": str(spill_dir),
            "snapshot_dir": spec["snapshot_dir"],
            "source": spec["source"],
            "chunk_rows": spec["chunk_rows"],
        }
        try:
            response = handle.request(body, timeout=timeout)
        except (WorkerCrashedError, DispatchError):
            self._c_dispatch_failures.inc()
            raise
        self._fold_worker_telemetry(worker_id, response, None)
        if response.get("ok"):
            info = response.get("report")
            if not isinstance(info, dict) or "fingerprint" not in info:
                self._c_dispatch_failures.inc()
                raise DispatchError(
                    f"worker {worker_id} returned malformed append info "
                    f"({type(info).__name__})"
                )
            if info.get("changed"):
                # Fold any memos the worker reported into the *new*
                # version's sidecar (the old version's memos are stale:
                # every marginal changed with N).
                new_dir = Path(spill_dir) / f"snapshot-{info['fingerprint']}"
                self._fold_memo_delta(
                    {"snapshot_dir": str(new_dir)},
                    response.get("memo_delta"),
                )
            self._registry.note_remote_outcome(fingerprint, ok=True)
            return info
        message = str(response.get("error") or "worker reported failure")
        kind = response.get("error_kind")
        if kind == "degraded":
            self._registry.note_remote_outcome(
                fingerprint, ok=False, reason=message
            )
            raise DatasetDegradedError(message)
        if kind == "repro":
            raise ReproError(message)
        raise RuntimeError(f"worker {worker_id} failed the append: {message}")

    def _fold_worker_telemetry(
        self,
        worker_id: int,
        response: dict,
        timings: StageTimings | None,
    ) -> None:
        """Fold the telemetry riding a ``res`` frame (all best effort).

        Three payloads, each optional: the worker's metric snapshot
        (merged like an entropy-memo delta: latest per live slot, dead
        slots folded into a committed base), the worker-side stage
        timeline (merged into the job's timings under ``worker_``), and
        the worker's structured log record (forwarded to the front
        end's sink, so one log stream carries both halves of a trace).
        """
        tele = self._telemetry
        snapshot = response.get("metrics")
        if tele is not None and isinstance(snapshot, dict):
            tele.workers.update(worker_id, snapshot)
        payload = response.get("telemetry")
        if not isinstance(payload, dict):
            return
        stages = payload.get("stages")
        if timings is not None and isinstance(stages, dict):
            timings.merge(stages, prefix="worker_")
        record = payload.get("log")
        if tele is not None and tele.enabled and isinstance(record, dict):
            tele.log.emit(record)

    def _fold_memo_delta(self, spec: dict, delta) -> None:
        """Merge a worker's entropy-memo delta into the shared sidecar."""
        if not delta or not isinstance(delta, list) or not spec.get("snapshot_dir"):
            return
        entries: dict[tuple, float] = {}
        for item in delta[:MEMO_DELTA_CAP]:
            if (
                not isinstance(item, list)
                or len(item) != 2
                or not isinstance(item[0], list)
                or not all(isinstance(name, str) for name in item[0])
                or isinstance(item[1], bool)
                or not isinstance(item[1], (int, float))
            ):
                return  # a malformed delta is dropped whole, never folded
            entries[tuple(item[0])] = float(item[1])
        try:
            added = merge_engine_memo_lazy(spec["snapshot_dir"], entries)
        except (SnapshotError, OSError):
            return  # advisory state: folding is best effort
        self._c_memo_deltas.inc()
        if added:
            self._c_memo_entries.inc(added)

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready cluster summary (``/stats`` → ``cluster``)."""
        workers = []
        alive = 0
        with self._lock:
            handles = dict(self._handles)
        for worker_id in sorted(handles):
            handle = handles[worker_id]
            if handle is None:
                workers.append({"worker_id": worker_id, "alive": False})
            else:
                described = handle.describe()
                alive += bool(described["alive"])
                workers.append(described)
        shards = {
            str(worker_id): fingerprints
            for worker_id, fingerprints in self._shards.assignments(
                self._registry.fingerprints()
            ).items()
        }
        with self._lock:
            return {
                "worker_procs": self._shards.worker_procs,
                "alive": alive,
                "port": self._port,
                "dispatched": self.dispatched,
                "dispatch_failures": self.dispatch_failures,
                "worker_crashes": self.worker_crashes,
                "worker_respawns": self.worker_respawns,
                "memo_deltas_folded": self.memo_deltas_folded,
                "memo_entries_folded": self.memo_entries_folded,
                "hydrations": dict(self.hydrations),
                "max_inflight": self._max_inflight,
                "shards": shards,
                "workers": workers,
            }

    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1
                for handle in self._handles.values()
                if handle is not None and handle.alive
            )

    def shutdown(self) -> None:
        """Stop supervision, ask workers to exit, reap the processes."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            handles = [h for h in self._handles.values() if h is not None]
            procs = list(self._procs.values())
        for handle in handles:
            handle.send_bye()
        deadline = time.monotonic() + 5.0
        for process in procs:
            try:
                process.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except (OSError, subprocess.TimeoutExpired):
                try:
                    process.kill()
                    process.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        for handle in handles:
            handle.mark_dead("cluster shut down")


def merge_engine_memo_lazy(snapshot_dir: str, entries: dict) -> int:
    """Thin import indirection (keeps persist out of worker spawn cost)."""
    from repro.relations.persist import merge_engine_memo

    return merge_engine_memo(snapshot_dir, entries)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _WorkerRuntime:
    """One worker's local state: hydrated relations + memo-delta capture."""

    def __init__(
        self, *, max_resident: int, faults: FaultPlan, worker_id: int = 0
    ) -> None:
        self._max_resident = max(1, int(max_resident))
        self._faults = faults
        self._relations: OrderedDict[str, object] = OrderedDict()
        self.jobs_done = 0
        self.worker_id = worker_id
        # A private registry per worker process; its snapshot rides
        # every res frame and pong, and the front end folds it under
        # the ``worker_`` prefix of /v1/metrics.
        self.metrics = MetricsRegistry()
        self._c_jobs = self.metrics.counter(
            "jobs_total", "Jobs completed by this worker process"
        )
        self._c_hydrations = self.metrics.counter(
            "hydrations_total",
            "Dataset materializations by origin",
            labelnames=("origin",),
        )
        self._h_job = self.metrics.histogram(
            "job_seconds", "Per-job wall time inside the worker"
        )

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    def _job_telemetry(
        self, message: dict, timings: StageTimings, origin, elapsed_s: float
    ) -> dict:
        """The ``telemetry`` field of a successful res frame.

        Carries the request's trace id back with the worker-side stage
        timeline and a ready-to-forward log record, so the front end's
        log stream shows both halves of the trace.
        """
        trace = message.get("trace")
        record = {
            "kind": "job",
            "proc": f"w{self.worker_id}",
            "ts": round(time.time(), 6),
            "trace_id": trace,
            "fingerprint": message.get("fingerprint"),
            "operation": message.get("operation"),
            "origin": origin,
            "elapsed_s": round(elapsed_s, 6),
            "stages": dict(timings.stages),
        }
        return {"trace": trace, "stages": dict(timings.stages), "log": record}

    def resident(self) -> list[str]:
        return list(self._relations)

    def _relation_for(self, message: dict):
        """Local cache → snapshot → CSV; returns ``(relation, origin)``."""
        from repro.relations.persist import hydrate_relation

        fingerprint = message["fingerprint"]
        relation = self._relations.get(fingerprint)
        if relation is not None:
            self._relations.move_to_end(fingerprint)
            return relation, "resident"
        relation, origin = hydrate_relation(
            expected_fingerprint=fingerprint,
            snapshot_path=message.get("snapshot_dir"),
            source=message.get("source"),
            chunk_rows=message.get("chunk_rows"),
        )
        self._relations[fingerprint] = relation
        while len(self._relations) > self._max_resident:
            self._relations.popitem(last=False)
        return relation, origin

    def handle(self, message: dict) -> dict:
        """Run one dispatched operation; always returns a ``res`` frame."""
        from repro.factorize.report import validate_report
        from repro.info.engine import EntropyEngine
        from repro.service.operations import run_operation

        request_id = message.get("id")
        base = {"t": "res", "id": request_id}
        if message.get("operation") == APPEND_OP:
            return self._handle_append(message, base)
        timings = StageTimings()
        started = time.perf_counter()
        try:
            with timings.span("hydrate"):
                relation, origin = self._relation_for(message)
        except (SnapshotError, DatasetDegradedError) as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "degraded",
                "resident": self.resident(),
            }
        except ReproError as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "repro",
                "resident": self.resident(),
            }
        except Exception as exc:
            return {
                **base,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": "internal",
                "resident": self.resident(),
            }
        engine = EntropyEngine.for_relation(relation)
        baseline = set(engine.cache_snapshot())
        deadline_in_s = message.get("deadline_in_s")
        deadline_at = (
            time.monotonic() + float(deadline_in_s)
            if deadline_in_s is not None
            else None
        )
        try:
            report = run_operation(
                relation,
                message["operation"],
                message["params"],
                deadline_at=deadline_at,
                workers=message.get("workers"),
                faults=self._faults,
                timings=timings,
            )
            validate_report(report)
        except WorkerCrashInjection:
            raise  # the main loop turns this into an abrupt process exit
        except ReproError as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "repro",
                "resident": self.resident(),
            }
        except Exception as exc:
            return {
                **base,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": "internal",
                "resident": self.resident(),
            }
        delta = [
            [list(key), float(value)]
            for key, value in engine.cache_snapshot().items()
            if key not in baseline
        ][:MEMO_DELTA_CAP]
        self.jobs_done += 1
        elapsed = time.perf_counter() - started
        self._c_jobs.inc()
        if isinstance(origin, str):
            self._c_hydrations.labels(origin).inc()
        self._h_job.observe(elapsed)
        return {
            **base,
            "ok": True,
            "report": report,
            "origin": origin,
            "memo_delta": delta,
            "resident": self.resident(),
            "telemetry": self._job_telemetry(message, timings, origin, elapsed),
        }

    def _handle_append(self, message: dict, base: dict) -> dict:
        """Delta ingest on the shard owner (the ``__append__`` pseudo-op).

        Hydrates the current version, extends it through
        :meth:`~repro.relations.relation.Relation.extended_with` (only
        the delta is dictionary-coded), and writes the new version's
        verified snapshot — chain in ``extra`` — into the shared spill
        directory, where the new fingerprint's owning worker (usually a
        different process) hydrates it on first use.  The old version
        stays out of the resident LRU; the new one replaces it.
        """
        from repro.relations.io import infer_integer_domains
        from repro.relations.persist import (
            CHAIN_KEY,
            save_snapshot,
            validate_chain,
        )
        from repro.relations.relation import Relation
        from repro.relations.schema import RelationSchema

        try:
            relation, origin = self._relation_for(message)
        except (SnapshotError, DatasetDegradedError) as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "degraded",
                "resident": self.resident(),
            }
        except ReproError as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "repro",
                "resident": self.resident(),
            }
        except Exception as exc:
            return {
                **base,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": "internal",
                "resident": self.resident(),
            }
        start = time.perf_counter()
        old_fingerprint = message["fingerprint"]
        try:
            chain = validate_chain(message["chain"])
            rows = [tuple(row) for row in message["append_rows"]]
            appended = infer_integer_domains(relation.extended_with(rows))
            new_fingerprint = appended.fingerprint()
            if new_fingerprint == old_fingerprint:
                # Every submitted row was already present (set
                # semantics): same content, same version, nothing to
                # persist or re-home.
                self.jobs_done += 1
                return {
                    **base,
                    "ok": True,
                    "report": {
                        "fingerprint": old_fingerprint,
                        "previous_fingerprint": old_fingerprint,
                        "changed": False,
                        "version": chain["version"],
                        "chain": chain,
                        "rows_submitted": len(rows),
                        "rows_added": 0,
                        "n_rows": len(relation),
                        "n_cols": len(relation.attributes),
                        "snapshot": False,
                        "wall_time_s": time.perf_counter() - start,
                    },
                    "origin": origin,
                    "memo_delta": [],
                    "resident": self.resident(),
                }
            names = list(relation.attributes)
            chunk_fingerprint = Relation(
                RelationSchema.from_names(names), rows, validate=False
            ).fingerprint()
            new_chain = validate_chain(
                {
                    "base": chain["base"],
                    "chunks": chain["chunks"] + [chunk_fingerprint],
                    "version": chain["version"] + 1,
                }
            )
            snapshot_dir = (
                Path(message["spill_dir"]) / f"snapshot-{new_fingerprint}"
            )
            extra = {CHAIN_KEY: new_chain}
            if message.get("chunk_rows") is not None:
                extra["chunk_rows"] = message["chunk_rows"]
            save_snapshot(appended, snapshot_dir, source=None, extra=extra)
        except (SnapshotError, OSError) as exc:
            # The snapshot is how the new fingerprint's shard owner will
            # materialize the data — failing to write it fails the
            # append rather than stranding an unhydratable version.
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "degraded",
                "resident": self.resident(),
            }
        except ReproError as exc:
            return {
                **base,
                "ok": False,
                "error": str(exc),
                "error_kind": "repro",
                "resident": self.resident(),
            }
        except Exception as exc:
            return {
                **base,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": "internal",
                "resident": self.resident(),
            }
        self._relations.pop(old_fingerprint, None)
        self._relations[new_fingerprint] = appended
        while len(self._relations) > self._max_resident:
            self._relations.popitem(last=False)
        self.jobs_done += 1
        return {
            **base,
            "ok": True,
            "report": {
                "fingerprint": new_fingerprint,
                "previous_fingerprint": old_fingerprint,
                "changed": True,
                "version": new_chain["version"],
                "chain": new_chain,
                "rows_submitted": len(rows),
                "rows_added": len(appended) - len(relation),
                "n_rows": len(appended),
                "n_cols": len(names),
                "snapshot": True,
                "wall_time_s": time.perf_counter() - start,
            },
            "origin": origin,
            "memo_delta": [],
            "resident": self.resident(),
        }


def _worker_plan() -> FaultPlan:
    """Build this worker's fault plan from the shipped spec (if any).

    Only the worker-side sites (:data:`WORKER_SITES`) are kept; the
    front-end sites stay with the front end so one rule never fires in
    two processes.
    """
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return DISABLED
    try:
        spec = json.loads(raw)
    except ValueError:
        return DISABLED
    if not isinstance(spec, dict):
        return DISABLED
    rules = [
        rule
        for rule in spec.get("rules", [])
        if isinstance(rule, dict) and rule.get("site") in WORKER_SITES
    ]
    if not rules:
        return DISABLED
    try:
        return FaultPlan({"seed": spec.get("seed", 0), "rules": rules})
    except ServiceError:
        return DISABLED


def worker_main(argv: list[str] | None = None) -> int:
    """Entry point of one worker process (``python -m repro.service.cluster``).

    Connects back to the dispatcher, introduces itself with the spawn
    token, then serves requests: a reader thread answers heartbeats
    immediately (so a long mine never looks dead) and queues work; the
    main thread computes and responds.  The injected
    ``cluster.worker_exit`` fault dies via ``os._exit(1)`` — no
    goodbye, no flush — so the front end exercises its real crash path.
    """
    parser = argparse.ArgumentParser(prog="repro-cluster-worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--worker-id", required=True, type=int)
    parser.add_argument("--max-resident", type=int, default=16)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    token = os.environ.get(TOKEN_ENV, "")
    plan = _worker_plan()
    try:
        sock = socket.create_connection((host, int(port)), timeout=10.0)
    except OSError as exc:
        print(
            f"[worker {args.worker_id}] cannot reach dispatcher: {exc}",
            file=sys.stderr,
        )
        return 1
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    runtime = _WorkerRuntime(
        max_resident=args.max_resident, faults=plan, worker_id=args.worker_id
    )
    with send_lock:
        send_frame(
            sock,
            {
                "t": "hello",
                "worker_id": args.worker_id,
                "pid": os.getpid(),
                "token": token,
            },
        )
    inbox: queue.Queue = queue.Queue()

    def read_loop() -> None:
        while True:
            try:
                message = recv_frame(sock)
            except (DispatchError, ServiceError):
                inbox.put(None)
                return
            if message is None or message.get("t") == "bye":
                inbox.put(None)
                return
            kind = message.get("t")
            if kind == "ping":
                try:
                    with send_lock:
                        send_frame(
                            sock,
                            {
                                "t": "pong",
                                "id": message.get("id"),
                                "resident": runtime.resident(),
                                "jobs_done": runtime.jobs_done,
                                "metrics": runtime.metrics_snapshot(),
                            },
                        )
                except DispatchError:
                    inbox.put(None)
                    return
                continue
            if kind == "req":
                inbox.put(message)

    threading.Thread(target=read_loop, daemon=True).start()
    while True:
        message = inbox.get()
        if message is None:
            return 0
        try:
            if message.get("inject") == "worker_exit":
                raise WorkerCrashInjection(
                    "dispatcher-injected worker exit (cluster.worker_exit)"
                )
            response = runtime.handle(message)
            response["metrics"] = runtime.metrics_snapshot()
        except WorkerCrashInjection:
            # Die like a real crash: no response, no cleanup, nonzero
            # status.  The dispatcher's reader sees EOF and fails the
            # in-flight job with reason "worker_crashed".
            os._exit(1)
        try:
            with send_lock:
                send_frame(sock, response)
        except DispatchError:
            return 0  # dispatcher is gone; nothing left to serve


if __name__ == "__main__":
    raise SystemExit(worker_main())

"""Dataset registry: fingerprint-keyed resident relations with LRU eviction.

The registry is the service's working set.  ``register_path`` /
``register_text`` ingest a CSV (eagerly or via the bounded-memory
streamed path), apply :func:`~repro.relations.io.infer_integer_domains`
(exactly like the CLI, so service reports match CLI reports bit for
bit), fingerprint the content (:meth:`Relation.fingerprint`), and keep
the relation — and therefore its cached exact
:class:`~repro.info.engine.EntropyEngine` and
:class:`~repro.core.evalcontext.EvalContext` — resident.

Residency is bounded by a byte budget: when the estimated resident size
exceeds it, least-recently-used datasets are **evicted** down to the
budget.  Eviction drops the relation object (codes, memos, row tuples)
but keeps the entry's metadata and source, so a later request for the
same fingerprint transparently **re-ingests** from the recorded source
path; inline uploads are persisted to the spill directory (when
configured) for the same reason.  Re-ingestion re-verifies the
fingerprint, so a source file mutated behind the registry's back is
detected instead of silently served.

Registering identical content twice (same fingerprint) is idempotent:
one resident copy, one entry, whichever source arrived first.

Crash safety: a re-ingest that fails — source vanished, unreadable, or
mutated behind the registry's back — **demotes the entry to a degraded
metadata-only state** (``degraded: true`` plus the reason in its view)
and raises a typed :class:`~repro.errors.DatasetDegradedError` to the
caller, instead of crashing the serving thread or retrying blindly.
A later successful re-ingest or re-registration heals the entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DatasetDegradedError, ServiceError, UnknownDatasetError
from repro.info.engine import EntropyEngine
from repro.relations.io import infer_integer_domains, read_csv
from repro.relations.relation import Relation
from repro.service.faults import DISABLED, FaultPlan


def resident_bytes(relation: Relation) -> int:
    """Estimated resident footprint of a relation, in bytes.

    Counts the columnar code arrays exactly (``nbytes``) plus a flat
    per-cell charge for the Python row tuples and per-column decoders.
    An estimate, not an accounting — it only needs to be deterministic
    and monotone in the data size for LRU eviction to behave.
    """
    store = relation.columns()
    n = len(relation)
    arity = relation.schema.arity
    code_bytes = sum(col.nbytes for col in store.codes)
    # ~56 bytes/cell: tuple slot + the (often shared) value object.
    return int(code_bytes + 56 * n * arity + 64 * sum(store.cards))


@dataclass
class DatasetEntry:
    """One registered dataset: metadata always, relation while resident."""

    fingerprint: str
    source: str | None  # CSV path to re-ingest from (None: inline, no spill)
    chunk_rows: int | None
    attributes: tuple[str, ...]
    n_rows: int
    n_cols: int
    resident_bytes: int
    registered_at: float
    relation: Relation | None = None
    hits: int = 0
    reloads: int = 0
    degraded: bool = False
    degraded_reason: str | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def resident(self) -> bool:
        return self.relation is not None

    def describe(self) -> dict:
        """JSON view served by ``GET /datasets/{fingerprint}``."""
        engine_info = None
        relation = self.relation
        if relation is not None and relation._engine is not None:
            engine_info = relation._engine.cache_info()
        return {
            "fingerprint": self.fingerprint,
            "attributes": list(self.attributes),
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "resident": self.resident,
            "resident_bytes": self.resident_bytes if self.resident else 0,
            "hits": self.hits,
            "reloads": self.reloads,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "chunk_rows": self.chunk_rows,
            "source": self.source,
            "engine": engine_info,
        }


class DatasetRegistry:
    """Fingerprint-keyed store of ingested relations with LRU eviction."""

    def __init__(
        self,
        *,
        memory_budget_bytes: int | None = None,
        spill_dir: str | Path | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ServiceError(
                f"memory budget must be positive or None, got "
                f"{memory_budget_bytes}"
            )
        self._budget = memory_budget_bytes
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._faults = faults if faults is not None else DISABLED
        self._entries: OrderedDict[str, DatasetEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.evictions = 0
        self.last_degrade_at: float | None = None  # time.monotonic()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _ingest(self, path: str, chunk_rows: int | None) -> Relation:
        loaded = (
            Relation.from_csv_stream(path, chunk_rows=chunk_rows)
            if chunk_rows is not None
            else read_csv(path)
        )
        return infer_integer_domains(loaded)

    def register_path(
        self, path: str | Path, *, chunk_rows: int | None = None
    ) -> tuple[DatasetEntry, bool]:
        """Ingest a server-local CSV; returns ``(entry, created)``.

        ``created`` is ``False`` when content with the same fingerprint
        is already registered (the existing entry is returned and
        refreshed in LRU order).
        """
        relation = self._ingest(str(path), chunk_rows)
        return self._admit(relation, source=str(path), chunk_rows=chunk_rows)

    def register_text(
        self,
        csv_text: str,
        *,
        chunk_rows: int | None = None,
        name: str = "inline",
    ) -> tuple[DatasetEntry, bool]:
        """Ingest CSV content uploaded inline (``POST /datasets`` body).

        With a spill directory configured the text is persisted there
        (named by fingerprint), so the dataset survives eviction exactly
        like a path-registered one.  Without one, eviction is final: a
        later request for the fingerprint fails with a clear error.
        """
        import re
        import tempfile

        # The name is client-controlled and becomes a filename prefix:
        # allow nothing that could navigate (no separators, no dots).
        name = re.sub(r"[^A-Za-z0-9_-]", "_", name)[:40] or "inline"
        with tempfile.NamedTemporaryFile(
            "w", suffix=".csv", prefix=f"{name}-", delete=False
        ) as handle:
            handle.write(csv_text)
            tmp_path = Path(handle.name)
        try:
            relation = self._ingest(str(tmp_path), chunk_rows)
            source: str | None = None
            if self._spill_dir is not None:
                self._spill_dir.mkdir(parents=True, exist_ok=True)
                kept = self._spill_dir / f"dataset-{relation.fingerprint()}.csv"
                if not kept.exists():
                    kept.write_text(csv_text)
                source = str(kept)
            return self._admit(relation, source=source, chunk_rows=chunk_rows)
        finally:
            tmp_path.unlink(missing_ok=True)

    def _admit(
        self, relation: Relation, *, source: str | None, chunk_rows: int | None
    ) -> tuple[DatasetEntry, bool]:
        fingerprint = relation.fingerprint()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                if entry.source is None and source is not None:
                    # An inline upload without a spill dir had no way to
                    # survive eviction; re-registering the same content
                    # by path gives it one.
                    entry.source = source
                    entry.chunk_rows = chunk_rows
                if entry.relation is None:
                    entry.relation = relation
                    entry.resident_bytes = resident_bytes(relation)
                    self._evict_over_budget()
                # Fresh verified content heals a degraded entry.
                entry.degraded = False
                entry.degraded_reason = None
                return entry, False
            entry = DatasetEntry(
                fingerprint=fingerprint,
                source=source,
                chunk_rows=chunk_rows,
                attributes=relation.schema.names,
                n_rows=len(relation),
                n_cols=relation.schema.arity,
                resident_bytes=resident_bytes(relation),
                registered_at=time.time(),
                relation=relation,
            )
            self._entries[fingerprint] = entry
            self._evict_over_budget()
            return entry, True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> DatasetEntry:
        """The entry for ``fingerprint`` (metadata even if evicted).

        Counts one hit — this is the request-level lookup (job
        submission, ``GET /datasets/{fp}``).  Internal plumbing uses
        :meth:`_touch` so one request never double-counts.
        """
        entry = self._touch(fingerprint)
        entry.hits += 1
        return entry

    def _touch(self, fingerprint: str) -> DatasetEntry:
        """Look up + refresh LRU order without counting a hit."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise UnknownDatasetError(
                    f"no dataset registered with fingerprint {fingerprint!r}"
                )
            self._entries.move_to_end(fingerprint)
            return entry

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[DatasetEntry]:
        """All entries, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def relation(self, fingerprint: str) -> Relation:
        """The dataset's relation, re-ingesting from source if evicted.

        A failed re-ingest (source vanished, unreadable, or mutated)
        demotes the entry to a degraded metadata-only state and raises
        :class:`~repro.errors.DatasetDegradedError`; later calls keep
        retrying the source, so a restored file heals the entry.
        """
        entry = self._touch(fingerprint)
        with entry._lock:  # one reload per evicted dataset, not per caller
            if entry.relation is not None:
                return entry.relation
            if entry.source is None:
                self._degrade(
                    entry,
                    "evicted with no source to re-ingest from (inline "
                    "upload without a spill dir)",
                )
                raise DatasetDegradedError(
                    f"dataset {fingerprint!r} is degraded: evicted with no "
                    "source to re-ingest from (inline upload without a "
                    "spill dir); re-register it"
                )
            try:
                self._faults.check("registry.reingest")
                relation = self._ingest(entry.source, entry.chunk_rows)
            except Exception as exc:
                self._degrade(entry, f"re-ingest from {entry.source} failed: {exc}")
                raise DatasetDegradedError(
                    f"dataset {fingerprint!r} is degraded: re-ingesting "
                    f"from {entry.source} failed: {exc}; restore the source "
                    "or re-register the dataset"
                ) from exc
            if relation.fingerprint() != fingerprint:
                self._degrade(
                    entry,
                    f"source {entry.source} changed on disk "
                    f"(fingerprint {relation.fingerprint()!r})",
                )
                raise DatasetDegradedError(
                    f"source {entry.source} changed on disk: re-ingested "
                    f"fingerprint {relation.fingerprint()!r} != registered "
                    f"{fingerprint!r}; re-register the dataset"
                )
            with self._lock:
                entry.relation = relation
                entry.resident_bytes = resident_bytes(relation)
                entry.reloads += 1
                entry.degraded = False  # a good source heals the entry
                entry.degraded_reason = None
                self._entries.move_to_end(fingerprint)
                self._evict_over_budget()
            return relation

    def _degrade(self, entry: DatasetEntry, reason: str) -> None:
        """Demote an entry to metadata-only (caller holds ``entry._lock``)."""
        with self._lock:
            entry.degraded = True
            entry.degraded_reason = reason
            self.last_degrade_at = time.monotonic()

    def engine(self, fingerprint: str) -> EntropyEngine:
        """The dataset's resident exact entropy engine (shared memo)."""
        return EntropyEngine.for_relation(self.relation(fingerprint))

    # ------------------------------------------------------------------
    # Eviction + stats
    # ------------------------------------------------------------------
    def total_resident_bytes(self) -> int:
        with self._lock:
            return sum(
                e.resident_bytes for e in self._entries.values() if e.resident
            )

    def degraded_count(self) -> int:
        """How many entries are currently metadata-only and unreloadable."""
        with self._lock:
            return sum(e.degraded for e in self._entries.values())

    def _evict_over_budget(self) -> None:
        """Drop LRU relations until within budget (caller holds the lock).

        The most recently touched dataset is never evicted, even when it
        alone exceeds the budget — serving the request at hand beats
        thrashing.
        """
        if self._budget is None:
            return
        resident = [e for e in self._entries.values() if e.resident]
        total = sum(e.resident_bytes for e in resident)
        # OrderedDict order is LRU → MRU; spare the last resident entry.
        for entry in resident[:-1]:
            if total <= self._budget:
                break
            entry.relation = None
            total -= entry.resident_bytes
            self.evictions += 1

    def stats(self) -> dict:
        """JSON-ready registry summary (part of ``GET /stats``)."""
        with self._lock:
            resident = [e for e in self._entries.values() if e.resident]
            return {
                "datasets": len(self._entries),
                "resident": len(resident),
                "resident_bytes": sum(e.resident_bytes for e in resident),
                "memory_budget_bytes": self._budget,
                "evictions": self.evictions,
                "degraded": sum(e.degraded for e in self._entries.values()),
                "engines": {
                    e.fingerprint: e.relation._engine.cache_info()
                    for e in resident
                    if e.relation._engine is not None
                },
            }

"""Dataset registry: fingerprint-keyed resident relations with LRU eviction.

The registry is the service's working set.  ``register_path`` /
``register_text`` ingest a CSV (eagerly or via the bounded-memory
streamed path), apply :func:`~repro.relations.io.infer_integer_domains`
(exactly like the CLI, so service reports match CLI reports bit for
bit), fingerprint the content (:meth:`Relation.fingerprint`), and keep
the relation — and therefore its cached exact
:class:`~repro.info.engine.EntropyEngine` and
:class:`~repro.core.evalcontext.EvalContext` — resident.

Residency is bounded by a byte budget: when the estimated resident size
exceeds it, least-recently-used datasets are **evicted** down to the
budget.  Eviction drops the relation object (codes, memos, row tuples)
but keeps the entry's metadata and source, so a later request for the
same fingerprint transparently **re-ingests** from the recorded source
path; inline uploads are persisted to the spill directory (when
configured) for the same reason.  Re-ingestion re-verifies the
fingerprint, so a source file mutated behind the registry's back is
detected instead of silently served.

Registering identical content twice (same fingerprint) is idempotent:
one resident copy, one entry, whichever source arrived first.

Crash safety: a re-ingest that fails — source vanished, unreadable, or
mutated behind the registry's back — **demotes the entry to a degraded
metadata-only state** (``degraded: true`` plus the reason in its view)
and raises a typed :class:`~repro.errors.DatasetDegradedError` to the
caller, instead of crashing the serving thread or retrying blindly.
A later successful re-ingest or re-registration heals the entry.

Persistent snapshots (see :mod:`repro.relations.persist`): with a spill
directory configured, every admitted dataset is also written as an
on-disk **columnar snapshot** beside the spill CSV.  Eviction reloads
and warm restarts then prefer the snapshot — a zero-parse ``mmap`` of
the ``int64`` code arrays, ~10-100x faster than re-parsing CSV — and
fall back to the CSV source only when the snapshot is missing or fails
verification (a corrupt snapshot is quarantined, counted, and never
served).  A fresh registry scans the spill directory for snapshots and
**restores** their entries metadata-only, so a restarted service knows
its datasets before any request arrives and loads them lazily without
touching the original CSVs.  The resident exact entropy memo is spilled
alongside on eviction and merged back on snapshot reload, so a reloaded
dataset comes back with its memo warm, not just its codes.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    DatasetDegradedError,
    ReproError,
    ServiceError,
    SnapshotError,
    UnknownDatasetError,
)
from repro.info.engine import EntropyEngine
from repro.relations.io import infer_integer_domains, read_csv
from repro.relations.persist import (
    CHAIN_KEY,
    META_FILE,
    atomic_write_text,
    chain_from_meta,
    load_engine_memo,
    load_snapshot,
    quarantine_snapshot,
    read_snapshot_meta,
    save_engine_memo,
    save_snapshot,
    validate_chain,
)
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema
from repro.service.faults import DISABLED, FaultPlan
from repro.service.telemetry import MetricsRegistry


def resident_bytes(relation: Relation) -> int:
    """Estimated resident footprint of a relation, in bytes.

    Counts the columnar code arrays exactly (``nbytes``) plus a flat
    per-cell charge for the Python row tuples and per-column decoders.
    An estimate, not an accounting — it only needs to be deterministic
    and monotone in the data size for LRU eviction to behave.
    """
    store = relation.columns()
    n = len(relation)
    arity = relation.schema.arity
    code_bytes = sum(col.nbytes for col in store.codes)
    # ~56 bytes/cell: tuple slot + the (often shared) value object.
    return int(code_bytes + 56 * n * arity + 64 * sum(store.cards))


@dataclass
class DatasetEntry:
    """One registered dataset: metadata always, relation while resident."""

    fingerprint: str
    source: str | None  # CSV path to re-ingest from (None: inline, no spill)
    chunk_rows: int | None
    attributes: tuple[str, ...]
    n_rows: int
    n_cols: int
    resident_bytes: int
    registered_at: float
    relation: Relation | None = None
    hits: int = 0
    reloads: int = 0
    #: Delta-ingest version chain: ``version`` counts ingests (1 = the
    #: base registration), ``base_fingerprint`` is the version-1 content
    #: fingerprint, and ``chunk_fingerprints`` holds one content
    #: fingerprint per appended delta, in order.  ``fingerprint`` above
    #: is always the *current* content.
    version: int = 1
    base_fingerprint: str | None = None
    chunk_fingerprints: list[str] = field(default_factory=list)
    appends: int = 0
    #: How the most recent reload was satisfied: ``"snapshot"`` |
    #: ``"csv"`` | ``None`` (never reloaded).
    reload_source: str | None = None
    #: Whether a columnar snapshot is known to exist on disk.
    snapshot: bool = False
    degraded: bool = False
    degraded_reason: str | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def resident(self) -> bool:
        return self.relation is not None

    def chain(self) -> dict:
        """The entry's fingerprint chain (see :func:`~repro.relations.persist.validate_chain`)."""
        return {
            "base": self.base_fingerprint or self.fingerprint,
            "chunks": list(self.chunk_fingerprints),
            "version": self.version,
        }

    def describe(self) -> dict:
        """JSON view served by ``GET /datasets/{fingerprint}``."""
        engine_info = None
        relation = self.relation
        if relation is not None and relation._engine is not None:
            engine_info = relation._engine.cache_info()
        return {
            "fingerprint": self.fingerprint,
            "attributes": list(self.attributes),
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "resident": self.resident,
            "resident_bytes": self.resident_bytes if self.resident else 0,
            "hits": self.hits,
            "reloads": self.reloads,
            "reload_source": self.reload_source,
            "snapshot": self.snapshot,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "chunk_rows": self.chunk_rows,
            "source": self.source,
            "version": self.version,
            "chain": self.chain(),
            "appends": self.appends,
            "engine": engine_info,
        }


class DatasetRegistry:
    """Fingerprint-keyed store of ingested relations with LRU eviction."""

    def __init__(
        self,
        *,
        memory_budget_bytes: int | None = None,
        spill_dir: str | Path | None = None,
        faults: FaultPlan | None = None,
        snapshots: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ServiceError(
                f"memory budget must be positive or None, got "
                f"{memory_budget_bytes}"
            )
        self._budget = memory_budget_bytes
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._faults = faults if faults is not None else DISABLED
        self._entries: OrderedDict[str, DatasetEntry] = OrderedDict()
        #: Superseded fingerprint → its successor (one hop per append).
        #: Lets clients holding a pre-append fingerprint keep addressing
        #: the dataset; chains resolve transitively in :meth:`resolve`.
        self._aliases: dict[str, str] = {}
        #: Serializes appends: each one must read the current version,
        #: extend it, and re-key the entry as one atomic step.
        self._append_lock = threading.Lock()
        self._lock = threading.RLock()
        self.last_degrade_at: float | None = None  # time.monotonic()
        #: Snapshots need somewhere durable to live: the spill dir.
        self._snapshots_enabled = bool(snapshots) and self._spill_dir is not None
        # Counters live on the (shared) metrics registry so /stats and
        # /v1/metrics read the same instruments; standalone registries
        # get a private one.
        metrics = metrics or MetricsRegistry()
        counter = metrics.counter
        self._c_evictions = counter(
            "registry_evictions_total", "Resident datasets evicted (LRU budget)"
        )
        self._c_appends = counter(
            "registry_appends_total", "Delta-ingest appends applied"
        )
        self._c_append_noops = counter(
            "registry_append_noops_total", "Appends fully deduplicated to no-ops"
        )
        self._c_append_rows_added = counter(
            "registry_append_rows_added_total", "Distinct rows added by appends"
        )
        self._c_snapshot_writes = counter(
            "registry_snapshot_writes_total", "Columnar snapshots written"
        )
        self._c_snapshot_write_failures = counter(
            "registry_snapshot_write_failures_total", "Snapshot writes that failed"
        )
        self._c_snapshot_reloads = counter(
            "registry_snapshot_reloads_total", "Evicted datasets reloaded zero-parse"
        )
        self._c_csv_reloads = counter(
            "registry_csv_reloads_total", "Evicted datasets re-ingested from CSV"
        )
        self._c_snapshot_quarantined = counter(
            "registry_snapshot_quarantined_total", "Malformed snapshots quarantined"
        )
        self._c_restored_from_snapshot = counter(
            "registry_restored_from_snapshot_total",
            "Datasets adopted from snapshots at startup",
        )
        self._c_memo_spills = counter(
            "registry_memo_spills_total", "Entropy memos spilled beside snapshots"
        )
        self._c_memo_entries_restored = counter(
            "registry_memo_entries_restored_total",
            "Entropy-memo entries restored from sidecars",
        )
        self._h_snapshot_load = metrics.histogram(
            "registry_snapshot_load_seconds",
            "Wall time hydrating a dataset from its columnar snapshot",
        )
        #: One assembled stats() document reused for a short TTL so
        #: monitoring pollers never contend with the serving path.
        self._stats_cache: tuple[float, dict] | None = None
        if self._snapshots_enabled:
            self._restore_from_snapshots()

    # Counter attributes stay readable while the values live on the
    # metrics registry.
    @property
    def evictions(self) -> int:
        return int(self._c_evictions.value())

    @property
    def appends(self) -> int:
        return int(self._c_appends.value())

    @property
    def append_noops(self) -> int:
        return int(self._c_append_noops.value())

    @property
    def append_rows_added(self) -> int:
        return int(self._c_append_rows_added.value())

    @property
    def snapshot_writes(self) -> int:
        return int(self._c_snapshot_writes.value())

    @property
    def snapshot_write_failures(self) -> int:
        return int(self._c_snapshot_write_failures.value())

    @property
    def snapshot_reloads(self) -> int:
        return int(self._c_snapshot_reloads.value())

    @property
    def csv_reloads(self) -> int:
        return int(self._c_csv_reloads.value())

    @property
    def snapshot_quarantined(self) -> int:
        return int(self._c_snapshot_quarantined.value())

    @property
    def restored_from_snapshot(self) -> int:
        return int(self._c_restored_from_snapshot.value())

    @property
    def memo_spills(self) -> int:
        return int(self._c_memo_spills.value())

    @property
    def memo_entries_restored(self) -> int:
        return int(self._c_memo_entries_restored.value())

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _ingest(self, path: str, chunk_rows: int | None) -> Relation:
        loaded = (
            Relation.from_csv_stream(path, chunk_rows=chunk_rows)
            if chunk_rows is not None
            else read_csv(path)
        )
        return infer_integer_domains(loaded)

    # ------------------------------------------------------------------
    # Snapshot plumbing
    # ------------------------------------------------------------------
    def _snapshot_path(self, fingerprint: str) -> Path:
        assert self._spill_dir is not None
        return self._spill_dir / f"snapshot-{fingerprint}"

    def _restore_from_snapshots(self) -> None:
        """Adopt on-disk snapshots as metadata-only entries (warm restart).

        Runs once at construction: every structurally valid snapshot in
        the spill directory becomes a registered-but-not-resident entry
        whose relation loads lazily (snapshot-first) on first use.
        Malformed snapshots — and ones whose directory name disagrees
        with their recorded fingerprint — are quarantined.
        """
        assert self._spill_dir is not None
        if not self._spill_dir.exists():
            return
        for meta_path in sorted(self._spill_dir.glob("snapshot-*/" + META_FILE)):
            snapshot_dir = meta_path.parent
            try:
                meta = read_snapshot_meta(snapshot_dir)
            except SnapshotError:
                quarantine_snapshot(snapshot_dir)
                self._c_snapshot_quarantined.inc()
                continue
            fingerprint = meta["fingerprint"]
            if (
                snapshot_dir.name != f"snapshot-{fingerprint}"
                or fingerprint in self._entries
            ):
                quarantine_snapshot(snapshot_dir)
                self._c_snapshot_quarantined.inc()
                continue
            source = (meta.get("source") or {}).get("path")
            chunk_rows = (meta.get("extra") or {}).get("chunk_rows")
            if isinstance(chunk_rows, bool) or not isinstance(chunk_rows, int):
                chunk_rows = None
            entry = DatasetEntry(
                fingerprint=fingerprint,
                source=source if isinstance(source, str) else None,
                chunk_rows=chunk_rows,
                attributes=tuple(meta["attributes"]),
                n_rows=meta["n_rows"],
                n_cols=len(meta["attributes"]),
                resident_bytes=0,
                registered_at=time.time(),
            )
            try:
                chain = chain_from_meta(meta)
            except SnapshotError:
                chain = None  # provenance is advisory; content verified
            if chain is not None:
                entry.version = chain["version"]
                entry.base_fingerprint = chain["base"]
                entry.chunk_fingerprints = list(chain["chunks"])
            entry.snapshot = True
            self._entries[fingerprint] = entry
            self._c_restored_from_snapshot.inc()

    def _maybe_write_snapshot(self, entry: DatasetEntry, relation: Relation) -> None:
        """Write the entry's snapshot if it does not exist yet (best effort).

        A relation whose values cannot round-trip bit-identically (the
        ``1 == True == 1.0`` collapse) raises inside ``save_snapshot``
        and is simply not snapshotted — its CSV source remains the
        reload path, exactly as before this feature existed.
        """
        if not self._snapshots_enabled:
            return
        snapshot_dir = self._snapshot_path(entry.fingerprint)
        if (snapshot_dir / META_FILE).exists():
            entry.snapshot = True
            return
        extra: dict = {}
        if entry.chunk_rows is not None:
            extra["chunk_rows"] = entry.chunk_rows
        if entry.version > 1:
            extra[CHAIN_KEY] = entry.chain()
        try:
            save_snapshot(
                relation,
                snapshot_dir,
                source=entry.source,
                extra=extra or None,
            )
        except (SnapshotError, OSError):
            with self._lock:
                self._c_snapshot_write_failures.inc()
        else:
            entry.snapshot = True
            with self._lock:
                self._c_snapshot_writes.inc()

    def _load_snapshot_for(self, entry: DatasetEntry) -> Relation | None:
        """Load the entry's snapshot, or ``None`` (caller holds entry lock).

        Any failure — corrupt metadata, torn arrays, fingerprint or
        shape mismatch, injected fault — quarantines the snapshot and
        returns ``None`` so the caller falls back to CSV re-ingest.
        On success the spilled entropy memo (if any) is merged into the
        relation's resident engine.
        """
        if not self._snapshots_enabled:
            return None
        snapshot_dir = self._snapshot_path(entry.fingerprint)
        if not (snapshot_dir / META_FILE).exists():
            return None
        try:
            self._faults.check("registry.snapshot_load")
            relation = load_snapshot(
                snapshot_dir,
                expected_fingerprint=entry.fingerprint,
                domains=True,
            )
        except (SnapshotError, OSError, ServiceError):
            quarantine_snapshot(snapshot_dir)
            entry.snapshot = False
            with self._lock:
                self._c_snapshot_quarantined.inc()
            return None
        entry.snapshot = True
        try:
            memo = load_engine_memo(snapshot_dir)
        except SnapshotError:
            memo = {}
        if memo:
            added = EntropyEngine.for_relation(relation).merge_cache(memo)
            with self._lock:
                self._c_memo_entries_restored.inc(added)
        return relation

    def _spill_engine_memo(self, entry: DatasetEntry) -> None:
        """Spill a resident engine's memo beside the snapshot (best effort)."""
        if not self._snapshots_enabled:
            return
        relation = entry.relation
        if relation is None or relation._engine is None:
            return
        snapshot_dir = self._snapshot_path(entry.fingerprint)
        if not (snapshot_dir / META_FILE).exists():
            return
        try:
            if save_engine_memo(snapshot_dir, relation._engine):
                self._c_memo_spills.inc()
        except OSError:
            pass

    def _snapshot_shortcut(self, path_str: str) -> DatasetEntry | None:
        """Serve ``register_path`` from a snapshot when the file is unchanged.

        The snapshot's recorded provenance (source path + size +
        mtime_ns) must match the file's current stat exactly; anything
        else — no candidate entry, stale provenance, failed load —
        falls through to a full ingest, which re-verifies content the
        usual way.
        """
        if not self._snapshots_enabled:
            return None
        with self._lock:
            candidates = [
                e for e in self._entries.values() if e.source == path_str
            ]
        for entry in candidates:
            try:
                meta = read_snapshot_meta(self._snapshot_path(entry.fingerprint))
            except SnapshotError:
                continue
            provenance = meta.get("source") or {}
            if provenance.get("path") != path_str:
                continue
            try:
                stat = os.stat(path_str)
            except OSError:
                return None  # unreadable: let the ingest path raise typed
            if (
                provenance.get("size") != stat.st_size
                or provenance.get("mtime_ns") != stat.st_mtime_ns
            ):
                continue
            try:
                self.relation(entry.fingerprint)
            except ReproError:
                continue
            return entry
        return None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_path(
        self, path: str | Path, *, chunk_rows: int | None = None
    ) -> tuple[DatasetEntry, bool]:
        """Ingest a server-local CSV; returns ``(entry, created)``.

        ``created`` is ``False`` when content with the same fingerprint
        is already registered (the existing entry is returned and
        refreshed in LRU order).  When a snapshot's recorded provenance
        matches the file's current size and mtime exactly, the parse is
        skipped entirely and the relation comes from the snapshot (the
        warm-restart fast path); any doubt falls back to a full ingest.
        """
        path_str = str(path)
        entry = self._snapshot_shortcut(path_str)
        if entry is not None:
            return entry, False
        relation = self._ingest(path_str, chunk_rows)
        entry, created = self._admit(
            relation, source=path_str, chunk_rows=chunk_rows
        )
        self._maybe_write_snapshot(entry, relation)
        return entry, created

    def register_text(
        self,
        csv_text: str,
        *,
        chunk_rows: int | None = None,
        name: str = "inline",
    ) -> tuple[DatasetEntry, bool]:
        """Ingest CSV content uploaded inline (``POST /datasets`` body).

        With a spill directory configured the text is persisted there
        (named by fingerprint), so the dataset survives eviction exactly
        like a path-registered one.  Without one, eviction is final: a
        later request for the fingerprint fails with a clear error.
        """
        import re
        import tempfile

        # The name is client-controlled and becomes a filename prefix:
        # allow nothing that could navigate (no separators, no dots).
        name = re.sub(r"[^A-Za-z0-9_-]", "_", name)[:40] or "inline"
        with tempfile.NamedTemporaryFile(
            "w", suffix=".csv", prefix=f"{name}-", delete=False
        ) as handle:
            handle.write(csv_text)
            tmp_path = Path(handle.name)
        try:
            relation = self._ingest(str(tmp_path), chunk_rows)
            source: str | None = None
            if self._spill_dir is not None:
                self._spill_dir.mkdir(parents=True, exist_ok=True)
                kept = self._spill_dir / f"dataset-{relation.fingerprint()}.csv"
                if not kept.exists():
                    # Crash-safe like every other spill: temp + fsync +
                    # atomic rename, so a hard kill cannot leave a torn
                    # CSV that would later re-ingest to the wrong
                    # fingerprint and degrade the entry confusingly.
                    atomic_write_text(kept, csv_text)
                source = str(kept)
            entry, created = self._admit(
                relation, source=source, chunk_rows=chunk_rows
            )
            self._maybe_write_snapshot(entry, relation)
            return entry, created
        finally:
            tmp_path.unlink(missing_ok=True)

    def _admit(
        self, relation: Relation, *, source: str | None, chunk_rows: int | None
    ) -> tuple[DatasetEntry, bool]:
        fingerprint = relation.fingerprint()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                if entry.source is None and source is not None:
                    # An inline upload without a spill dir had no way to
                    # survive eviction; re-registering the same content
                    # by path gives it one.
                    entry.source = source
                    entry.chunk_rows = chunk_rows
                if entry.relation is None:
                    entry.relation = relation
                    entry.resident_bytes = resident_bytes(relation)
                    self._evict_over_budget()
                # Fresh verified content heals a degraded entry.
                entry.degraded = False
                entry.degraded_reason = None
                return entry, False
            entry = DatasetEntry(
                fingerprint=fingerprint,
                source=source,
                chunk_rows=chunk_rows,
                attributes=relation.schema.names,
                n_rows=len(relation),
                n_cols=relation.schema.arity,
                resident_bytes=resident_bytes(relation),
                registered_at=time.time(),
                relation=relation,
            )
            self._entries[fingerprint] = entry
            self._evict_over_budget()
            return entry, True

    # ------------------------------------------------------------------
    # Delta ingest (live datasets)
    # ------------------------------------------------------------------
    @property
    def spill_dir(self) -> Path | None:
        """The registry's spill directory (``None`` when not configured)."""
        return self._spill_dir

    @property
    def snapshots_enabled(self) -> bool:
        return self._snapshots_enabled

    def append_rows(self, fingerprint: str, rows: list) -> tuple[DatasetEntry, dict]:
        """Append ``rows`` to a registered dataset; returns ``(entry, info)``.

        The delta-ingest tentpole.  The resident relation is **extended,
        not rebuilt**: its columnar store seeds a
        :class:`~repro.relations.builder.ColumnStoreBuilder`
        (:meth:`Relation.extended_with`), so only the delta is
        dictionary-coded and the result's fingerprint provably equals a
        from-scratch ingest of the concatenated source.  The entry is
        re-keyed under the new content fingerprint, the superseded
        fingerprint becomes an alias (:meth:`resolve`), the fingerprint
        chain gains the delta's own content fingerprint, and the
        snapshot + memo sidecar are rewritten atomically at the new
        version while the superseded version's spill files are retired.

        Exact entropy memos are invalidated *selectively*: relations are
        row **sets**, so any delta that survives deduplication changes
        the row count — and with it every marginal distribution — which
        makes the sound selective rule all-or-nothing.  A delta that
        deduplicates away entirely is a **no-op**: same fingerprint,
        same version, every memo and cached result stays valid
        (``info["changed"]`` is ``False``).

        Raises :class:`~repro.errors.UnknownDatasetError` for unknown
        fingerprints, :class:`~repro.errors.DatasetDegradedError` when
        the current version cannot be materialized, and
        :class:`~repro.errors.SchemaError` for rows of the wrong arity.
        """
        start = time.perf_counter()
        rows = [tuple(row) for row in rows]
        with self._append_lock:
            entry = self._touch(fingerprint)
            old_fp = entry.fingerprint
            relation = self.relation(old_fp)
            old_n_rows = len(relation)
            appended = (
                infer_integer_domains(relation.extended_with(rows))
                if rows
                else relation
            )
            new_fp = appended.fingerprint()
            if new_fp == old_fp:
                with self._lock:
                    self._c_append_noops.inc()
                return entry, {
                    "fingerprint": old_fp,
                    "previous_fingerprint": old_fp,
                    "changed": False,
                    "version": entry.version,
                    "chain": entry.chain(),
                    "rows_submitted": len(rows),
                    "rows_added": 0,
                    "n_rows": old_n_rows,
                    "wall_time_s": time.perf_counter() - start,
                }
            chunk_fp = Relation(
                RelationSchema.from_names(entry.attributes),
                rows,
                validate=False,
            ).fingerprint()
            with self._lock:
                existing = self._entries.get(new_fp)
                if existing is not None and existing is not entry:
                    # The appended content coincides with another
                    # registered dataset: fold into that entry instead
                    # of keying two entries to one fingerprint.
                    del self._entries[old_fp]
                    self._aliases[old_fp] = new_fp
                    if existing.relation is None:
                        existing.relation = appended
                        existing.resident_bytes = resident_bytes(appended)
                    existing.degraded = False
                    existing.degraded_reason = None
                    self._entries.move_to_end(new_fp)
                    self._c_appends.inc()
                    entry = existing
                else:
                    del self._entries[old_fp]
                    self._aliases[old_fp] = new_fp
                    entry.fingerprint = new_fp
                    entry.base_fingerprint = entry.base_fingerprint or old_fp
                    entry.chunk_fingerprints = [
                        *entry.chunk_fingerprints,
                        chunk_fp,
                    ]
                    entry.version += 1
                    entry.appends += 1
                    entry.relation = appended
                    entry.attributes = appended.schema.names
                    entry.n_rows = len(appended)
                    entry.n_cols = appended.schema.arity
                    entry.resident_bytes = resident_bytes(appended)
                    entry.snapshot = False
                    entry.degraded = False
                    entry.degraded_reason = None
                    self._entries[new_fp] = entry
                    self._c_appends.inc()
                    self._c_append_rows_added.inc(len(appended) - old_n_rows)
                self._evict_over_budget()
            # Publish the new version's durable forms, then retire the
            # superseded one's (its snapshot must not resurrect the old
            # fingerprint as a separate dataset on the next restart).
            entry.source = self._spill_concatenated_csv(appended, new_fp)
            self._maybe_write_snapshot(entry, appended)
            self._retire_version_files(old_fp)
            return entry, {
                "fingerprint": new_fp,
                "previous_fingerprint": old_fp,
                "changed": True,
                "version": entry.version,
                "chain": entry.chain(),
                "rows_submitted": len(rows),
                "rows_added": len(appended) - old_n_rows,
                "n_rows": len(appended),
                "wall_time_s": time.perf_counter() - start,
            }

    def adopt_appended(self, old_fingerprint: str, info: dict) -> DatasetEntry:
        """Re-key an entry after a *worker-side* append (cluster mode).

        The shard's owning worker extended the relation and wrote the
        new version's snapshot (see
        :meth:`repro.service.cluster.ClusterSupervisor.append`); the
        front end — which never materialized the data — adopts the
        result as metadata: new fingerprint, chain, row count, alias,
        retired old spill files.  The relation itself hydrates lazily
        from the worker-written snapshot on first front-end use.
        """
        chain = validate_chain(info["chain"])
        new_fp = str(info["fingerprint"])
        with self._append_lock:
            with self._lock:
                entry = self._entries.get(old_fingerprint)
                if entry is None:
                    raise UnknownDatasetError(
                        "no dataset registered with fingerprint "
                        f"{old_fingerprint!r}"
                    )
                del self._entries[old_fingerprint]
                self._aliases[old_fingerprint] = new_fp
                entry.fingerprint = new_fp
                entry.version = chain["version"]
                entry.base_fingerprint = chain["base"]
                entry.chunk_fingerprints = list(chain["chunks"])
                entry.appends += 1
                entry.relation = None
                entry.resident_bytes = 0
                entry.n_rows = int(info["n_rows"])
                entry.n_cols = int(info["n_cols"])
                entry.source = None
                entry.snapshot = bool(info.get("snapshot"))
                entry.degraded = False
                entry.degraded_reason = None
                self._entries[new_fp] = entry
                self._c_appends.inc()
                rows_added = info.get("rows_added")
                if isinstance(rows_added, int) and rows_added > 0:
                    self._c_append_rows_added.inc(rows_added)
            self._retire_version_files(old_fingerprint)
            return entry

    def _spill_concatenated_csv(
        self, relation: Relation, fingerprint: str
    ) -> str | None:
        """Persist the appended content as a CSV source (best effort).

        Keeps the CSV-fallback reload path alive for appended versions
        (the original source file no longer matches the content).  Rows
        are written in deterministic order; the re-ingest re-verifies
        the fingerprint, so a value that cannot round-trip through CSV
        text degrades the entry loudly instead of serving wrong data —
        and the columnar snapshot, which is exact, is always preferred.
        """
        if self._spill_dir is None:
            return None
        import csv
        from io import StringIO

        buffer = StringIO()
        writer = csv.writer(buffer)
        writer.writerow(relation.schema.names)
        writer.writerows(relation.sorted_rows())
        kept = self._spill_dir / f"dataset-{fingerprint}.csv"
        try:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(kept, buffer.getvalue())
        except OSError:
            return None
        return str(kept)

    def _retire_version_files(self, fingerprint: str) -> None:
        """Remove a superseded version's spill files (best effort)."""
        if self._spill_dir is None:
            return
        import shutil

        snapshot_dir = self._spill_dir / f"snapshot-{fingerprint}"
        if snapshot_dir.exists():
            shutil.rmtree(snapshot_dir, ignore_errors=True)
        try:
            (self._spill_dir / f"dataset-{fingerprint}.csv").unlink(
                missing_ok=True
            )
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> DatasetEntry:
        """The entry for ``fingerprint`` (metadata even if evicted).

        Counts one hit — this is the request-level lookup (job
        submission, ``GET /datasets/{fp}``).  Internal plumbing uses
        :meth:`_touch` so one request never double-counts.
        """
        entry = self._touch(fingerprint)
        entry.hits += 1
        return entry

    def resolve(self, fingerprint: str) -> str:
        """The *current* fingerprint for ``fingerprint``, following appends.

        A client that registered (or last appended to) a dataset may
        still hold a fingerprint that later appends superseded; aliases
        map each superseded version to its successor so such requests
        land on the live entry.  Unknown fingerprints are returned
        unchanged — the caller's lookup raises the usual typed error.
        Aliases live in memory only: after a restart, superseded
        fingerprints are gone and clients use the fingerprint returned
        by their last append.
        """
        with self._lock:
            seen = {fingerprint}
            current = fingerprint
            while current not in self._entries:
                successor = self._aliases.get(current)
                if successor is None or successor in seen:
                    return fingerprint
                seen.add(successor)
                current = successor
            return current

    def _touch(self, fingerprint: str) -> DatasetEntry:
        """Look up + refresh LRU order without counting a hit.

        Superseded fingerprints resolve to their current version, so
        every lookup path (jobs, HTTP GET, hydration specs) transparently
        follows the append chain.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = self._entries.get(self.resolve(fingerprint))
            if entry is None:
                raise UnknownDatasetError(
                    f"no dataset registered with fingerprint {fingerprint!r}"
                )
            self._entries.move_to_end(entry.fingerprint)
            return entry

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[DatasetEntry]:
        """All entries, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def fingerprints(self) -> list[str]:
        """All registered fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())

    # ------------------------------------------------------------------
    # Cluster support (front-end/worker split)
    # ------------------------------------------------------------------
    def hydration_spec(self, fingerprint: str) -> dict:
        """Hydration *references* for a worker process — never the data.

        The cluster dispatcher ships this dict to the shard's owning
        worker, which rebuilds the relation locally via
        :func:`repro.relations.persist.hydrate_relation`: columnar
        snapshot first (zero-parse), CSV source as the fallback.
        Raises :class:`~repro.errors.UnknownDatasetError` for unknown
        fingerprints.  Counts an LRU touch but no hit — the request
        already paid its hit at submission.
        """
        entry = self._touch(fingerprint)
        snapshot_dir: str | None = None
        if self._snapshots_enabled:
            candidate = self._snapshot_path(entry.fingerprint)
            if (candidate / META_FILE).exists():
                snapshot_dir = str(candidate)
        return {
            "fingerprint": entry.fingerprint,
            "snapshot_dir": snapshot_dir,
            "source": entry.source,
            "chunk_rows": entry.chunk_rows,
        }

    def note_remote_outcome(
        self, fingerprint: str, *, ok: bool, reason: str | None = None
    ) -> None:
        """Reflect a worker-side hydrate outcome on the entry's state.

        In cluster mode the front end never materializes the relation
        itself, so degradation (source vanished/mutated, snapshot
        corrupt — discovered *in the worker*) is reported back here to
        keep ``GET /datasets`` and ``/healthz`` truthful.  A later
        worker success heals the flag, mirroring the in-process path.
        Unknown fingerprints are ignored (the dataset may have been
        dropped while the job was in flight).
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            if ok:
                entry.degraded = False
                entry.degraded_reason = None
            else:
                entry.degraded = True
                entry.degraded_reason = (
                    reason or "worker-side hydration failed"
                )
                self.last_degrade_at = time.monotonic()

    def relation(self, fingerprint: str) -> Relation:
        """The dataset's relation, re-ingesting from source if evicted.

        A failed re-ingest (source vanished, unreadable, or mutated)
        demotes the entry to a degraded metadata-only state and raises
        :class:`~repro.errors.DatasetDegradedError`; later calls keep
        retrying the source, so a restored file heals the entry.
        """
        entry = self._touch(fingerprint)
        with entry._lock:  # one reload per evicted dataset, not per caller
            if entry.relation is not None:
                return entry.relation
            # Snapshot first: a zero-parse mmap of the code arrays.  A
            # missing/corrupt snapshot falls through to the CSV source
            # (the corrupt one is quarantined by _load_snapshot_for).
            load_started = time.perf_counter()
            relation = self._load_snapshot_for(entry)
            if relation is not None:
                self._h_snapshot_load.observe(time.perf_counter() - load_started)
            reload_source = "snapshot"
            if relation is None:
                if entry.source is None:
                    self._degrade(
                        entry,
                        "evicted with no source to re-ingest from (inline "
                        "upload without a spill dir)",
                    )
                    raise DatasetDegradedError(
                        f"dataset {fingerprint!r} is degraded: evicted with no "
                        "source to re-ingest from (inline upload without a "
                        "spill dir); re-register it"
                    )
                try:
                    self._faults.check("registry.reingest")
                    relation = self._ingest(entry.source, entry.chunk_rows)
                except Exception as exc:
                    self._degrade(entry, f"re-ingest from {entry.source} failed: {exc}")
                    raise DatasetDegradedError(
                        f"dataset {fingerprint!r} is degraded: re-ingesting "
                        f"from {entry.source} failed: {exc}; restore the source "
                        "or re-register the dataset"
                    ) from exc
                if relation.fingerprint() != fingerprint:
                    self._degrade(
                        entry,
                        f"source {entry.source} changed on disk "
                        f"(fingerprint {relation.fingerprint()!r})",
                    )
                    raise DatasetDegradedError(
                        f"source {entry.source} changed on disk: re-ingested "
                        f"fingerprint {relation.fingerprint()!r} != registered "
                        f"{fingerprint!r}; re-register the dataset"
                    )
                reload_source = "csv"
            with self._lock:
                entry.relation = relation
                entry.resident_bytes = resident_bytes(relation)
                entry.reloads += 1
                entry.reload_source = reload_source
                if reload_source == "snapshot":
                    self._c_snapshot_reloads.inc()
                else:
                    self._c_csv_reloads.inc()
                entry.degraded = False  # a good source heals the entry
                entry.degraded_reason = None
                self._entries.move_to_end(fingerprint)
                self._evict_over_budget()
            if reload_source == "csv":
                # Heal a missing or just-quarantined snapshot from the
                # freshly verified relation.
                self._maybe_write_snapshot(entry, relation)
            return relation

    def _degrade(self, entry: DatasetEntry, reason: str) -> None:
        """Demote an entry to metadata-only (caller holds ``entry._lock``)."""
        with self._lock:
            entry.degraded = True
            entry.degraded_reason = reason
            self.last_degrade_at = time.monotonic()

    def engine(self, fingerprint: str) -> EntropyEngine:
        """The dataset's resident exact entropy engine (shared memo)."""
        return EntropyEngine.for_relation(self.relation(fingerprint))

    # ------------------------------------------------------------------
    # Eviction + stats
    # ------------------------------------------------------------------
    def total_resident_bytes(self) -> int:
        with self._lock:
            return sum(
                e.resident_bytes for e in self._entries.values() if e.resident
            )

    def degraded_count(self) -> int:
        """How many entries are currently metadata-only and unreloadable."""
        with self._lock:
            return sum(e.degraded for e in self._entries.values())

    def _evict_over_budget(self) -> None:
        """Drop LRU relations until within budget (caller holds the lock).

        The most recently touched dataset is never evicted, even when it
        alone exceeds the budget — serving the request at hand beats
        thrashing.
        """
        if self._budget is None:
            return
        resident = [e for e in self._entries.values() if e.resident]
        total = sum(e.resident_bytes for e in resident)
        # OrderedDict order is LRU → MRU; spare the last resident entry.
        for entry in resident[:-1]:
            if total <= self._budget:
                break
            # The relation is about to drop with its memoized engine;
            # spill the memo beside the snapshot so a later reload
            # comes back warm.
            self._spill_engine_memo(entry)
            entry.relation = None
            total -= entry.resident_bytes
            self._c_evictions.inc()

    def stats(self, *, max_age_s: float = 0.0) -> dict:
        """JSON-ready registry summary (part of ``GET /stats``).

        Assembling the document walks every resident entry and its
        engine's ``cache_info()`` under the registry lock — cheap once,
        but a monitoring poller hammering ``/stats`` would contend with
        the serving path.  With ``max_age_s > 0`` one assembled document
        is reused for that long, and when the lock is held by someone
        else (a mine touching the registry, an append re-keying an
        entry) a stale cached document is served **without blocking**
        rather than queueing behind the serving path.  Callers must
        treat the returned dict as read-only.
        """
        now = time.monotonic()
        cached = self._stats_cache
        if cached is not None and now - cached[0] < max_age_s:
            return cached[1]
        blocking = cached is None  # first ever call must produce something
        if not self._lock.acquire(blocking=blocking):
            return cached[1]  # lock contended: stale beats blocking
        try:
            resident = [e for e in self._entries.values() if e.resident]
            view = {
                "datasets": len(self._entries),
                "resident": len(resident),
                "resident_bytes": sum(e.resident_bytes for e in resident),
                "memory_budget_bytes": self._budget,
                "evictions": self.evictions,
                "degraded": sum(e.degraded for e in self._entries.values()),
                "appends": self.appends,
                "append_noops": self.append_noops,
                "append_rows_added": self.append_rows_added,
                "aliases": len(self._aliases),
                "snapshots_enabled": self._snapshots_enabled,
                "snapshot_writes": self.snapshot_writes,
                "snapshot_write_failures": self.snapshot_write_failures,
                "snapshot_reloads": self.snapshot_reloads,
                "csv_reloads": self.csv_reloads,
                "snapshot_quarantined": self.snapshot_quarantined,
                "restored_from_snapshot": self.restored_from_snapshot,
                "memo_spills": self.memo_spills,
                "memo_entries_restored": self.memo_entries_restored,
                "engines": {
                    e.fingerprint: e.relation._engine.cache_info()
                    for e in resident
                    if e.relation._engine is not None
                },
            }
        finally:
            self._lock.release()
        self._stats_cache = (now, view)
        return view

"""Service operations: canonical parameters + the compute behind jobs.

One module owns the mapping from an HTTP job request — ``operation`` +
free-form ``params`` — to the JSON report the CLI would have produced
for the same work, so the service's responses validate against the same
shared schema (:func:`repro.factorize.report.validate_report`) and can
be consumed by the same tooling.

``canonicalize_params`` is what makes the result cache effective: it
fills every omitted knob with its default, rejects unknown keys, and
drops execution-only knobs (``workers``) that cannot change the result,
so all spellings of the same computation share one cache key.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core.analysis import analyze
from repro.core.evalcontext import EvalContext
from repro.discovery.miner import mine_jointree
from repro.discovery.strategies import available_strategies
from repro.errors import ServiceError
from repro.factorize.pipeline import decompose
from repro.factorize.report import base_report
from repro.info.backends import available_backends, make_backend
from repro.info.engine import EntropyEngine
from repro.jointrees.build import jointree_from_schema
from repro.relations.relation import Relation
from repro.service.faults import DISABLED, FaultPlan

OPERATIONS = ("mine", "analyze", "decompose")

#: Result-shaping defaults per operation.  ``None`` marks "no value";
#: ``schema`` is required for analyze, optional for decompose (mining
#: runs when absent), and meaningless for mine.
_COMMON_DEFAULTS: dict[str, object] = {
    "backend": "exact",
    "chunk_rows": None,
}
_MINING_DEFAULTS: dict[str, object] = {
    "strategy": "recursive",
    "threshold": 1e-9,
    "max_separator": 2,
    "seed": 0,
}
_PARAM_DEFAULTS: dict[str, dict[str, object]] = {
    "mine": {**_COMMON_DEFAULTS, **_MINING_DEFAULTS},
    "analyze": {**_COMMON_DEFAULTS, "schema": None, "delta": None},
    "decompose": {**_COMMON_DEFAULTS, **_MINING_DEFAULTS, "schema": None},
}

#: Accepted but excluded from the cache key.  ``workers`` (process
#: sharding) cannot change the mined result, only its speed.
#: ``deadline`` *can* change the result — but deadline-affected
#: (partial/timeout) outcomes are never cached, so every *cached*
#: report is deadline-independent and may be shared across deadline
#: spellings; the job layer handles both (see ``JobQueue.submit``).
_EXECUTION_ONLY = ("workers", "deadline")


def parse_schema_text(text: str) -> list[set[str]]:
    """Parse ``"A,B;B,C"`` into bags (the CLI's ``--schema`` syntax)."""
    from repro.cli import _parse_schema

    return _parse_schema(text)


def canonicalize_params(operation: str, params: dict | None) -> dict:
    """Normalize job parameters into their canonical, cache-keyable form.

    Fills defaults, validates names/types/choices, and sorts nothing —
    the cache serializes with ``sort_keys`` — but does *not* include
    execution-only knobs.  Raises :class:`~repro.errors.ServiceError`
    on anything malformed, which the HTTP layer maps to a 400.
    """
    if operation not in OPERATIONS:
        raise ServiceError(
            f"unknown operation {operation!r}; expected one of "
            + ", ".join(OPERATIONS)
        )
    params = dict(params or {})
    defaults = _PARAM_DEFAULTS[operation]
    unknown = set(params) - set(defaults) - set(_EXECUTION_ONLY)
    if unknown:
        raise ServiceError(
            f"unknown parameter(s) for {operation}: {sorted(unknown)}; "
            f"accepted: {sorted(defaults) + sorted(_EXECUTION_ONLY)}"
        )
    canonical = dict(defaults)
    for key in defaults:
        if key in params and params[key] is not None:
            canonical[key] = params[key]

    backend = canonical["backend"]
    if backend not in available_backends():
        raise ServiceError(
            f"unknown backend {backend!r}; expected one of "
            + ", ".join(available_backends())
        )
    if canonical["chunk_rows"] is not None:
        chunk_rows = canonical["chunk_rows"]
        if not isinstance(chunk_rows, int) or isinstance(chunk_rows, bool) or chunk_rows < 1:
            raise ServiceError(
                f"chunk_rows must be a positive integer, got {chunk_rows!r}"
            )
        if backend == "exact":
            # chunk_rows only sizes the sketch backend's streaming
            # passes (ingestion chunking is a dataset-registration knob,
            # not a job knob): moot for exact, so reset it — otherwise
            # identical computations would split across cache entries.
            canonical["chunk_rows"] = None
    if "strategy" in canonical and canonical["strategy"] not in available_strategies():
        raise ServiceError(
            f"unknown strategy {canonical['strategy']!r}; expected one of "
            + ", ".join(available_strategies())
        )
    for name in ("threshold", "delta"):
        value = canonical.get(name)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceError(f"{name} must be a number, got {value!r}")
        canonical[name] = float(value)
    if "seed" in canonical:
        seed = canonical["seed"]
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ServiceError(f"seed must be an integer, got {seed!r}")
    if "max_separator" in canonical:
        max_separator = canonical["max_separator"]
        if (
            isinstance(max_separator, bool)
            or not isinstance(max_separator, int)
            or max_separator < 1
        ):
            raise ServiceError(
                f"max_separator must be a positive integer, got {max_separator!r}"
            )
    if "schema" in canonical and canonical["schema"] is not None:
        if not isinstance(canonical["schema"], str):
            raise ServiceError(
                f"schema must be a string like 'A,C;B,C', got "
                f"{canonical['schema']!r}"
            )
        try:
            parse_schema_text(canonical["schema"])  # fail fast on garbage
        except Exception as exc:
            raise ServiceError(f"bad schema parameter: {exc}") from exc
    if operation == "analyze" and canonical["schema"] is None:
        raise ServiceError("analyze requires a 'schema' parameter")
    if operation == "decompose" and canonical["schema"] is not None:
        # A user schema makes every mining knob moot; canonical form
        # resets them so "schema + default knobs" and "schema alone"
        # share a cache entry instead of conflicting (CLI rejects the
        # combination outright; the service just ignores the moot knobs).
        for name in _MINING_DEFAULTS:
            canonical[name] = _MINING_DEFAULTS[name]
    return canonical


def _resolve_backend(canonical: dict):
    if canonical["backend"] == "exact":
        return None
    return make_backend(canonical["backend"], chunk_rows=canonical["chunk_rows"])


def _mine_with_fallback(
    relation: Relation,
    canonical: dict,
    backend,
    *,
    workers: int | None,
    deadline_at: float | None,
    faults: FaultPlan,
):
    """Mine, degrading from exact to the sketch backend on ``MemoryError``.

    Graceful degradation: an exact mine that exhausts memory (real or
    injected via the ``jobs.oom`` fault site) is retried once on the
    bounded-memory sketch backend instead of failing the job.  Returns
    ``(mined, degradation_reason)`` — the reason is ``None`` when the
    primary attempt succeeded, and the job layer never caches a
    degraded (approximate-when-exact-was-asked-for) report.
    """
    try:
        faults.check("jobs.oom")
        return (
            mine_jointree(
                relation,
                threshold=canonical["threshold"],
                max_separator_size=canonical["max_separator"],
                strategy=canonical["strategy"],
                workers=workers,
                deadline_at=deadline_at,
                seed=canonical["seed"],
                backend=backend,
            ),
            None,
        )
    except MemoryError as exc:
        if canonical["backend"] != "exact":
            # Already on the bounded-memory backend: nothing cheaper to
            # fall back to, so surface a typed error instead of looping.
            raise ServiceError(
                f"mining ran out of memory on the "
                f"{canonical['backend']!r} backend: {exc}"
            ) from exc
        reason = (
            f"exact mine ran out of memory ({exc}); "
            "fell back to the sketch backend"
        )
        fallback = make_backend("sketch", chunk_rows=canonical["chunk_rows"])
        mined = mine_jointree(
            relation,
            threshold=canonical["threshold"],
            max_separator_size=canonical["max_separator"],
            strategy=canonical["strategy"],
            workers=workers,
            deadline_at=deadline_at,
            seed=canonical["seed"],
            backend=fallback,
        )
        return mined, reason


def _span(timings, name: str):
    """A stage span on ``timings``, or a no-op when telemetry is off."""
    return timings.span(name) if timings is not None else nullcontext()


def run_operation(
    relation: Relation,
    operation: str,
    canonical: dict,
    *,
    deadline_at: float | None = None,
    workers: int | None = None,
    faults: FaultPlan | None = None,
    timings=None,
) -> dict:
    """Execute one canonical operation; return its CLI-shaped JSON report.

    ``deadline_at`` (absolute ``time.monotonic()``) bounds the mining
    search via the context plumbing; when mining runs out of time the
    payload is marked ``"partial": true`` (and the job layer withholds
    it from the cache).  ``workers`` requests fork-pool split scoring
    inside this worker.  ``faults`` threads the chaos harness through
    the compute path (``jobs.oom``); an exact mine that runs out of
    memory degrades to the sketch backend and the payload is marked
    ``"degraded": true`` (also withheld from the cache).  ``timings``
    (a :class:`~repro.service.telemetry.StageTimings`, or ``None``)
    collects per-engine-stage spans — ``mine`` / ``analyze`` /
    ``materialize`` — for the request's timeline.
    """
    start = time.perf_counter()
    backend = _resolve_backend(canonical)
    faults = faults if faults is not None else DISABLED
    # Sampled immediately after each mining call: the deadline bounds the
    # *search*, so time spent afterwards (report assembly, materializing
    # a decomposition) must not retroactively mark a complete result
    # partial.
    mining_ran_out = False
    degradation: str | None = None
    if operation == "mine":
        with _span(timings, "mine"):
            mined, degradation = _mine_with_fallback(
                relation,
                canonical,
                backend,
                workers=workers,
                deadline_at=deadline_at,
                faults=faults,
            )
        mining_ran_out = (
            deadline_at is not None and time.monotonic() >= deadline_at
        )
        payload = base_report(
            command="mine",
            strategy=canonical["strategy"],
            j_measure=mined.j_value,
            rho=mined.rho,
            wall_time_s=time.perf_counter() - start,
            n_rows=len(relation),
            n_cols=relation.schema.arity,
        )
        payload["bags"] = sorted(sorted(bag) for bag in mined.bags)
        payload["threshold"] = canonical["threshold"]
    elif operation == "analyze":
        tree = jointree_from_schema(parse_schema_text(canonical["schema"]))
        context = (
            EvalContext.for_relation(
                relation, engine=EntropyEngine(relation, backend=backend)
            )
            if backend is not None
            else None
        )
        with _span(timings, "analyze"):
            report = analyze(
                relation, tree, delta=canonical["delta"], context=context
            )
        payload = base_report(
            command="analyze",
            strategy=None,
            j_measure=report.j_entropy,
            rho=report.rho,
            wall_time_s=time.perf_counter() - start,
            n_rows=report.n,
            n_cols=report.num_attributes,
        )
        payload.update(report.to_dict())
    else:  # decompose
        strategy = None
        if canonical["schema"] is not None:
            tree = jointree_from_schema(parse_schema_text(canonical["schema"]))
        else:
            strategy = canonical["strategy"]
            with _span(timings, "mine"):
                mined, degradation = _mine_with_fallback(
                    relation,
                    canonical,
                    backend,
                    workers=workers,
                    deadline_at=deadline_at,
                    faults=faults,
                )
            mining_ran_out = (
                deadline_at is not None and time.monotonic() >= deadline_at
            )
            tree = mined.jointree
        with _span(timings, "materialize"):
            decomposition = decompose(relation, tree)
        report = decomposition.report
        payload = base_report(
            command="decompose",
            strategy=strategy,
            j_measure=report.j_measure,
            rho=report.rho,
            wall_time_s=time.perf_counter() - start,
            n_rows=report.n_rows,
            n_cols=report.n_cols,
        )
        payload.update(report.to_dict())
    payload["backend"] = canonical["backend"]
    if degradation is not None:
        # The exact computation the caller asked for did not happen;
        # flag it loudly and report the backend that actually ran.
        payload["backend"] = "sketch"
        payload["degraded"] = True
        payload["degradation_reason"] = degradation
    if mining_ran_out:
        # Mining is anytime-aware: the report is the best-so-far schema,
        # not necessarily the one an unbounded search would return.
        payload["partial"] = True
    return payload

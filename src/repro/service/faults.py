"""Deterministic fault injection for the service layer (chaos harness).

A :class:`FaultPlan` is a seeded, declarative list of rules deciding
when named **injection sites** inside the service misbehave.  The plan
is off by default — ``FaultPlan.from_spec(None)`` returns a shared
disabled instance whose hooks are no-op attribute lookups, so the
production hot path pays (almost) nothing — and is only armed
explicitly via :class:`~repro.service.config.ServiceConfig.fault_plan`
or the ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a path
to a JSON file).

A spec looks like::

    {
      "seed": 42,
      "rules": [
        {"site": "jobs.worker_crash", "times": 1},
        {"site": "http.drop", "probability": 0.25, "times": 5},
        {"site": "jobs.slow", "delay_s": 0.2}
      ]
    }

Rule fields: ``site`` (required, see the table below), ``probability``
(chance each eligible evaluation fires, default 1.0), ``times`` (max
fires, default unlimited; 0 keeps the framework armed without ever
firing — the "enabled but idle" overhead-benchmark mode), ``skip``
(ignore the first k eligible evaluations, so "crash the 3rd job" is
``{"skip": 2, "times": 1}``), and ``delay_s`` (sleep before acting, the
payload of the slow/stall sites).

Injection sites and their effects:

==========================  ==================================================
site                        effect when fired
==========================  ==================================================
``cache.spill_read_corrupt``  a spill read sees torn/garbage content
``cache.spill_write_torn``    the just-written spill file is truncated on
                              disk (as if a crash tore it post-rename)
``registry.reingest``         re-ingesting an evicted dataset raises (source
                              vanished mid-read)
``registry.snapshot_load``    loading an evicted dataset's columnar snapshot
                              raises (forces the CSV re-ingest fallback)
``jobs.worker_crash``         the claimed worker thread dies mid-job
                              (``WorkerCrashInjection``, a BaseException that
                              sails past ``except Exception``)
``jobs.slow``                 the job sleeps ``delay_s`` before computing
``jobs.oom``                  the exact mine raises ``MemoryError``
                              (triggers the sketch-backend fallback)
``http.drop``                 the connection is closed with no response
``http.stall``                the response is delayed by ``delay_s``
``http.truncate``             only half the response body is sent
``cluster.dispatch``          the front end's socket send to a worker
                              process fails (as if the connection died
                              mid-frame)
``cluster.worker_exit``       a worker **process** dies abruptly mid-job
                              (``os._exit``; exercises respawn + shard
                              rehoming, the process-level analogue of
                              ``jobs.worker_crash``)
``telemetry.log_write``       the structured-log sink misbehaves: stalls
                              ``delay_s`` per line (slow sink) or, with no
                              delay, raises (dead sink).  Fired on the log
                              **writer thread** — the bounded non-blocking
                              writer must drop-and-count, never stall a
                              request
==========================  ==================================================

Determinism: all probability draws come from one seeded
``random.Random``; the same spec against the same request sequence
fires the same faults.  Every evaluation and fire is counted per site
(:meth:`FaultPlan.stats`, surfaced under ``/stats`` → ``faults``).
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

from repro.errors import InjectedFaultError, ServiceError

#: Every site the service's code threads a hook through.  Unknown sites
#: in a spec are rejected up front — a typo'd rule that can never fire
#: would otherwise silently void a chaos test.
KNOWN_SITES = (
    "cache.spill_read_corrupt",
    "cache.spill_write_torn",
    "registry.reingest",
    "registry.snapshot_load",
    "jobs.worker_crash",
    "jobs.slow",
    "jobs.oom",
    "http.drop",
    "http.stall",
    "http.truncate",
    "cluster.dispatch",
    "cluster.worker_exit",
    "telemetry.log_write",
)


class WorkerCrashInjection(BaseException):
    """Simulated death of a worker thread.

    Deliberately a ``BaseException`` so it escapes the job runner's
    ``except Exception`` catch-all exactly like a real thread-killing
    condition would, and is only caught by the worker supervisor.
    """


class _Rule:
    """One parsed fault rule with its firing state."""

    __slots__ = ("site", "probability", "times", "skip", "delay_s",
                 "evaluated", "fired", "skipped")

    def __init__(self, raw: dict, index: int) -> None:
        if not isinstance(raw, dict):
            raise ServiceError(f"fault rule #{index} must be an object, got {raw!r}")
        unknown = set(raw) - {"site", "probability", "times", "skip", "delay_s"}
        if unknown:
            raise ServiceError(
                f"fault rule #{index} has unknown field(s) {sorted(unknown)}"
            )
        site = raw.get("site")
        if site not in KNOWN_SITES:
            raise ServiceError(
                f"fault rule #{index} names unknown site {site!r}; known: "
                + ", ".join(KNOWN_SITES)
            )
        self.site = site
        self.probability = float(raw.get("probability", 1.0))
        if not 0.0 <= self.probability <= 1.0:
            raise ServiceError(
                f"fault rule #{index}: probability must be in [0, 1], got "
                f"{self.probability}"
            )
        times = raw.get("times")
        if times is not None and (not isinstance(times, int) or times < 0):
            raise ServiceError(
                f"fault rule #{index}: times must be a non-negative integer, "
                f"got {times!r}"
            )
        self.times = times  # None: unlimited
        self.skip = int(raw.get("skip", 0))
        if self.skip < 0:
            raise ServiceError(
                f"fault rule #{index}: skip must be >= 0, got {self.skip}"
            )
        self.delay_s = float(raw.get("delay_s", 0.0))
        if self.delay_s < 0:
            raise ServiceError(
                f"fault rule #{index}: delay_s must be >= 0, got {self.delay_s}"
            )
        self.evaluated = 0
        self.fired = 0
        self.skipped = 0

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultPlan:
    """Seeded, declarative fault schedule for the service's injection sites."""

    def __init__(self, spec: dict | None = None) -> None:
        spec = dict(spec or {})
        unknown = set(spec) - {"seed", "rules"}
        if unknown:
            raise ServiceError(
                f"fault plan has unknown field(s) {sorted(unknown)}; "
                "expected 'seed' and 'rules'"
            )
        rules = spec.get("rules", [])
        if not isinstance(rules, list):
            raise ServiceError(f"fault plan 'rules' must be a list, got {rules!r}")
        self._rules = [_Rule(raw, i) for i, raw in enumerate(rules)]
        self._by_site: dict[str, list[_Rule]] = {}
        for rule in self._rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self.seed = int(spec.get("seed", 0))
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        #: Armed at all (the disabled singleton overrides this to False).
        self.enabled = bool(self._rules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: "dict | str | FaultPlan | None") -> "FaultPlan":
        """Resolve a plan from a dict, inline JSON, a JSON file path,
        a ready plan, or ``None``/empty (the shared disabled plan)."""
        if spec is None or spec == "":
            return DISABLED
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text.startswith("{"):
                try:
                    text = Path(text).read_text()
                except OSError as exc:
                    raise ServiceError(
                        f"cannot read fault plan file {spec!r}: {exc}"
                    ) from exc
            try:
                spec = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ServiceError(
                f"fault plan must be a JSON object, got {type(spec).__name__}"
            )
        return cls(spec)

    # ------------------------------------------------------------------
    # Hooks (called from the injection sites)
    # ------------------------------------------------------------------
    def fire(self, site: str) -> "_Rule | None":
        """Decide whether ``site`` misbehaves now; the caller acts on it.

        Returns the fired rule (the caller reads ``delay_s`` etc.) or
        ``None``.  Deterministic given the seed and call sequence.
        """
        if not self.enabled:
            return None
        rules = self._by_site.get(site)
        if not rules:
            return None
        with self._lock:
            for rule in rules:
                # Counted even when exhausted (or times=0, the armed-idle
                # benchmark mode): `evaluated` measures hook traffic, not
                # eligibility.
                rule.evaluated += 1
                if rule.exhausted():
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                if rule.skipped < rule.skip:
                    rule.skipped += 1
                    continue
                rule.fired += 1
                return rule
        return None

    def check(self, site: str) -> None:
        """Fire-and-act hook for sites with a standard effect.

        Sleeps ``delay_s`` first when set, then raises the site's
        canonical exception (worker crash, OOM, re-ingest failure);
        pure-delay sites just return after sleeping.
        """
        rule = self.fire(site)
        if rule is None:
            return
        if rule.delay_s:
            time.sleep(rule.delay_s)
        if site == "jobs.worker_crash":
            raise WorkerCrashInjection(f"injected worker crash at {site}")
        if site == "cluster.worker_exit":
            # Raised inside the worker *process*; its main loop catches
            # this and dies via os._exit so the front end sees a real
            # process death (EOF on the socket, non-zero exit status).
            raise WorkerCrashInjection(f"injected worker exit at {site}")
        if site == "cluster.dispatch":
            raise InjectedFaultError(
                f"injected dispatch failure at {site}: worker socket died "
                "mid-frame"
            )
        if site == "jobs.oom":
            raise MemoryError(f"injected out-of-memory at {site}")
        if site == "registry.reingest":
            raise InjectedFaultError(
                f"injected re-ingest failure at {site}: source vanished mid-read"
            )
        if site == "registry.snapshot_load":
            raise InjectedFaultError(
                f"injected snapshot-load failure at {site}: snapshot unreadable"
            )
        if site == "telemetry.log_write" and not rule.delay_s:
            # With delay_s the site is a pure slow sink (the sleep above);
            # without it, the sink is dead and every write raises.
            raise InjectedFaultError(
                f"injected log-sink failure at {site}: write refused"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def to_spec(self) -> dict:
        """Reconstruct the JSON spec this plan was built from.

        Used by the cluster supervisor to ship the plan to worker
        subprocesses (each worker arms its own seeded copy for the
        worker-side sites).  Firing state is *not* carried — a spec
        round-trips to a fresh plan.
        """
        rules = []
        for rule in self._rules:
            raw: dict = {"site": rule.site}
            if rule.probability != 1.0:
                raw["probability"] = rule.probability
            if rule.times is not None:
                raw["times"] = rule.times
            if rule.skip:
                raw["skip"] = rule.skip
            if rule.delay_s:
                raw["delay_s"] = rule.delay_s
            rules.append(raw)
        return {"seed": self.seed, "rules": rules}

    def stats(self) -> dict:
        """JSON-ready plan summary (``/stats`` → ``faults``)."""
        with self._lock:
            sites: dict[str, dict] = {}
            for rule in self._rules:
                agg = sites.setdefault(
                    rule.site, {"evaluated": 0, "fired": 0, "remaining": 0}
                )
                agg["evaluated"] += rule.evaluated
                agg["fired"] += rule.fired
                if rule.times is None:
                    agg["remaining"] = None
                elif agg["remaining"] is not None:
                    agg["remaining"] += rule.times - rule.fired
            return {
                "enabled": self.enabled,
                "seed": self.seed,
                "rules": len(self._rules),
                "total_fired": sum(r.fired for r in self._rules),
                "sites": sites,
            }


class _DisabledPlan(FaultPlan):
    """The shared always-off plan: hooks are constant-time no-ops."""

    def __init__(self) -> None:
        super().__init__(None)
        self.enabled = False

    def fire(self, site: str) -> None:  # noqa: ARG002 - uniform signature
        return None

    def check(self, site: str) -> None:  # noqa: ARG002
        return None


#: Shared disabled plan — what every component defaults to.
DISABLED = _DisabledPlan()

"""HTTP/JSON API: a stdlib ``ThreadingHTTPServer`` over the service core.

Routes (all request/response bodies are JSON):

=========================  ====================================================
``POST /datasets``         register a dataset: ``{"path": ...}`` (server-local
                           CSV) or ``{"csv": ...}`` (inline content), plus
                           optional ``"chunk_rows"`` for streamed ingestion.
                           201 with the dataset view (``"created": false``
                           when the fingerprint was already registered).
``GET /datasets``          list registered datasets (LRU → MRU order).
``GET /datasets/{fp}``     one dataset's view, or 404.
``POST /jobs``             submit work: ``{"fingerprint": ..., "operation":
                           "mine"|"analyze"|"decompose", "params": {...}}``.
                           200 with a finished job when served from cache,
                           202 with a queued/coalesced job otherwise, 503
                           when the queue is full (backpressure).
``POST /jobs/batch``       submit a vector of operations against one dataset
                           as a single queue unit: ``{"fingerprint": ...,
                           "operations": [{"operation": ..., "params": ...},
                           ...]}``.  200 when every item was answered from
                           the cache, 202 otherwise; per-item results land
                           under ``items`` in the job view.
``GET /jobs/{id}``         the job's state (+ ``result`` once done), or 404.
``GET /healthz``           liveness: ``{"status": "ok", ...}``.
``GET /stats``             cache hit-rates, registry residency/evictions,
                           queue/worker counters, per-dataset engine memos.
=========================  ====================================================

Errors are JSON too: ``{"error": "..."}`` with 400 (bad request), 404
(unknown dataset/job/route), 409 (degraded dataset — re-register to
heal), 503 (queue full or circuit breaker open, with a ``Retry-After``
header), or 500 (unexpected).  The handler threads do no compute beyond
registration ingest — jobs run on the worker pool, so slow mining never
starves the accept loop.

Chaos hooks: when a :class:`~repro.service.faults.FaultPlan` is armed,
``_send_json`` threads the ``http.drop`` (connection closed with no
response), ``http.stall`` (response delayed), and ``http.truncate``
(half the body, then close) sites — all *after* the request was
processed, which is exactly the window where client retries need
idempotency to be safe.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    CircuitOpenError,
    DatasetDegradedError,
    QueueFullError,
    ReproError,
    ServiceError,
    UnknownDatasetError,
)

#: Cap on request bodies (inline CSV uploads included): 64 MiB.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service instance for handlers."""

    daemon_threads = True

    def __init__(self, address, handler_class, service) -> None:
        self.service = service
        super().__init__(address, handler_class)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service's registry/cache/job queue."""

    server_version = "repro-ajd-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job

    @property
    def service(self):
        return self.server.service

    def _send_json(
        self, status: int, payload: dict, *, retry_after: float | None = None
    ) -> None:
        faults = self.service.faults
        truncate = False
        if faults.enabled:
            if faults.fire("http.drop"):
                # Chaos: the connection dies before any response byte.
                # The request WAS processed — the client's retry is what
                # the idempotency machinery must make safe.
                self.close_connection = True
                return
            stall = faults.fire("http.stall")
            if stall is not None and stall.delay_s:
                time.sleep(stall.delay_s)
            truncate = faults.fire("http.truncate") is not None
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            # Queue-full keeps the legacy fixed hint; breaker-open
            # advertises its actual remaining cooldown (rounded up —
            # Retry-After is integer seconds and "0" invites a hot loop).
            seconds = 1 if retry_after is None else max(1, math.ceil(retry_after))
            self.send_header("Retry-After", str(seconds))
        if truncate or self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if truncate:
            # Chaos: half the promised Content-Length, then close — the
            # client sees an IncompleteRead and must retry, not parse.
            self.close_connection = True
            self.wfile.write(body[: max(len(body) // 2, 1)])
            return
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        # Error paths cannot always prove the request body was consumed
        # (unknown route, oversized/garbled body), and an unread body on
        # a kept-alive HTTP/1.1 connection desyncs it — the leftover
        # bytes get parsed as the next request line.  Closing after any
        # error response is always legal and costs one reconnect.
        self.close_connection = True
        self._send_json(status, {"error": message}, retry_after=retry_after)

    def _read_json_body(self) -> dict:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length <= 0:
            raise ServiceError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _route(self) -> tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        try:
            parts = self._route()
            if parts == ("healthz",):
                self._send_json(200, self.service.health())
            elif parts == ("stats",):
                self._send_json(200, self.service.stats())
            elif parts == ("datasets",):
                self._send_json(
                    200,
                    {
                        "datasets": [
                            entry.describe()
                            for entry in self.service.registry.entries()
                        ]
                    },
                )
            elif len(parts) == 2 and parts[0] == "datasets":
                self._send_json(200, self.service.registry.get(parts[1]).describe())
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.jobs.get(parts[1]).describe())
            else:
                self._send_error_json(404, f"no such route: GET {self.path}")
        except (UnknownDatasetError, ServiceError) as exc:
            self._send_error_json(404, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            parts = self._route()
            if parts == ("datasets",):
                self._handle_register()
            elif parts == ("jobs",):
                self._handle_submit()
            elif parts == ("jobs", "batch"):
                self._handle_submit_batch()
            else:
                self._send_error_json(404, f"no such route: POST {self.path}")
        except QueueFullError as exc:
            self._send_error_json(503, str(exc))
        except CircuitOpenError as exc:
            self._send_error_json(503, str(exc), retry_after=exc.retry_after_s)
        except UnknownDatasetError as exc:
            self._send_error_json(404, str(exc))
        except DatasetDegradedError as exc:
            # Retrying cannot help: the dataset's source is gone or
            # changed.  409 (not 503) so resilient clients fail fast
            # with the typed message instead of burning their retries.
            self._send_error_json(409, str(exc))
        except ReproError as exc:
            # Bad CSVs, bad params, bad schemas: client errors, not 500s.
            self._send_error_json(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_register(self) -> None:
        body = self._read_json_body()
        chunk_rows = body.get("chunk_rows")
        if chunk_rows is not None and (
            isinstance(chunk_rows, bool)
            or not isinstance(chunk_rows, int)
            or chunk_rows < 1
        ):
            raise ServiceError(
                f"chunk_rows must be a positive integer, got {chunk_rows!r}"
            )
        if ("path" in body) == ("csv" in body):
            raise ServiceError(
                "register exactly one of 'path' (server-local CSV) or "
                "'csv' (inline content)"
            )
        if "path" in body:
            if not isinstance(body["path"], str):
                raise ServiceError(f"path must be a string, got {body['path']!r}")
            entry, created = self.service.registry.register_path(
                body["path"], chunk_rows=chunk_rows
            )
        else:
            if not isinstance(body["csv"], str):
                raise ServiceError(f"csv must be a string, got {body['csv']!r}")
            entry, created = self.service.registry.register_text(
                body["csv"],
                chunk_rows=chunk_rows,
                name=str(body.get("name", "inline")),
            )
        view = entry.describe()
        view["created"] = created
        self._send_json(201 if created else 200, view)

    def _handle_submit(self) -> None:
        body = self._read_json_body()
        fingerprint = body.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ServiceError("job body needs a string 'fingerprint'")
        operation = body.get("operation")
        if not isinstance(operation, str):
            raise ServiceError("job body needs a string 'operation'")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError(f"params must be a JSON object, got {params!r}")
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise ServiceError(
                f"idempotency_key must be a string, got {idempotency_key!r}"
            )
        job = self.service.jobs.submit(
            fingerprint, operation, params, idempotency_key=idempotency_key
        )
        self._send_json(200 if job.state == "done" else 202, job.describe())

    def _handle_submit_batch(self) -> None:
        body = self._read_json_body()
        fingerprint = body.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ServiceError("batch body needs a string 'fingerprint'")
        operations = body.get("operations")
        if not isinstance(operations, list):
            raise ServiceError(
                "batch body needs an 'operations' list of "
                '{"operation": ..., "params": ...} objects'
            )
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise ServiceError(
                f"idempotency_key must be a string, got {idempotency_key!r}"
            )
        job = self.service.jobs.submit_batch(
            fingerprint, operations, idempotency_key=idempotency_key
        )
        self._send_json(200 if job.state == "done" else 202, job.describe())

"""HTTP/JSON API: a stdlib ``ThreadingHTTPServer`` over the service core.

The API is versioned under ``/v1/``; the bare legacy paths (``/jobs``,
``/datasets``, ...) remain as **deprecated aliases** of the same
handlers (responses to them carry a ``Deprecation: true`` header).
Routing is a declarative table (:data:`ROUTES`) — method + path
pattern, with ``{placeholder}`` segments bound as handler arguments —
shared by both verbs, replacing the old per-verb if/elif ladders.

Routes (all request/response bodies are JSON):

==================================  ==========================================
``POST /v1/datasets``               register a dataset: ``{"path": ...}``
                                    (server-local CSV) or ``{"csv": ...}``
                                    (inline content), plus optional
                                    ``"chunk_rows"`` for streamed ingestion.
                                    201 with the dataset view (``"created":
                                    false`` when the fingerprint was already
                                    registered).
``POST /v1/datasets/{fp}/append``   delta ingest: ``{"rows": [[...], ...]}``
                                    or ``{"csv": ...}`` or ``{"path": ...}``
                                    appends rows to the registered dataset,
                                    returning the new fingerprint, the
                                    version chain, and the cache-revalidation
                                    summary.  200 always (a fully
                                    deduplicated delta is a no-op with
                                    ``"changed": false``).
``GET /v1/datasets``                list registered datasets (LRU → MRU).
``GET /v1/datasets/{fp}``           one dataset's view, or 404.  Superseded
                                    fingerprints (pre-append versions) are
                                    followed to the current entry.
``POST /v1/jobs``                   submit work: ``{"fingerprint": ...,
                                    "operation": "mine"|"analyze"|
                                    "decompose", "params": {...}}``.  200
                                    with a finished job when served from
                                    cache, 202 with a queued/coalesced job
                                    otherwise, 503 when the queue is full
                                    (backpressure).
``POST /v1/jobs/batch``             submit a vector of operations against one
                                    dataset as a single queue unit:
                                    ``{"fingerprint": ..., "operations":
                                    [{"operation": ..., "params": ...},
                                    ...]}``.  200 when every item was
                                    answered from the cache, 202 otherwise.
``GET /v1/jobs/{id}``               the job's state (+ ``result`` once
                                    done), or 404.
``GET /v1/healthz``                 liveness: ``{"status": "ok", ...}``.
``GET /v1/metrics``                 Prometheus text exposition (0.0.4) of
                                    every registered instrument, worker
                                    snapshots merged under ``worker_``.
``GET /v1/stats``                   cache hit-rates, registry residency,
                                    delta-ingest and revalidation counters,
                                    queue/worker/cluster stats.
==================================  ==========================================

Errors are a **typed envelope**, classified uniformly for both verbs by
:func:`classify_error`::

    {
      "error": {
        "code": "<machine-readable>",   # stable; see ERROR_CATALOG
        "message": "<human-readable>",
        "retryable": bool,              # whether a retry can succeed
        "retry_after_s": float | null   # hint when the server knows
      },
      "message": "<human-readable>"     # legacy-compat copy
    }

The code → status catalogue is :data:`ERROR_CATALOG`: ``bad_request``
(400), ``unknown_dataset`` / ``unknown_job`` / ``unknown_route`` (404),
``dataset_degraded`` (409, re-register to heal), ``queue_full`` /
``circuit_open`` (503, retryable, with a ``Retry-After`` header), and
``internal`` (500).  The handler threads do no compute beyond
registration/append ingest — jobs run on the worker pool, so slow
mining never starves the accept loop.

Observability: every response carries an ``X-Request-Id`` header (fresh
per exchange) and an ``X-Trace-Id`` (echoed from the request's
``X-Trace-Id`` header when it is a hex/dash token, freshly generated
otherwise).  Submits thread the trace id into the job, so the job's
log line — and the worker-process line, under cluster dispatch — share
it.  ``GET /v1/jobs/{id}`` adds a ``Server-Timing`` header with the
job's stage timeline once it has run.  Each request is observed into
the ``http_request_seconds`` histogram (labelled by method, route
*pattern*, status) and emitted as one structured log line.

Chaos hooks: when a :class:`~repro.service.faults.FaultPlan` is armed,
``_send_json`` threads the ``http.drop`` (connection closed with no
response), ``http.stall`` (response delayed), and ``http.truncate``
(half the body, then close) sites — all *after* the request was
processed, which is exactly the window where client retries need
idempotency to be safe.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    CircuitOpenError,
    DatasetDegradedError,
    QueueFullError,
    ReproError,
    ServiceError,
    UnknownDatasetError,
    UnknownJobError,
)
from repro.service.telemetry import new_request_id, new_trace_id

#: Cap on request bodies (inline CSV uploads included): 64 MiB.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: The current (only) API version segment.
API_VERSION = "v1"

#: Machine-readable error code → HTTP status.  Stable: clients switch on
#: these, tests pin them, and docs/service.md documents each one.
ERROR_CATALOG = {
    "bad_request": 400,
    "unknown_dataset": 404,
    "unknown_job": 404,
    "unknown_route": 404,
    "dataset_degraded": 409,
    "queue_full": 503,
    "circuit_open": 503,
    "internal": 500,
}

#: Declarative route table: (method, path pattern, handler attribute).
#: ``{name}`` segments match any one segment and are passed to the
#: handler positionally, in pattern order.  Every pattern is served both
#: under ``/v1/`` and bare (deprecated legacy alias).  Literal patterns
#: must precede placeholder patterns that would also match them.
ROUTES = (
    ("GET", ("healthz",), "_handle_healthz"),
    ("GET", ("stats",), "_handle_stats"),
    ("GET", ("metrics",), "_handle_metrics"),
    ("GET", ("datasets",), "_handle_list_datasets"),
    ("GET", ("datasets", "{fingerprint}"), "_handle_get_dataset"),
    ("GET", ("jobs", "{job_id}"), "_handle_get_job"),
    ("POST", ("datasets",), "_handle_register"),
    ("POST", ("datasets", "{fingerprint}", "append"), "_handle_append"),
    ("POST", ("jobs", "batch"), "_handle_submit_batch"),
    ("POST", ("jobs",), "_handle_submit"),
)


def _client_trace_id(headers) -> str | None:
    """A safe caller-supplied ``X-Trace-Id``, or ``None``.

    Anything that is not a short token of hex digits / dashes is
    discarded (it would otherwise flow verbatim into log lines and
    response headers).
    """
    raw = headers.get("X-Trace-Id")
    if not isinstance(raw, str):
        return None
    raw = raw.strip()
    if not (1 <= len(raw) <= 64):
        return None
    if all(c in "0123456789abcdefABCDEF-" for c in raw):
        return raw.lower()
    return None


def server_timing_value(stages: dict) -> str:
    """``stages`` (name → seconds) as a ``Server-Timing`` header value."""
    return ", ".join(
        f"{name};dur={float(seconds) * 1e3:.2f}"
        for name, seconds in stages.items()
        if isinstance(seconds, (int, float))
    )


def classify_error(exc: BaseException) -> tuple[int, str, bool, float | None]:
    """Map an exception to ``(status, code, retryable, retry_after_s)``.

    One ladder for every verb and endpoint — most-specific type first —
    so GET and POST can never disagree about what a degraded dataset or
    a full queue looks like on the wire.
    """
    if isinstance(exc, QueueFullError):
        return 503, "queue_full", True, None
    if isinstance(exc, CircuitOpenError):
        return 503, "circuit_open", True, exc.retry_after_s
    if isinstance(exc, UnknownJobError):
        return 404, "unknown_job", False, None
    if isinstance(exc, UnknownDatasetError):
        return 404, "unknown_dataset", False, None
    if isinstance(exc, DatasetDegradedError):
        # Retrying cannot help: the dataset's source is gone or changed.
        # 409 (not 503) so resilient clients fail fast with the typed
        # message instead of burning their retries.
        return 409, "dataset_degraded", False, None
    if isinstance(exc, ReproError):
        # Bad CSVs, bad params, bad schemas: client errors, not 500s.
        return 400, "bad_request", False, None
    return 500, "internal", False, None


def error_envelope(
    code: str,
    message: str,
    *,
    retryable: bool = False,
    retry_after_s: float | None = None,
) -> dict:
    """The typed error body (plus the legacy-compat ``message`` copy)."""
    return {
        "error": {
            "code": code,
            "message": message,
            "retryable": retryable,
            "retry_after_s": retry_after_s,
        },
        "message": message,
    }


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service instance for handlers."""

    daemon_threads = True
    # The stdlib default listen backlog (5) RSTs connection bursts well
    # below the knee the saturation probe measures; saturation must
    # degrade into latency, not into connection resets.
    request_queue_size = 128

    def __init__(self, address, handler_class, service) -> None:
        self.service = service
        super().__init__(address, handler_class)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service's registry/cache/job queue."""

    server_version = "repro-ajd-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job

    @property
    def service(self):
        return self.server.service

    def _send_json(
        self, status: int, payload: dict, *, retry_after: float | None = None
    ) -> None:
        self._status = status  # recorded even when chaos eats the response
        faults = self.service.faults
        truncate = False
        if faults.enabled:
            if faults.fire("http.drop"):
                # Chaos: the connection dies before any response byte.
                # The request WAS processed — the client's retry is what
                # the idempotency machinery must make safe.
                self.close_connection = True
                return
            stall = faults.fire("http.stall")
            if stall is not None and stall.delay_s:
                time.sleep(stall.delay_s)
            truncate = faults.fire("http.truncate") is not None
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._send_tracing_headers()
        if getattr(self, "_legacy_route", False):
            # Bare (unversioned) path: still served, but flagged so
            # clients can migrate to /v1/ before the alias is removed.
            self.send_header("Deprecation", "true")
        if status == 503:
            # Queue-full keeps the legacy fixed hint; breaker-open
            # advertises its actual remaining cooldown (rounded up —
            # Retry-After is integer seconds and "0" invites a hot loop).
            seconds = 1 if retry_after is None else max(1, math.ceil(retry_after))
            self.send_header("Retry-After", str(seconds))
        if truncate or self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if truncate:
            # Chaos: half the promised Content-Length, then close — the
            # client sees an IncompleteRead and must retry, not parse.
            self.close_connection = True
            self.wfile.write(body[: max(len(body) // 2, 1)])
            return
        self.wfile.write(body)

    def _send_tracing_headers(self) -> None:
        """``X-Request-Id`` (every response) + optional ``Server-Timing``."""
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        server_timing = getattr(self, "_server_timing", None)
        if server_timing:
            self.send_header("Server-Timing", server_timing)

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retryable: bool = False,
        retry_after: float | None = None,
    ) -> None:
        # Error paths cannot always prove the request body was consumed
        # (unknown route, oversized/garbled body), and an unread body on
        # a kept-alive HTTP/1.1 connection desyncs it — the leftover
        # bytes get parsed as the next request line.  Closing after any
        # error response is always legal and costs one reconnect.
        self.close_connection = True
        self._send_json(
            status,
            error_envelope(
                code, message, retryable=retryable, retry_after_s=retry_after
            ),
            retry_after=retry_after,
        )

    def _send_exception(self, exc: BaseException) -> None:
        """Classify + send: the one error path for every verb/endpoint."""
        status, code, retryable, retry_after = classify_error(exc)
        message = str(exc) if status != 500 else f"internal error: {exc}"
        self._send_error_json(
            status, code, message, retryable=retryable, retry_after=retry_after
        )

    def _read_json_body(self) -> dict:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length <= 0:
            raise ServiceError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _route(self) -> tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        parts = self._route()
        self._legacy_route = not (parts and parts[0] == API_VERSION)
        if not self._legacy_route:
            parts = parts[1:]
        # Per-request telemetry identity: the request id is always fresh
        # (one per HTTP exchange); the trace id is taken from the caller's
        # ``X-Trace-Id`` header when present so multi-request workflows
        # (submit, then poll) share one trace end to end.
        self._request_id = new_request_id()
        self._trace_id = _client_trace_id(self.headers) or new_trace_id()
        self._status = 0
        self._server_timing = None
        self._route_label = "unmatched"
        self._log_fields: dict = {}
        started = time.perf_counter()
        try:
            for route_method, pattern, handler_name in ROUTES:
                if route_method != method or len(pattern) != len(parts):
                    continue
                args = []
                for expected, actual in zip(pattern, parts):
                    if expected.startswith("{"):
                        args.append(actual)
                    elif expected != actual:
                        break
                else:
                    # The *pattern* (not the raw path) labels the metric,
                    # so per-job/per-dataset ids cannot explode the
                    # route label's cardinality.
                    self._route_label = "/".join(pattern)
                    getattr(self, handler_name)(*args)
                    return
            self._send_error_json(
                404, "unknown_route", f"no such route: {method} {self.path}"
            )
        except Exception as exc:
            self._send_exception(exc)
        finally:
            self._observe_request(method, time.perf_counter() - started)

    def _observe_request(self, method: str, elapsed_s: float) -> None:
        """Latency histogram sample + one structured log line per request."""
        tele = getattr(self.service, "telemetry", None)
        if tele is None or not tele.enabled:
            return
        status = str(self._status or 0)
        tele.http_latency.labels(method, self._route_label, status).observe(
            elapsed_s
        )
        tele.emit(
            "request",
            request_id=self._request_id,
            trace_id=self._trace_id,
            method=method,
            route=self._route_label,
            status=self._status,
            elapsed_s=round(elapsed_s, 6),
            **self._log_fields,
        )

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        self._send_json(200, self.service.health())

    def _handle_stats(self) -> None:
        self._send_json(200, self.service.stats())

    def _handle_metrics(self) -> None:
        """Prometheus text exposition (format 0.0.4) of every instrument.

        Served even when per-request telemetry is disabled: the
        component counters live on the registry either way, and a
        scraper that 404s on a config flag is a debugging trap.
        """
        body = self.service.telemetry.render().encode("utf-8")
        self._status = 200
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self._send_tracing_headers()
        if getattr(self, "_legacy_route", False):
            self.send_header("Deprecation", "true")
        self.end_headers()
        self.wfile.write(body)

    def _handle_list_datasets(self) -> None:
        self._send_json(
            200,
            {
                "datasets": [
                    entry.describe()
                    for entry in self.service.registry.entries()
                ]
            },
        )

    def _handle_get_dataset(self, fingerprint: str) -> None:
        self._send_json(200, self.service.registry.get(fingerprint).describe())

    def _handle_get_job(self, job_id: str) -> None:
        job = self.service.jobs.get(job_id)
        if job.timings:
            # Stage timeline as a standard Server-Timing header, so
            # browser devtools / curl -v show where the job's time went
            # without a second request to /v1/metrics.
            self._server_timing = server_timing_value(job.timings)
        self._log_fields["job_id"] = job.id
        self._send_json(200, job.describe())

    def _handle_register(self) -> None:
        body = self._read_json_body()
        chunk_rows = body.get("chunk_rows")
        if chunk_rows is not None and (
            isinstance(chunk_rows, bool)
            or not isinstance(chunk_rows, int)
            or chunk_rows < 1
        ):
            raise ServiceError(
                f"chunk_rows must be a positive integer, got {chunk_rows!r}"
            )
        if ("path" in body) == ("csv" in body):
            raise ServiceError(
                "register exactly one of 'path' (server-local CSV) or "
                "'csv' (inline content)"
            )
        if "path" in body:
            if not isinstance(body["path"], str):
                raise ServiceError(f"path must be a string, got {body['path']!r}")
            entry, created = self.service.registry.register_path(
                body["path"], chunk_rows=chunk_rows
            )
        else:
            if not isinstance(body["csv"], str):
                raise ServiceError(f"csv must be a string, got {body['csv']!r}")
            entry, created = self.service.registry.register_text(
                body["csv"],
                chunk_rows=chunk_rows,
                name=str(body.get("name", "inline")),
            )
        view = entry.describe()
        view["created"] = created
        self._send_json(201 if created else 200, view)

    def _handle_append(self, fingerprint: str) -> None:
        body = self._read_json_body()
        self._send_json(200, self.service.append(fingerprint, body))

    def _handle_submit(self) -> None:
        body = self._read_json_body()
        fingerprint = body.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ServiceError("job body needs a string 'fingerprint'")
        operation = body.get("operation")
        if not isinstance(operation, str):
            raise ServiceError("job body needs a string 'operation'")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError(f"params must be a JSON object, got {params!r}")
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise ServiceError(
                f"idempotency_key must be a string, got {idempotency_key!r}"
            )
        job = self.service.jobs.submit(
            fingerprint,
            operation,
            params,
            idempotency_key=idempotency_key,
            trace_id=self._trace_id,
        )
        self._log_fields.update(
            job_id=job.id, operation=operation, cached=job.cached
        )
        self._send_json(200 if job.state == "done" else 202, job.describe())

    def _handle_submit_batch(self) -> None:
        body = self._read_json_body()
        fingerprint = body.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ServiceError("batch body needs a string 'fingerprint'")
        operations = body.get("operations")
        if not isinstance(operations, list):
            raise ServiceError(
                "batch body needs an 'operations' list of "
                '{"operation": ..., "params": ...} objects'
            )
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise ServiceError(
                f"idempotency_key must be a string, got {idempotency_key!r}"
            )
        job = self.service.jobs.submit_batch(
            fingerprint,
            operations,
            idempotency_key=idempotency_key,
            trace_id=self._trace_id,
        )
        self._log_fields.update(job_id=job.id, cached=job.cached)
        self._send_json(200 if job.state == "done" else 202, job.describe())

"""Service assembly: registry + cache + job queue + HTTP server, one object.

:class:`Service` owns the subsystem lifecycle.  ``start()`` binds the
listening socket (``port=0`` picks an ephemeral port, read back from
``service.port``) and serves on a background thread; ``serve_forever()``
is the blocking variant the ``repro-ajd serve`` CLI uses.  ``stop()``
shuts the HTTP server and drains the worker pool.  The object is also a
context manager, which is how the tests hold a live server::

    with Service(ServiceConfig(port=0)) as service:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        ...
"""

from __future__ import annotations

import os
import threading
import time

from repro.service.cache import ResultCache
from repro.service.config import ServiceConfig
from repro.service.faults import FaultPlan
from repro.service.http import ServiceHTTPServer, ServiceRequestHandler
from repro.service.jobs import JobQueue
from repro.service.registry import DatasetRegistry
from repro.service.telemetry import Telemetry


class Service:
    """A running (or startable) decomposition service."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.faults = FaultPlan.from_spec(
            self.config.fault_plan
            if self.config.fault_plan is not None
            else os.environ.get("REPRO_FAULT_PLAN")
        )
        #: One telemetry plane per process: the shared metrics registry
        #: every subsystem's counters live on (so ``/stats`` and
        #: ``/v1/metrics`` can never disagree), the request log, and the
        #: fold point for worker-process metric snapshots.
        self.telemetry = Telemetry(
            enabled=self.config.telemetry,
            log_sink=self.config.request_log_path,
            log_capacity=self.config.request_log_capacity,
            faults=self.faults,
            proc="frontend",
        )
        metrics = self.telemetry.metrics
        self.registry = DatasetRegistry(
            memory_budget_bytes=self.config.memory_budget_bytes,
            spill_dir=self.config.spill_dir,
            faults=self.faults,
            snapshots=self.config.snapshots,
            metrics=metrics,
        )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.spill_dir,
            faults=self.faults,
            metrics=metrics,
        )
        #: ``worker_procs > 0`` scales compute across worker subprocesses
        #: (see :mod:`repro.service.cluster`); 0 keeps the classic
        #: in-process pool — bit-identical to the pre-cluster service,
        #: down to never importing the cluster module.
        self.cluster = None
        if self.config.worker_procs > 0:
            from repro.service.cluster import ClusterSupervisor

            self.cluster = ClusterSupervisor(
                worker_procs=self.config.worker_procs,
                registry=self.registry,
                faults=self.faults,
                max_inflight=self.config.worker_inflight,
                max_resident=self.config.worker_max_resident,
                telemetry=self.telemetry,
            )
        try:
            self.jobs = JobQueue(
                self.registry,
                self.cache,
                workers=self.config.workers,
                max_queue=self.config.max_queue,
                default_deadline_s=self.config.default_deadline_s,
                faults=self.faults,
                breaker_failures=self.config.breaker_failures,
                breaker_cooldown_s=self.config.breaker_cooldown_s,
                max_batch_ops=self.config.max_batch_ops,
                executor=self.cluster,
                telemetry=self.telemetry,
            )
        except BaseException:
            if self.cluster is not None:
                self.cluster.shutdown()
            raise
        self._server: ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _bind(self) -> ServiceHTTPServer:
        if self._server is None:
            self._server = ServiceHTTPServer(
                (self.config.host, self.config.port),
                ServiceRequestHandler,
                self,
            )
        return self._server

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the actual port)."""
        return self._bind().server_address[1]

    def start(self) -> "Service":
        """Bind and serve on a background thread; returns self."""
        server = self._bind()
        if self._thread is None:
            self._started_at = time.monotonic()
            self._draining = False
            self._thread = threading.Thread(
                target=server.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI path); Ctrl-C returns cleanly."""
        server = self._bind()
        self._started_at = time.monotonic()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut the HTTP server down and drain the worker pool."""
        self._draining = True  # /healthz flips before the socket closes
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._thread = None
        self.jobs.shutdown(wait=True)
        if self.cluster is not None:
            self.cluster.shutdown()
        self.telemetry.close()

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Delta ingest
    # ------------------------------------------------------------------
    def _parse_delta(self, entry, body: dict) -> list:
        """Parse + validate an append body's delta rows.

        Exactly one of ``csv`` (inline content) or ``path``
        (server-local CSV) supplies the delta; both run through the
        *ingest* parser (:func:`repro.relations.io.iter_csv_chunks`,
        same typed coercion as registration), which is what makes the
        appended fingerprint provably equal to a from-scratch ingest of
        the concatenated source.  The delta's header must match the
        dataset's attributes exactly (same names, same order).
        """
        import tempfile

        from repro.errors import ServiceError
        from repro.relations.io import iter_csv_chunks

        if ("path" in body) == ("csv" in body):
            raise ServiceError(
                "append exactly one of 'path' (server-local CSV) or "
                "'csv' (inline content)"
            )
        source = body.get("path", body.get("csv"))
        if not isinstance(source, str):
            raise ServiceError(
                f"append source must be a string, got {source!r}"
            )

        def _collect(path) -> tuple[tuple, list]:
            header = None
            rows: list = []
            for chunk in iter_csv_chunks(path):
                header = chunk.header
                rows.extend(chunk.rows)
            return header, rows

        if "path" in body:
            header, rows = _collect(source)
        else:
            with tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                suffix=".csv",
                dir=(
                    str(self.registry.spill_dir)
                    if self.registry.spill_dir is not None
                    else None
                ),
                delete=False,
            ) as handle:
                handle.write(source)
                tmp_path = handle.name
            try:
                header, rows = _collect(tmp_path)
            finally:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        if list(header or ()) != list(entry.attributes):
            raise ServiceError(
                f"delta header {list(header or ())!r} does not match "
                f"dataset attributes {list(entry.attributes)!r}"
            )
        return rows

    def append(self, fingerprint: str, body: dict) -> dict:
        """``POST /v1/datasets/{fp}/append``: delta ingest + maintenance.

        Appends the delta through the dict-coding append path (cluster
        mode dispatches to the shard owner; see
        :meth:`~repro.service.cluster.ClusterSupervisor.append`), then
        revalidates the dataset's cached results against the new
        content (:meth:`~repro.service.jobs.JobQueue.revalidate_after_append`).
        The response carries the new fingerprint, the version chain,
        and the revalidation summary.  Retry-safe: a replayed append
        whose first attempt landed resolves through the old
        fingerprint's alias and dedups to a no-op.
        """
        entry = self.registry.get(fingerprint)
        old_fingerprint = entry.fingerprint
        rows = self._parse_delta(entry, body)
        if self.cluster is not None:
            info = self.cluster.append(
                old_fingerprint, rows, chain=entry.chain()
            )
            if info.get("changed"):
                self.registry.adopt_appended(old_fingerprint, info)
        else:
            _, info = self.registry.append_rows(old_fingerprint, rows)
        tolerance = self.config.revalidate_tolerance
        if info.get("changed"):
            revalidation = self.jobs.revalidate_after_append(
                old_fingerprint, info["fingerprint"], tolerance=tolerance
            )
        else:
            revalidation = {
                "examined": 0,
                "revalidated": 0,
                "invalidated": 0,
                "tolerance": tolerance,
                "wall_time_s": 0.0,
            }
        view = dict(info)
        view["revalidation"] = revalidation
        view["dataset"] = self.registry.get(info["fingerprint"]).describe()
        return view

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``GET /healthz`` document: ``ok`` | ``degraded`` | ``draining``.

        ``degraded`` means the service is still serving but impaired:
        an open circuit breaker, a dataset demoted to metadata-only, a
        shrunken worker pool, or a recent incident (worker crash, spill
        quarantine, dataset degradation) within
        ``health_incident_ttl_s``.  The recency window keeps a flapping
        fault visible to health checks that only sample occasionally.
        """
        now = time.monotonic()
        jobs_stats = self.jobs.stats()
        breakers = jobs_stats["breakers"]
        degraded_datasets = self.registry.degraded_count()
        reasons = []
        if any(b["state"] == "open" for b in breakers.values()):
            reasons.append("circuit breaker open")
        if degraded_datasets:
            reasons.append(f"{degraded_datasets} degraded dataset(s)")
        if jobs_stats["workers_alive"] < self.config.workers:
            reasons.append(
                f"{jobs_stats['workers_alive']}/{self.config.workers} "
                "workers alive"
            )
        if self.cluster is not None:
            cluster_alive = self.cluster.alive_workers()
            if cluster_alive < self.config.worker_procs:
                reasons.append(
                    f"{cluster_alive}/{self.config.worker_procs} "
                    "cluster workers alive"
                )
        ttl = self.config.health_incident_ttl_s
        for label, at in (
            ("worker crash", self.jobs.last_crash_at),
            ("spill quarantine", self.cache.last_quarantine_at),
            ("dataset degradation", self.registry.last_degrade_at),
        ):
            if at is not None and now - at < ttl:
                reasons.append(f"recent {label} ({now - at:.1f}s ago)")
        if self._draining:
            status = "draining"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        view = {
            "status": status,
            "uptime_s": now - self._started_at,
            "workers": self.config.workers,
            "workers_alive": jobs_stats["workers_alive"],
            "degraded_datasets": degraded_datasets,
            "quarantined_spills": self.cache.quarantined,
            "worker_crashes": self.jobs.worker_crashes,
            "breakers": {
                operation: breaker["state"]
                for operation, breaker in breakers.items()
            },
        }
        if self.cluster is not None:
            view["worker_procs"] = self.config.worker_procs
            view["worker_procs_alive"] = self.cluster.alive_workers()
        if reasons:
            view["reasons"] = reasons
        if self.faults.enabled:
            view["faults_enabled"] = True
        return view

    def stats(self) -> dict:
        """The ``GET /stats`` document.

        The ``cluster`` section appears only when ``worker_procs > 0``,
        keeping the single-process document byte-identical to the
        pre-cluster service.
        """
        view = {
            "uptime_s": time.monotonic() - self._started_at,
            # The registry snapshot rides a short TTL cache so a /stats
            # poller never contends with a long mine for the
            # registry-wide lock (see DatasetRegistry.stats).
            "cache": self.cache.stats(),
            "registry": self.registry.stats(
                max_age_s=self.config.stats_cache_ttl_s
            ),
            "jobs": self.jobs.stats(),
            "faults": self.faults.stats(),
            "metrics": self.telemetry.summary(),
        }
        if self.cluster is not None:
            view["cluster"] = self.cluster.stats()
        return view

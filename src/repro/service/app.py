"""Service assembly: registry + cache + job queue + HTTP server, one object.

:class:`Service` owns the subsystem lifecycle.  ``start()`` binds the
listening socket (``port=0`` picks an ephemeral port, read back from
``service.port``) and serves on a background thread; ``serve_forever()``
is the blocking variant the ``repro-ajd serve`` CLI uses.  ``stop()``
shuts the HTTP server and drains the worker pool.  The object is also a
context manager, which is how the tests hold a live server::

    with Service(ServiceConfig(port=0)) as service:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        ...
"""

from __future__ import annotations

import threading
import time

from repro.service.cache import ResultCache
from repro.service.config import ServiceConfig
from repro.service.http import ServiceHTTPServer, ServiceRequestHandler
from repro.service.jobs import JobQueue
from repro.service.registry import DatasetRegistry


class Service:
    """A running (or startable) decomposition service."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = DatasetRegistry(
            memory_budget_bytes=self.config.memory_budget_bytes,
            spill_dir=self.config.spill_dir,
        )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.spill_dir,
        )
        self.jobs = JobQueue(
            self.registry,
            self.cache,
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            default_deadline_s=self.config.default_deadline_s,
        )
        self._server: ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _bind(self) -> ServiceHTTPServer:
        if self._server is None:
            self._server = ServiceHTTPServer(
                (self.config.host, self.config.port),
                ServiceRequestHandler,
                self,
            )
        return self._server

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the actual port)."""
        return self._bind().server_address[1]

    def start(self) -> "Service":
        """Bind and serve on a background thread; returns self."""
        server = self._bind()
        if self._thread is None:
            self._started_at = time.monotonic()
            self._thread = threading.Thread(
                target=server.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI path); Ctrl-C returns cleanly."""
        server = self._bind()
        self._started_at = time.monotonic()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut the HTTP server down and drain the worker pool."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._thread = None
        self.jobs.shutdown(wait=True)

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_at,
            "workers": self.config.workers,
        }

    def stats(self) -> dict:
        """The ``GET /stats`` document."""
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "cache": self.cache.stats(),
            "registry": self.registry.stats(),
            "jobs": self.jobs.stats(),
        }

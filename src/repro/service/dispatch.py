"""Dispatcher ↔ worker wire protocol: length-prefixed JSON over sockets.

The cluster (:mod:`repro.service.cluster`) splits the service into a
front-end process and N worker subprocesses.  This module is the
transport between them:

* **Framing** — every message is a 4-byte big-endian length followed by
  that many bytes of UTF-8 JSON (one object per frame).  Frames above
  :data:`MAX_FRAME_BYTES` are rejected on both sides, so a corrupt
  length prefix cannot make a peer allocate unbounded memory.
* **Message types** (the ``t`` field):

  ==========  =========  ==================================================
  type        direction  meaning
  ==========  =========  ==================================================
  ``hello``   w → f      worker announces ``worker_id`` + ``pid`` + the
                         shared-secret token it was spawned with
  ``req``     f → w      run one operation: ``id``, ``fingerprint``,
                         ``operation``, canonical ``params``, ``workers``,
                         ``deadline_in_s`` (remaining budget — absolute
                         monotonic times do not cross processes), the
                         hydration references ``snapshot_dir`` / ``source``
                         / ``chunk_rows``, and the optional ``trace`` id
                         the worker threads into its spans and log line
  ``res``     w → f      the answer to ``req`` with the same ``id``:
                         ``ok`` + ``report`` + ``origin`` + ``memo_delta``
                         + ``resident`` + ``telemetry`` (trace, stage
                         timeline, forwardable log record) + ``metrics``
                         (the worker's registry snapshot), or ``ok:
                         false`` + ``error`` + ``error_kind``
                         (``degraded`` / ``repro`` / ``internal``)
  ``ping``    f → w      heartbeat probe (answered by the worker's reader
                         thread, so a long-running mine still heartbeats)
  ``pong``    w → f      heartbeat answer; carries the worker's resident
                         fingerprints, lifetime job count, and metric
                         snapshot

Unknown fields and frame types are ignored on both sides (forward
compatibility): a PR-9-era worker simply never echoes ``trace`` or
``metrics``, and the front end degrades to traceless dispatch.
  ``bye``     f → w      orderly shutdown request
  ==========  =========  ==================================================

* **Request ids** — the front end numbers requests from one shared
  counter; responses are matched back to waiters by id, so one socket
  multiplexes every in-flight job bound for that worker.
* **Per-worker in-flight limits** — each :class:`WorkerHandle` holds a
  bounded semaphore; a dispatch beyond the limit blocks the submitting
  job-queue thread until the worker drains, a natural backpressure
  complement to the queue-level ``max_queue`` bound.

Failure mapping: a worker process dying (EOF, reset, missed
heartbeats) fails every request in flight on its socket with
:class:`WorkerCrashedError`, which the job queue surfaces as the
structured ``reason: "worker_crashed"`` — the process-level twin of the
thread supervisor's handling in :mod:`repro.service.jobs`.
:class:`DispatchError` covers the front end's own send failures
(including the injected ``cluster.dispatch`` fault site).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

from repro.errors import ServiceError

#: Hard ceiling on one frame's JSON payload (reports are at most a few
#: MB; 64 MiB matches the HTTP tier's request-body bound).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class DispatchError(ServiceError):
    """The front end could not deliver a job to its owning worker."""


class WorkerCrashedError(ServiceError):
    """A worker process died while (or before) running a dispatched job."""


class FrameError(DispatchError):
    """A peer sent bytes that do not parse as a protocol frame."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame.

    Raises :class:`DispatchError` on any socket failure (the caller
    decides whether that means the worker is dead).  Not thread-safe on
    its own — callers serialize writes per socket with a lock.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    except OSError as exc:
        raise DispatchError(f"socket send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on a clean EOF at a frame
    boundary (mid-frame EOF raises — the peer died mid-message)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except OSError as exc:
            raise DispatchError(f"socket read failed: {exc}") from exc
        if not chunk:
            if got == 0:
                return None
            raise DispatchError(
                f"peer closed the connection mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on orderly EOF.

    Raises :class:`FrameError` for malformed frames and
    :class:`DispatchError` for transport failures.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise DispatchError("peer closed the connection after a frame header")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("t"), str):
        raise FrameError(f"frame is not a typed object: {message!r}")
    return message


# ----------------------------------------------------------------------
# Dispatcher-side worker handle
# ----------------------------------------------------------------------
class _Pending:
    """One awaited response slot."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None
        self.error: Exception | None = None


class WorkerHandle:
    """The front end's view of one live worker process.

    Owns the accepted socket, a reader thread that routes ``res`` and
    ``pong`` frames back to waiters, the per-worker in-flight
    semaphore, and the dispatch counters surfaced under ``/stats``.
    Death (EOF, transport error, external :meth:`mark_dead`) fails
    every pending request with :class:`WorkerCrashedError`; the
    supervisor in :mod:`repro.service.cluster` notices ``alive``
    flipping and respawns a replacement process into the same shard
    slot.
    """

    def __init__(
        self,
        worker_id: int,
        sock: socket.socket,
        process,
        *,
        max_inflight: int,
        request_ids,
    ) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.process = process
        self.pid = process.pid
        self.alive = True
        self.started_at = time.monotonic()
        self.last_pong = time.monotonic()
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.pings = 0
        self.resident: list[str] = []
        self.worker_jobs_done = 0
        #: Latest metric-registry snapshot the worker shipped (rides
        #: both ``pong`` and ``res`` frames); the supervisor folds it
        #: into the front end's merged worker metrics.
        self.worker_metrics: dict | None = None
        self._ids = request_ids  # shared itertools.count
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-cluster-reader-{worker_id}",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(self, body: dict, *, timeout: float | None = None) -> dict:
        """Send one ``req`` frame and block for its ``res``.

        Blocks first on the in-flight semaphore (the per-worker limit),
        then on the response.  Raises :class:`WorkerCrashedError` when
        the worker dies first and :class:`DispatchError` when the frame
        cannot be sent or the (deadline-derived) ``timeout`` expires.
        """
        with self._state_lock:
            if not self.alive:
                raise WorkerCrashedError(
                    f"worker {self.worker_id} (pid {self.pid}) is dead"
                )
        self._slots.acquire()
        pending = _Pending()
        request_id = next(self._ids)
        try:
            with self._state_lock:
                if not self.alive:
                    raise WorkerCrashedError(
                        f"worker {self.worker_id} (pid {self.pid}) is dead"
                    )
                self._pending[request_id] = pending
                self.dispatched += 1
            frame = dict(body)
            frame["t"] = "req"
            frame["id"] = request_id
            try:
                with self._send_lock:
                    send_frame(self.sock, frame)
            except DispatchError:
                with self._state_lock:
                    self._pending.pop(request_id, None)
                self.mark_dead("send to worker failed")
                raise WorkerCrashedError(
                    f"worker {self.worker_id} (pid {self.pid}) died before "
                    "accepting the job"
                ) from None
            if not pending.event.wait(timeout):
                with self._state_lock:
                    self._pending.pop(request_id, None)
                raise DispatchError(
                    f"worker {self.worker_id} (pid {self.pid}) did not answer "
                    f"request {request_id} within {timeout:g}s"
                )
            if pending.error is not None:
                raise pending.error
            assert pending.response is not None
            with self._state_lock:
                if pending.response.get("ok"):
                    self.completed += 1
                else:
                    self.failed += 1
                resident = pending.response.get("resident")
                if isinstance(resident, list):
                    self.resident = [str(f) for f in resident]
            return pending.response
        finally:
            self._slots.release()

    def ping(self) -> bool:
        """Send one heartbeat probe; ``False`` when the socket is gone."""
        with self._state_lock:
            if not self.alive:
                return False
            self.pings += 1
        try:
            with self._send_lock:
                send_frame(self.sock, {"t": "ping", "id": -self.pings})
            return True
        except DispatchError:
            self.mark_dead("heartbeat send failed")
            return False

    def send_bye(self) -> None:
        """Ask the worker to exit cleanly (best effort)."""
        try:
            with self._send_lock:
                send_frame(self.sock, {"t": "bye"})
        except DispatchError:
            pass

    # ------------------------------------------------------------------
    # Reader + death
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                message = recv_frame(self.sock)
            except (DispatchError, FrameError) as exc:
                self.mark_dead(str(exc))
                return
            if message is None:
                self.mark_dead("worker closed its connection")
                return
            kind = message.get("t")
            if kind == "pong":
                with self._state_lock:
                    self.last_pong = time.monotonic()
                    resident = message.get("resident")
                    if isinstance(resident, list):
                        self.resident = [str(f) for f in resident]
                    jobs_done = message.get("jobs_done")
                    if isinstance(jobs_done, int):
                        self.worker_jobs_done = jobs_done
                    metrics = message.get("metrics")
                    if isinstance(metrics, dict):
                        self.worker_metrics = metrics
                continue
            if kind == "res":
                with self._state_lock:
                    pending = self._pending.pop(message.get("id"), None)
                    metrics = message.get("metrics")
                    if isinstance(metrics, dict):
                        self.worker_metrics = metrics
                if pending is not None:
                    pending.response = message
                    pending.event.set()
                continue
            # Unknown frame types are ignored (forward compatibility).

    def mark_dead(self, why: str) -> None:
        """Flip to dead exactly once and fail every in-flight request."""
        with self._state_lock:
            if not self.alive:
                return
            self.alive = False
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.error = WorkerCrashedError(
                f"worker {self.worker_id} (pid {self.pid}) crashed while the "
                f"job was in flight: {why}"
            )
            slot.event.set()
        try:
            self.sock.close()
        except OSError:
            pass

    def heartbeat_age_s(self) -> float:
        with self._state_lock:
            return time.monotonic() - self.last_pong

    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    def describe(self) -> dict:
        """JSON-ready per-worker stats (``/stats`` → ``cluster.workers``)."""
        with self._state_lock:
            return {
                "worker_id": self.worker_id,
                "pid": self.pid,
                "alive": self.alive,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "in_flight": len(self._pending),
                "heartbeat_age_s": round(
                    time.monotonic() - self.last_pong, 3
                ),
                "resident": sorted(self.resident),
                "jobs_done": self.worker_jobs_done,
            }

"""Job queue + worker pool: asynchronous, cached, deadline-bounded compute.

``POST /jobs`` becomes a :class:`Job` here.  The submission path is
where all the amortization happens, in order:

1. **Cache hit** — the `(fingerprint, operation, canonical params)` key
   is already in the :class:`~repro.service.cache.ResultCache`: the job
   is born ``done`` with the cached report (marked ``cached: true``)
   and never touches a worker.
2. **In-flight coalescing** — an identical job is already queued or
   running: the *same* job object is returned, so concurrent identical
   clients share one computation and read bit-identical reports.
3. **Enqueue** — otherwise the job is queued for the worker pool, with
   **backpressure**: beyond ``max_queue`` waiting jobs, submission
   raises :class:`~repro.errors.QueueFullError` (HTTP 503).

Workers are threads (the compute is numpy-heavy, releasing the GIL in
the hot group-by/bincount kernels; mining jobs may additionally request
the fork-based split-scoring pool via their ``workers`` param, which
runs inside the worker thread).  Each job's optional ``deadline``
becomes an absolute timestamp at submission: a job that *starts* past
its deadline is failed as ``timeout`` without computing, and one that
starts in time hands the remaining budget to the search context
(:meth:`~repro.discovery.context.SearchContext.create` via
``deadline_at``), so an expiring search returns its best-so-far schema
with ``partial: true``.  Timed-out, partial, and degraded results are
**never cached** — a retry with a larger budget must recompute.

Resilience (see ``docs/robustness.md``):

* **Worker supervision** — each worker runs under a supervisor that
  catches a thread-killing escape (anything ``_run_job``'s catch-all
  does not absorb, including the injected
  :class:`~repro.service.faults.WorkerCrashInjection`), fails the
  in-flight job with a structured ``worker_crashed`` reason, and
  respawns a replacement thread, so the pool never silently shrinks.
* **Circuit breaker** — per operation: ``breaker_failures`` consecutive
  *infrastructure* failures (worker crashes, internal errors, degraded
  datasets — never client errors or timeouts) open the breaker, and
  submissions fast-fail with :class:`~repro.errors.CircuitOpenError`
  (HTTP 503 + ``Retry-After``) until the cooldown elapses; a success
  closes it.  Cache hits and coalescing keep serving while open.
* **Idempotent resubmission** — an optional ``idempotency_key`` maps a
  retried submit back onto the job the first attempt created, so a
  client that lost the response (dropped connection) never double-runs
  work — even for deadline jobs, which deliberately never coalesce.

Batches (``POST /jobs/batch``) amortize dispatch: a vector of
operations against **one** dataset becomes a single
:class:`BatchJob` — one queue unit, one registry lookup (the resident
relation and its memoized entropy engine are shared across every item),
one poll loop for the client.  Each item keeps its *own* canonical
cache key: items are answered from the cache at submission when
possible, re-checked just before running (an earlier identical item in
the same batch fills the cache for its twins), and cached individually
on success — so a batch's reports are bit-identical to the same K
operations submitted as K singleton jobs.  Batch items are
deadline-free and never coalesce; the per-operation breakers still
guard them (submission fast-fails if any pending item's breaker is
open, and item outcomes feed the same breakers).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from collections import OrderedDict, deque

from repro.errors import (
    CircuitOpenError,
    DatasetDegradedError,
    QueueFullError,
    ReproError,
    ServiceError,
    UnknownJobError,
)
from repro.factorize.report import validate_report
from repro.service.cache import ResultCache, canonical_key
from repro.service.dispatch import DispatchError, WorkerCrashedError
from repro.service.faults import DISABLED, FaultPlan
from repro.service.operations import canonicalize_params, run_operation
from repro.service.registry import DatasetRegistry
from repro.service.telemetry import MetricsRegistry, Telemetry, new_trace_id

#: Job lifecycle states (``state`` in every ``GET /jobs/{id}`` response).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"


class CircuitBreaker:
    """Consecutive-failure trip switch for one operation's compute path.

    ``record_failure`` counts *infrastructure* failures; at
    ``threshold`` consecutive ones the breaker opens for ``cooldown_s``
    (``check`` returns the remaining cooldown to fast-fail with).  Once
    the cooldown elapses the breaker is half-open: submissions pass
    again, and the next success closes it while the next failure
    re-opens it for a fresh cooldown.  All mutation happens under the
    owning queue's lock.
    """

    __slots__ = ("threshold", "cooldown_s", "consecutive", "opened_at", "opens")

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.consecutive = 0
        self.opened_at: float | None = None  # time.monotonic()
        self.opens = 0

    def record_failure(self) -> None:
        self.consecutive += 1
        if self.consecutive >= self.threshold:
            if self.opened_at is None:
                self.opens += 1
            self.opened_at = time.monotonic()  # (re-)start the cooldown

    def record_success(self) -> None:
        self.consecutive = 0
        self.opened_at = None

    def check(self) -> float | None:
        """Remaining cooldown seconds if open (fast-fail), else ``None``."""
        if self.opened_at is None:
            return None
        remaining = self.opened_at + self.cooldown_s - time.monotonic()
        return remaining if remaining > 0 else None  # elapsed: half-open

    def describe(self) -> dict:
        retry_after = self.check()
        state = "closed"
        if self.opened_at is not None:
            state = "open" if retry_after is not None else "half-open"
        return {
            "state": state,
            "consecutive_failures": self.consecutive,
            "threshold": self.threshold,
            "opens": self.opens,
            "retry_after_s": retry_after,
        }


class Job:
    """One unit of requested work and its observable lifecycle."""

    __slots__ = (
        "cache_key",
        "cached",
        "canonical_params",
        "deadline_at",
        "deadline_s",
        "error",
        "event",
        "fingerprint",
        "finished_at",
        "id",
        "inflight_key",
        "operation",
        "reason",
        "result",
        "started_at",
        "state",
        "submitted_at",
        "timings",
        "trace_id",
        "worker_slot",
        "workers",
    )

    def __init__(
        self,
        job_id: str,
        fingerprint: str,
        operation: str,
        canonical_params: dict,
        cache_key: str,
        *,
        deadline_s: float | None,
        workers: int | None,
        trace_id: str | None = None,
    ) -> None:
        self.id = job_id
        self.fingerprint = fingerprint
        self.operation = operation
        self.canonical_params = canonical_params
        self.cache_key = cache_key
        self.inflight_key: str | None = None
        self.deadline_s = deadline_s
        self.deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self.workers = workers
        self.state = QUEUED
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        #: Structured failure class for programmatic clients:
        #: ``worker_crashed`` | ``dataset_degraded`` | ``shutdown`` |
        #: ``None`` (success, timeout, or plain operation error).
        self.reason: str | None = None
        self.cached = False
        #: Correlates this job's spans and log lines across processes —
        #: minted at the front end, rides the cluster wire protocol.
        self.trace_id = trace_id or new_trace_id()
        #: Finished stage timeline (``{"run": 0.12, "worker_run": ...}``)
        #: when telemetry is on; rendered as a ``Server-Timing`` header.
        self.timings: dict | None = None
        #: Cluster worker slot that computed the job (None in-process).
        self.worker_slot: int | None = None
        self.event = threading.Event()

    def service_time_s(self) -> float | None:
        """Submission-to-completion wall time (None while unfinished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def describe(self, *, include_result: bool = True) -> dict:
        """JSON view served by ``GET /jobs/{id}``."""
        view = {
            "job_id": self.id,
            "state": self.state,
            "operation": self.operation,
            "fingerprint": self.fingerprint,
            "params": dict(self.canonical_params),
            "cached": self.cached,
            "deadline_s": self.deadline_s,
            "service_time_s": self.service_time_s(),
            "partial": bool(self.result and self.result.get("partial")),
            "trace_id": self.trace_id,
        }
        if self.timings:
            view["stages"] = dict(self.timings)
        if self.error is not None:
            view["error"] = self.error
        if self.reason is not None:
            view["reason"] = self.reason
        if include_result and self.result is not None:
            view["result"] = self.result
        return view

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; ``True`` iff it did."""
        return self.event.wait(timeout)

    def _finish(self, state: str) -> None:
        self.state = state
        self.finished_at = time.monotonic()
        self.event.set()


class BatchItem:
    """One operation inside a batch: its own key, cache row, and outcome."""

    __slots__ = (
        "cache_key",
        "cached",
        "canonical_params",
        "error",
        "operation",
        "result",
        "state",
    )

    def __init__(
        self, operation: str, canonical_params: dict, cache_key: str
    ) -> None:
        self.operation = operation
        self.canonical_params = canonical_params
        self.cache_key = cache_key
        self.state = QUEUED
        self.result: dict | None = None
        self.error: str | None = None
        self.cached = False

    def describe(self, *, include_result: bool = True) -> dict:
        view = {
            "operation": self.operation,
            "params": dict(self.canonical_params),
            "state": self.state,
            "cached": self.cached,
            "partial": bool(self.result and self.result.get("partial")),
        }
        if self.error is not None:
            view["error"] = self.error
        if include_result and self.result is not None:
            view["result"] = self.result
        return view


class BatchJob(Job):
    """A vector of operations against one dataset, run as one queue unit.

    The batch shares one resident relation (and therefore one memoized
    entropy engine) across all items; each item is individually
    canonicalized, cache-checked, executed, and cached, so its report is
    bit-identical to the singleton submission of the same operation.
    The batch finishes ``done`` when it ran to completion (individual
    item failures are reported per item, with a summary in ``error``)
    and ``failed`` only when *every* item failed or the batch could not
    run at all (degraded dataset, worker crash, shutdown).
    """

    __slots__ = ("items",)

    def __init__(
        self,
        job_id: str,
        fingerprint: str,
        items: list[BatchItem],
        *,
        trace_id: str | None = None,
    ) -> None:
        super().__init__(
            job_id, fingerprint, "batch", {}, "",
            deadline_s=None, workers=None, trace_id=trace_id,
        )
        self.items = items

    def pending_operations(self) -> list[str]:
        """Distinct operations of items still awaiting compute."""
        return sorted(
            {item.operation for item in self.items if item.state == QUEUED}
        )

    def _fail_pending(self, error: str) -> None:
        for item in self.items:
            if item.state in (QUEUED, RUNNING):
                item.state = FAILED
                item.error = error

    def describe(self, *, include_result: bool = True) -> dict:
        """JSON view served by ``GET /jobs/{id}`` for batch jobs."""
        view = {
            "job_id": self.id,
            "state": self.state,
            "operation": "batch",
            "fingerprint": self.fingerprint,
            "n_items": len(self.items),
            "n_cached": sum(item.cached for item in self.items),
            "n_failed": sum(item.state == FAILED for item in self.items),
            "cached": self.cached,
            "service_time_s": self.service_time_s(),
            "trace_id": self.trace_id,
            "items": [
                item.describe(include_result=include_result)
                for item in self.items
            ],
        }
        if self.error is not None:
            view["error"] = self.error
        if self.reason is not None:
            view["reason"] = self.reason
        return view


class JobQueue:
    """Bounded queue + thread worker pool over a registry and a cache."""

    def __init__(
        self,
        registry: DatasetRegistry,
        cache: ResultCache,
        *,
        workers: int = 2,
        max_queue: int = 64,
        default_deadline_s: float | None = None,
        max_finished: int = 4096,
        faults: FaultPlan | None = None,
        breaker_failures: int = 5,
        breaker_cooldown_s: float = 5.0,
        max_batch_ops: int = 64,
        executor=None,
        metrics: MetricsRegistry | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_finished < 1:
            raise ServiceError(f"max_finished must be >= 1, got {max_finished}")
        if max_batch_ops < 1:
            raise ServiceError(
                f"max_batch_ops must be >= 1, got {max_batch_ops}"
            )
        if breaker_failures < 1:
            raise ServiceError(
                f"breaker_failures must be >= 1, got {breaker_failures}"
            )
        if breaker_cooldown_s <= 0:
            raise ServiceError(
                f"breaker_cooldown_s must be positive, got {breaker_cooldown_s}"
            )
        self._registry = registry
        self._cache = cache
        #: Pluggable compute: ``None`` runs operations in-process (the
        #: classic single-process service, bit-identical behaviour);
        #: a :class:`~repro.service.cluster.ClusterSupervisor` routes
        #: them to the shard's owning worker subprocess instead.
        self._executor = executor
        self._faults = faults if faults is not None else DISABLED
        self._default_deadline_s = default_deadline_s
        self._queue: queue.Queue[Job | None] = queue.Queue(maxsize=max_queue)
        self._jobs: dict[str, Job] = {}
        #: Finished job ids, oldest first: only the newest ``max_finished``
        #: finished jobs stay pollable; older ones are forgotten so a
        #: long-lived server's memory is bounded by traffic *rate*, not
        #: lifetime request count.  Queued/running jobs are never pruned.
        self._finished: deque[str] = deque()
        self._max_finished = max_finished
        self._inflight: dict[str, Job] = {}  # cache_key → live deadline-free job
        #: idempotency_key → job id, bounded like finished-job retention.
        self._idempotency: OrderedDict[str, str] = OrderedDict()
        # Reentrant: the submit miss path creates jobs under the lock.
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._max_batch_ops = max_batch_ops
        #: The telemetry plane (latency histograms, job log lines).  The
        #: queue's counters live on the metrics registry either way —
        #: shared with the service so ``/stats`` and ``/v1/metrics``
        #: read the same instruments — while per-job spans and log
        #: emission are skipped when telemetry is disabled.
        self._telemetry = telemetry
        if metrics is None:
            metrics = (
                telemetry.metrics if telemetry is not None else MetricsRegistry()
            )
        self._metrics = metrics
        self._c_coalesced = metrics.counter(
            "jobs_coalesced_total",
            "Submissions coalesced onto an identical in-flight job",
        )
        self._c_idempotent = metrics.counter(
            "jobs_idempotent_replays_total",
            "Submissions replayed via their idempotency key",
        )
        self._c_revalidated = metrics.counter(
            "jobs_revalidated_total",
            "Cached results carried across an append by re-scoring",
        )
        self._c_revalidation_invalidated = metrics.counter(
            "jobs_revalidation_invalidated_total",
            "Cached results dropped by post-append revalidation",
        )
        self._c_batches = metrics.counter(
            "jobs_batches_total", "Batch submissions"
        )
        self._c_batch_items = metrics.counter(
            "jobs_batch_items_total", "Operations submitted inside batches"
        )
        self._c_batch_item_cache_hits = metrics.counter(
            "jobs_batch_item_cache_hits_total",
            "Batch items answered from the result cache",
        )
        self._c_completed = metrics.counter(
            "jobs_completed_total",
            "Jobs finished, by terminal state",
            labelnames=("state",),
        )
        for state in (DONE, FAILED, TIMEOUT):
            self._c_completed.labels(state)  # pre-touch: /stats shows zeros
        self._c_worker_crashes = metrics.counter(
            "jobs_worker_crashes_total",
            "Worker thread crashes caught by the supervisor",
        )
        self._c_worker_respawns = metrics.counter(
            "jobs_worker_respawns_total",
            "Worker threads respawned after a crash",
        )
        self._h_queue_wait = metrics.histogram(
            "job_queue_wait_seconds", "Time jobs spent queued before running"
        )
        self.last_crash_at: float | None = None  # time.monotonic()
        self._breakers = {
            operation: CircuitBreaker(breaker_failures, breaker_cooldown_s)
            for operation in ("mine", "analyze", "decompose")
        }
        self._closed = False
        self._configured_workers = workers
        self._workers: list[threading.Thread] = [None] * workers  # type: ignore[list-item]
        for index in range(workers):
            self._spawn_worker(index)

    # Counter attributes stay readable (health checks, tests) while the
    # values live on the metrics registry.
    @property
    def coalesced(self) -> int:
        return int(self._c_coalesced.value())

    @property
    def idempotent_replays(self) -> int:
        return int(self._c_idempotent.value())

    @property
    def revalidated(self) -> int:
        return int(self._c_revalidated.value())

    @property
    def revalidation_invalidated(self) -> int:
        return int(self._c_revalidation_invalidated.value())

    @property
    def batches(self) -> int:
        return int(self._c_batches.value())

    @property
    def batch_items(self) -> int:
        return int(self._c_batch_items.value())

    @property
    def batch_item_cache_hits(self) -> int:
        return int(self._c_batch_item_cache_hits.value())

    @property
    def completed(self) -> dict:
        counts = {DONE: 0, FAILED: 0, TIMEOUT: 0}
        for series in self._c_completed.series():
            counts[series["labels"][0]] = int(series["value"])
        return counts

    @property
    def worker_crashes(self) -> int:
        return int(self._c_worker_crashes.value())

    @property
    def worker_respawns(self) -> int:
        return int(self._c_worker_respawns.value())

    def _spawn_worker(self, index: int) -> None:
        thread = threading.Thread(
            target=self._worker_main,
            args=(index,),
            name=f"repro-job-worker-{index}",
            daemon=True,
        )
        # Start before publishing: a concurrent shutdown() snapshots
        # self._workers to join, and joining a never-started thread is
        # a RuntimeError.
        thread.start()
        with self._lock:
            self._workers[index] = thread

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        idempotency_key: str | None = None,
        trace_id: str | None = None,
    ) -> Job:
        """Create (or coalesce into, replay, or answer from cache) one job.

        ``idempotency_key`` is a client-chosen token: a submit retried
        with the same token returns the job the first attempt created
        (whatever its state), so a client whose connection dropped after
        submission never double-runs work.
        """
        if self._closed:
            raise ServiceError("job queue is shut down")
        if idempotency_key is not None:
            if not isinstance(idempotency_key, str) or not (
                0 < len(idempotency_key) <= 200
            ):
                raise ServiceError(
                    "idempotency_key must be a non-empty string of at most "
                    f"200 characters, got {idempotency_key!r}"
                )
            with self._lock:
                replayed_id = self._idempotency.get(idempotency_key)
                replayed = (
                    self._jobs.get(replayed_id) if replayed_id is not None else None
                )
                if replayed is not None:
                    self._c_idempotent.inc()
                    return replayed
        params = dict(params or {})
        workers = params.pop("workers", None)
        if workers is not None and (
            isinstance(workers, bool) or not isinstance(workers, int) or workers < 1
        ):
            raise ServiceError(f"workers must be a positive integer, got {workers!r}")
        deadline_s = params.pop("deadline", None)
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(
                deadline_s, (int, float)
            ):
                raise ServiceError(
                    f"deadline must be a number of seconds, got {deadline_s!r}"
                )
            if deadline_s <= 0:
                raise ServiceError(f"deadline must be positive, got {deadline_s}")
            deadline_s = float(deadline_s)
        else:
            deadline_s = self._default_deadline_s
        canonical = canonicalize_params(operation, params)
        # Raises UnknownDatasetError early; a fingerprint superseded by
        # an append resolves to the live version, so the cache is keyed
        # (and the job runs) on current content.
        fingerprint = self._registry.get(fingerprint).fingerprint
        key = canonical_key(fingerprint, operation, canonical)
        # The cache key is deadline-free (cached results are complete,
        # hence valid under any budget); coalescing is stricter still:
        # only deadline-free jobs coalesce.  Relative deadlines become
        # absolute at submission, so two "deadline=10" requests arriving
        # seconds apart have *different* remaining budgets — sharing one
        # outcome would hand the later caller less wall clock than it
        # asked for (or a timeout it never earned).
        inflight_key = key if deadline_s is None else None

        cached = self._cache.get(key)
        if cached is not None:
            job = self._new_job(
                fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers, trace_id=trace_id,
            )
            job.cached = True
            job.result = cached
            job.result["cached"] = True
            job._finish(DONE)
            with self._lock:
                self._c_completed.labels(DONE).inc()
                self._record_finished(job)
                self._record_idempotency(idempotency_key, job)
            return job

        with self._lock:
            inflight = (
                self._inflight.get(inflight_key)
                if inflight_key is not None
                else None
            )
            if inflight is not None:
                self._c_coalesced.inc()
                self._record_idempotency(idempotency_key, inflight)
                return inflight
            # The breaker guards only fresh compute: cache hits and
            # coalescing keep serving while it is open — that is the
            # graceful part of the degradation.
            breaker = self._breakers[operation]
            retry_after = breaker.check()
            if retry_after is not None:
                raise CircuitOpenError(
                    f"{operation} circuit breaker is open after "
                    f"{breaker.consecutive} consecutive infrastructure "
                    f"failures; retry in {retry_after:.1f}s",
                    retry_after_s=retry_after,
                )
            if self._closed:
                # Re-checked under the lock: shutdown sets the flag and
                # then drains, so a submit racing it either lands before
                # the drain (and is failed by it) or is rejected here —
                # never enqueued onto a dead pool.
                raise ServiceError("job queue is shut down")
            job = self._new_job(
                fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers, trace_id=trace_id,
            )
            # Enqueue while still holding the lock (put_nowait cannot
            # block): nobody can coalesce onto a job that backpressure
            # is about to roll back.
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._jobs.pop(job.id, None)
                raise QueueFullError(
                    f"job queue is full ({self._queue.maxsize} waiting); "
                    "retry later"
                ) from None
            if inflight_key is not None:
                job.inflight_key = inflight_key
                self._inflight[inflight_key] = job
            self._record_idempotency(idempotency_key, job)
        return job

    def submit_batch(
        self,
        fingerprint: str,
        operations: list,
        *,
        idempotency_key: str | None = None,
        trace_id: str | None = None,
    ) -> BatchJob:
        """Submit a vector of operations against one dataset as one job.

        ``operations`` is a list of ``{"operation": ..., "params": ...}``
        objects (``params`` optional).  Items are deadline-free and may
        not carry execution-only params (``workers``/``deadline``).
        Items already in the result cache are answered at submission;
        a batch whose items are *all* cached is born ``done`` without
        touching a worker.  Otherwise the batch enqueues as a single
        unit — one registry lookup and one shared resident engine for
        every item — provided no pending item's circuit breaker is open.
        """
        if self._closed:
            raise ServiceError("job queue is shut down")
        if idempotency_key is not None:
            if not isinstance(idempotency_key, str) or not (
                0 < len(idempotency_key) <= 200
            ):
                raise ServiceError(
                    "idempotency_key must be a non-empty string of at most "
                    f"200 characters, got {idempotency_key!r}"
                )
            with self._lock:
                replayed_id = self._idempotency.get(idempotency_key)
                replayed = (
                    self._jobs.get(replayed_id) if replayed_id is not None else None
                )
                if replayed is not None:
                    self._c_idempotent.inc()
                    if not isinstance(replayed, BatchJob):
                        raise ServiceError(
                            f"idempotency_key {idempotency_key!r} was used "
                            "for a non-batch submission"
                        )
                    return replayed
        if not isinstance(operations, list) or not operations:
            raise ServiceError(
                "operations must be a non-empty list of "
                '{"operation": ..., "params": ...} objects'
            )
        if len(operations) > self._max_batch_ops:
            raise ServiceError(
                f"batch has {len(operations)} operations, limit is "
                f"{self._max_batch_ops}"
            )
        # Raises UnknownDatasetError early; appended-over fingerprints
        # resolve to the live version (see ``submit``).
        fingerprint = self._registry.get(fingerprint).fingerprint
        items: list[BatchItem] = []
        for index, spec in enumerate(operations):
            if not isinstance(spec, dict):
                raise ServiceError(
                    f"operations[{index}] must be an object, got "
                    f"{type(spec).__name__}"
                )
            spec = dict(spec)
            operation = spec.pop("operation", None)
            params = spec.pop("params", None)
            if spec:
                raise ServiceError(
                    f"operations[{index}] has unknown keys: {sorted(spec)}"
                )
            if not isinstance(operation, str):
                raise ServiceError(
                    f"operations[{index}].operation must be a string, got "
                    f"{operation!r}"
                )
            params = dict(params) if params else {}
            for execution_only in ("workers", "deadline"):
                if execution_only in params:
                    raise ServiceError(
                        f"operations[{index}]: {execution_only!r} is not "
                        "supported inside a batch; submit a singleton job"
                    )
            canonical = canonicalize_params(operation, params)
            items.append(
                BatchItem(
                    operation,
                    canonical,
                    canonical_key(fingerprint, operation, canonical),
                )
            )
        # Pre-answer from the cache: fully cached batches never enqueue.
        cache_hits = 0
        for item in items:
            cached = self._cache.get(item.cache_key)
            if cached is not None:
                cached["cached"] = True
                item.result = cached
                item.cached = True
                item.state = DONE
                cache_hits += 1
        with self._lock:
            self._c_batches.inc()
            self._c_batch_items.inc(len(items))
            if cache_hits:
                self._c_batch_item_cache_hits.inc(cache_hits)
            pending = sorted(
                {item.operation for item in items if item.state == QUEUED}
            )
            if not pending:
                job = self._new_batch_job(fingerprint, items, trace_id=trace_id)
                job.cached = True
                job._finish(DONE)
                self._c_completed.labels(DONE).inc()
                self._record_finished(job)
                self._record_idempotency(idempotency_key, job)
                return job
            for operation in pending:
                breaker = self._breakers[operation]
                retry_after = breaker.check()
                if retry_after is not None:
                    raise CircuitOpenError(
                        f"{operation} circuit breaker is open after "
                        f"{breaker.consecutive} consecutive infrastructure "
                        f"failures; retry in {retry_after:.1f}s",
                        retry_after_s=retry_after,
                    )
            if self._closed:
                raise ServiceError("job queue is shut down")
            job = self._new_batch_job(fingerprint, items, trace_id=trace_id)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._jobs.pop(job.id, None)
                raise QueueFullError(
                    f"job queue is full ({self._queue.maxsize} waiting); "
                    "retry later"
                ) from None
            self._record_idempotency(idempotency_key, job)
        return job

    def _new_batch_job(
        self,
        fingerprint: str,
        items: list[BatchItem],
        *,
        trace_id: str | None = None,
    ) -> BatchJob:
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = BatchJob(job_id, fingerprint, items, trace_id=trace_id)
            self._jobs[job_id] = job
            return job

    def _record_idempotency(self, token: str | None, job: Job) -> None:
        """Remember token → job id, bounded (caller holds the lock)."""
        if token is None:
            return
        self._idempotency[token] = job.id
        self._idempotency.move_to_end(token)
        while len(self._idempotency) > self._max_finished:
            self._idempotency.popitem(last=False)

    def _new_job(
        self,
        fingerprint: str,
        operation: str,
        canonical: dict,
        key: str,
        *,
        deadline_s: float | None,
        workers: int | None,
        trace_id: str | None = None,
    ) -> Job:
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = Job(
                job_id, fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers, trace_id=trace_id,
            )
            self._jobs[job_id] = job
            return job

    def _record_finished(self, job: Job) -> None:
        """Bound finished-job retention (caller holds the lock)."""
        self._finished.append(job.id)
        while len(self._finished) > self._max_finished:
            self._jobs.pop(self._finished.popleft(), None)

    # ------------------------------------------------------------------
    # Lookup + stats
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job: {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Delta-ingest cache revalidation
    # ------------------------------------------------------------------
    def revalidate_after_append(
        self, old_fingerprint: str, new_fingerprint: str, *, tolerance: float
    ) -> dict:
        """Carry cached jointrees across an append instead of dropping them.

        For every cached ``mine`` result of the superseded fingerprint,
        the mined tree is **re-scored on the appended relation** — a
        fixed-tree :func:`~repro.core.analysis.analyze` pass, no search —
        and, when both ``|ΔJ|`` and ``|Δρ|`` stay within ``tolerance``,
        the entry is re-keyed under the new fingerprint with the
        re-scored numbers and a ``"revalidated"`` marker; otherwise it is
        invalidated so the next request re-mines.  ``analyze`` /
        ``decompose`` entries are always invalidated (their payloads
        embed per-bag detail a fixed-tree pass cannot refresh).  Either
        way the superseded key is removed, so no request keyed on stale
        content can hit it.
        """
        from repro.core.analysis import analyze
        from repro.jointrees.build import jointree_from_schema

        start = time.perf_counter()
        examined = revalidated = invalidated = 0
        relation = None
        for key, meta, payload in self._cache.entries_for(old_fingerprint):
            operation = meta.get("operation")
            params = meta.get("params")
            examined += 1
            keep = False
            if (
                operation == "mine"
                and isinstance(params, dict)
                and isinstance(payload.get("bags"), list)
            ):
                try:
                    if relation is None:
                        relation = self._registry.relation(new_fingerprint)
                    tree = jointree_from_schema(
                        [set(bag) for bag in payload["bags"]]
                    )
                    report = analyze(relation, tree)
                    keep = (
                        abs(report.j_entropy - payload["j_measure"])
                        <= tolerance
                        and abs(report.rho - payload["rho"]) <= tolerance
                    )
                except ReproError:
                    keep = False  # unscoreable on the new content: drop
                if keep:
                    payload["j_measure"] = report.j_entropy
                    payload["rho"] = report.rho
                    payload["n_rows"] = len(relation)
                    payload["revalidated"] = True
                    payload["revalidated_from"] = old_fingerprint
                    new_key = canonical_key(
                        new_fingerprint, operation, params
                    )
                    self._cache.put(
                        new_key,
                        payload,
                        meta={
                            "fingerprint": new_fingerprint,
                            "operation": operation,
                            "params": params,
                        },
                    )
            self._cache.remove(key)
            if keep:
                revalidated += 1
            else:
                invalidated += 1
        if revalidated:
            self._c_revalidated.inc(revalidated)
        if invalidated:
            self._c_revalidation_invalidated.inc(invalidated)
        return {
            "examined": examined,
            "revalidated": revalidated,
            "invalidated": invalidated,
            "tolerance": tolerance,
            "wall_time_s": time.perf_counter() - start,
        }

    def stats(self) -> dict:
        """JSON-ready queue summary (part of ``GET /stats``)."""
        with self._lock:
            states = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, TIMEOUT: 0}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "jobs": len(self._jobs),
                "states": states,
                # Lifetime totals: `states` only covers the retained
                # (un-pruned) jobs, these never decrease.
                "completed_total": dict(self.completed),
                "waiting": self._queue.qsize(),
                "max_queue": self._queue.maxsize,
                "workers": len(self._workers),
                "workers_alive": sum(
                    1
                    for worker in self._workers
                    if worker is not None and worker.is_alive()
                ),
                "coalesced": self.coalesced,
                "idempotent_replays": self.idempotent_replays,
                "revalidated": self.revalidated,
                "revalidation_invalidated": self.revalidation_invalidated,
                "batches": self.batches,
                "batch_items": self.batch_items,
                "batch_item_cache_hits": self.batch_item_cache_hits,
                "worker_crashes": self.worker_crashes,
                "worker_respawns": self.worker_respawns,
                "breakers": {
                    operation: breaker.describe()
                    for operation, breaker in self._breakers.items()
                },
            }

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_main(self, index: int) -> None:
        """Supervisor shell: respawn the worker when its loop crashes.

        ``_worker_loop`` only escapes on a clean sentinel (return) or a
        thread-killing exception — a real one, or the chaos harness's
        :class:`WorkerCrashInjection`.  Either way the in-flight job was
        already failed with a ``worker_crashed`` reason by the loop's
        finalizer; the supervisor's job is to account for the death and
        put a replacement thread in the pool.
        """
        try:
            self._worker_loop()
        except BaseException:
            self._c_worker_crashes.inc()
            with self._lock:
                self.last_crash_at = time.monotonic()
                closed = self._closed
            if not closed:
                self._c_worker_respawns.inc()
                self._spawn_worker(index)

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._faults.check("jobs.worker_crash")
                self._run_job(job)
            except BaseException as exc:
                # The thread is dying mid-job (only BaseExceptions reach
                # here; _run_job absorbs ordinary ones).  Fail the job
                # with a structured reason so its waiters see a typed
                # outcome instead of hanging, then let the supervisor
                # respawn the worker.
                if not job.event.is_set():
                    job.error = (
                        f"worker thread crashed while running the job: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    job.reason = "worker_crashed"
                    with self._lock:
                        if isinstance(job, BatchJob):
                            # Charge each distinct still-pending item
                            # operation; "batch" itself has no breaker.
                            for operation in job.pending_operations():
                                self._breakers[operation].record_failure()
                            job._fail_pending(job.error)
                        else:
                            self._breakers[job.operation].record_failure()
                    job._finish(FAILED)
                raise
            finally:
                with self._lock:
                    if job.inflight_key is not None:
                        self._inflight.pop(job.inflight_key, None)
                    self._c_completed.labels(job.state).inc()
                    self._record_finished(job)
                self._observe_finished(job)
                self._queue.task_done()

    def _timings(self):
        """A fresh stage timeline, or ``None`` when telemetry is off."""
        tele = self._telemetry
        return tele.timings() if tele is not None and tele.enabled else None

    def _observe_finished(self, job: Job) -> None:
        """Latency observations + one structured log line per run job."""
        tele = self._telemetry
        if tele is None or not tele.enabled:
            return
        queue_wait = None
        if job.started_at is not None:
            queue_wait = max(job.started_at - job.submitted_at, 0.0)
            self._h_queue_wait.observe(queue_wait)
        stages = job.timings or {}
        for name, seconds in stages.items():
            tele.stage_latency.labels(name).observe(seconds)
        tele.emit(
            "job",
            job_id=job.id,
            trace_id=job.trace_id,
            fingerprint=job.fingerprint,
            operation=job.operation,
            state=job.state,
            reason=job.reason,
            cached=job.cached,
            queue_wait_s=queue_wait,
            service_time_s=job.service_time_s(),
            worker_slot=job.worker_slot,
            stages=stages,
        )

    def _note_worker_slot(self, job: Job) -> None:
        """Record which cluster slot owns the job's dataset (log field)."""
        slot_for = getattr(self._executor, "slot_for", None)
        if slot_for is not None:
            try:
                job.worker_slot = slot_for(job.fingerprint)
            except ServiceError:
                pass  # purely observational; never fail the job over it

    def _execute(
        self,
        fingerprint: str,
        operation: str,
        canonical: dict,
        *,
        deadline_at: float | None,
        workers: int | None,
        trace: str | None = None,
        timings=None,
    ) -> dict:
        """One operation's compute, in-process or via the cluster executor.

        The in-process path (``executor=None``) is byte-for-byte the
        pre-cluster code: resident relation from the registry, then
        :func:`~repro.service.operations.run_operation` on this thread.
        With an executor, the relation never materializes here — the
        shard's owning worker hydrates it from its snapshot and runs
        the operation in its own process.
        """
        if self._executor is not None:
            return self._executor.execute(
                fingerprint,
                operation,
                canonical,
                deadline_at=deadline_at,
                workers=workers,
                trace=trace,
                timings=timings,
            )
        relation = self._registry.relation(fingerprint)
        return run_operation(
            relation,
            operation,
            canonical,
            deadline_at=deadline_at,
            workers=workers,
            faults=self._faults,
            timings=timings,
        )

    def _run_job(self, job: Job) -> None:
        if isinstance(job, BatchJob):
            self._run_batch(job)
            return
        job.started_at = time.monotonic()
        if job.deadline_at is not None and job.started_at >= job.deadline_at:
            # Expired while waiting in the queue: report a well-formed
            # timeout without burning a worker on doomed compute.
            job.error = (
                f"deadline of {job.deadline_s:g}s expired before the job "
                f"started (queued {job.started_at - job.submitted_at:.3f}s)"
            )
            job._finish(TIMEOUT)
            return
        job.state = RUNNING
        timings = self._timings()
        run_started = time.perf_counter()
        try:
            self._faults.check("jobs.slow")
            if timings is not None and self._executor is not None:
                self._note_worker_slot(job)
            payload = self._execute(
                job.fingerprint,
                job.operation,
                job.canonical_params,
                deadline_at=job.deadline_at,
                workers=job.workers,
                trace=job.trace_id,
                timings=timings,
            )
            validate_report(payload)
            if not payload.get("partial") and not payload.get("degraded"):
                # Partial (deadline-expired) and degraded (sketch
                # fallback) results are never cached: a retry under
                # better conditions must recompute the exact answer.
                self._cache.put(
                    job.cache_key,
                    payload,
                    meta={
                        "fingerprint": job.fingerprint,
                        "operation": job.operation,
                        "params": job.canonical_params,
                    },
                )
            job.result = payload
            with self._lock:
                self._breakers[job.operation].record_success()
            job._finish(DONE)
        except WorkerCrashedError as exc:
            # The dataset's owning worker *process* died mid-job — the
            # process-level twin of a worker-thread crash, with the same
            # structured reason and breaker accounting.  The cluster
            # supervisor respawns the shard; a retry rehydrates from the
            # snapshot.
            job.error = str(exc)
            job.reason = "worker_crashed"
            with self._lock:
                self._breakers[job.operation].record_failure()
            job._finish(FAILED)
        except DispatchError as exc:
            # The front end could not reach (or gave up on) the owning
            # worker: infrastructure, so the breaker counts it.
            job.error = str(exc)
            job.reason = "dispatch_failed"
            with self._lock:
                self._breakers[job.operation].record_failure()
            job._finish(FAILED)
        except DatasetDegradedError as exc:
            # Infrastructure, not the client's fault: counts toward the
            # breaker so a registry with a vanished source fast-fails
            # instead of re-ingest-storming on every request.
            job.error = str(exc)
            job.reason = "dataset_degraded"
            with self._lock:
                self._breakers[job.operation].record_failure()
            job._finish(FAILED)
        except ReproError as exc:
            # Client errors (bad schema, bad params): the breaker stays
            # untouched — one misbehaving client must not trip the pool
            # shut for everyone else.
            job.error = str(exc)
            job._finish(FAILED)
        except Exception as exc:  # never kill a worker thread
            job.error = f"internal error: {exc}"
            with self._lock:
                self._breakers[job.operation].record_failure()
            traceback.print_exc()
            job._finish(FAILED)
        finally:
            if timings is not None:
                timings.add("run", time.perf_counter() - run_started)
                job.timings = timings.to_dict()

    def _run_batch(self, job: BatchJob) -> None:
        """Execute every pending item against one shared resident relation.

        The registry lookup (and any snapshot/CSV reload it triggers)
        happens **once**; each item then reuses the relation and its
        memoized entropy engine.  Items re-check the cache just before
        running — an earlier identical item in the same batch, or a
        concurrent singleton job, may already have filled it.
        """
        job.started_at = time.monotonic()
        job.state = RUNNING
        timings = self._timings()
        run_started = time.perf_counter()
        if timings is not None and self._executor is not None:
            self._note_worker_slot(job)
        try:
            self._faults.check("jobs.slow")
            # In cluster mode the relation lives in the owning worker,
            # not here; the per-item dispatch below carries the
            # hydration references instead (same worker for every item
            # — the batch shares one fingerprint, hence one shard).
            relation = (
                self._registry.relation(job.fingerprint)
                if self._executor is None
                else None
            )
        except DatasetDegradedError as exc:
            job.error = str(exc)
            job.reason = "dataset_degraded"
            with self._lock:
                for operation in job.pending_operations():
                    self._breakers[operation].record_failure()
            job._fail_pending(str(exc))
            job._finish(FAILED)
            return
        except ReproError as exc:
            job.error = str(exc)
            job._fail_pending(str(exc))
            job._finish(FAILED)
            return
        except Exception as exc:  # never kill a worker thread
            job.error = f"internal error: {exc}"
            with self._lock:
                for operation in job.pending_operations():
                    self._breakers[operation].record_failure()
            traceback.print_exc()
            job._fail_pending(job.error)
            job._finish(FAILED)
            return
        for item in job.items:
            if item.state != QUEUED:
                continue
            cached = self._cache.get(item.cache_key)
            if cached is not None:
                cached["cached"] = True
                item.result = cached
                item.cached = True
                item.state = DONE
                self._c_batch_item_cache_hits.inc()
                continue
            item.state = RUNNING
            try:
                if relation is not None:
                    payload = run_operation(
                        relation,
                        item.operation,
                        item.canonical_params,
                        deadline_at=None,
                        workers=None,
                        faults=self._faults,
                        timings=timings,
                    )
                else:
                    payload = self._executor.execute(
                        job.fingerprint,
                        item.operation,
                        item.canonical_params,
                        deadline_at=None,
                        workers=None,
                        trace=job.trace_id,
                        timings=timings,
                    )
                validate_report(payload)
                if not payload.get("partial") and not payload.get("degraded"):
                    self._cache.put(
                        item.cache_key,
                        payload,
                        meta={
                            "fingerprint": job.fingerprint,
                            "operation": item.operation,
                            "params": item.canonical_params,
                        },
                    )
                item.result = payload
                item.state = DONE
                with self._lock:
                    self._breakers[item.operation].record_success()
            except (
                WorkerCrashedError,
                DispatchError,
                DatasetDegradedError,
            ) as exc:
                # Cluster-mode infrastructure failure: every remaining
                # item targets the same dataset, hence the same (dead or
                # unreachable or degraded) worker path — fail the batch's
                # pending items together instead of grinding through K
                # identical failures.
                item.error = str(exc)
                item.state = FAILED
                job.reason = (
                    "worker_crashed"
                    if isinstance(exc, WorkerCrashedError)
                    else "dataset_degraded"
                    if isinstance(exc, DatasetDegradedError)
                    else "dispatch_failed"
                )
                with self._lock:
                    self._breakers[item.operation].record_failure()
                    for operation in job.pending_operations():
                        self._breakers[operation].record_failure()
                job._fail_pending(str(exc))
                break
            except ReproError as exc:
                # Client error on one item: that item fails, the rest
                # of the batch keeps going, breaker untouched.
                item.error = str(exc)
                item.state = FAILED
            except Exception as exc:  # never kill a worker thread
                item.error = f"internal error: {exc}"
                item.state = FAILED
                with self._lock:
                    self._breakers[item.operation].record_failure()
                traceback.print_exc()
        failed = sum(item.state == FAILED for item in job.items)
        if failed:
            job.error = f"{failed} of {len(job.items)} operations failed"
        if timings is not None:
            timings.add("run", time.perf_counter() - run_started)
            job.timings = timings.to_dict()
        job._finish(FAILED if failed == len(job.items) else DONE)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the workers.

        Queued-but-unstarted jobs are failed immediately (never left
        hanging for waiters), so the shutdown sentinels reach the
        workers without blocking behind pending work; workers still
        finish the job they are currently running.  Idempotent: a
        second call returns immediately.  Safe against racing submits:
        the closed flag flips under the queue lock, so a concurrent
        submit either lands before the drain (and is failed by it) or
        is rejected with a typed error — never silently dropped.
        """
        with self._lock:
            if self._closed:
                return  # double-shutdown is a no-op
            self._closed = True
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            job.error = "server shut down before the job started"
            job.reason = "shutdown"
            if isinstance(job, BatchJob):
                job._fail_pending(job.error)
            with self._lock:
                if job.inflight_key is not None:
                    self._inflight.pop(job.inflight_key, None)
                self._c_completed.labels(FAILED).inc()
                self._record_finished(job)
            job._finish(FAILED)
            self._queue.task_done()
        with self._lock:
            workers = [w for w in self._workers if w is not None]
        for _ in workers:
            try:
                # Bounded wait: with max_queue < workers the sentinels
                # only fit as workers drain them.  Workers stuck on a
                # long-running job are daemon threads; give up rather
                # than stall the caller indefinitely.
                self._queue.put(None, timeout=2)
            except queue.Full:
                break
        if wait:
            for worker in workers:
                worker.join(timeout=10)

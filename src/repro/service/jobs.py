"""Job queue + worker pool: asynchronous, cached, deadline-bounded compute.

``POST /jobs`` becomes a :class:`Job` here.  The submission path is
where all the amortization happens, in order:

1. **Cache hit** — the `(fingerprint, operation, canonical params)` key
   is already in the :class:`~repro.service.cache.ResultCache`: the job
   is born ``done`` with the cached report (marked ``cached: true``)
   and never touches a worker.
2. **In-flight coalescing** — an identical job is already queued or
   running: the *same* job object is returned, so concurrent identical
   clients share one computation and read bit-identical reports.
3. **Enqueue** — otherwise the job is queued for the worker pool, with
   **backpressure**: beyond ``max_queue`` waiting jobs, submission
   raises :class:`~repro.errors.QueueFullError` (HTTP 503).

Workers are threads (the compute is numpy-heavy, releasing the GIL in
the hot group-by/bincount kernels; mining jobs may additionally request
the fork-based split-scoring pool via their ``workers`` param, which
runs inside the worker thread).  Each job's optional ``deadline``
becomes an absolute timestamp at submission: a job that *starts* past
its deadline is failed as ``timeout`` without computing, and one that
starts in time hands the remaining budget to the search context
(:meth:`~repro.discovery.context.SearchContext.create` via
``deadline_at``), so an expiring search returns its best-so-far schema
with ``partial: true``.  Timed-out and partial results are **never
cached** — a retry with a larger budget must recompute.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from collections import deque

from repro.errors import QueueFullError, ReproError, ServiceError
from repro.factorize.report import validate_report
from repro.service.cache import ResultCache, canonical_key
from repro.service.operations import canonicalize_params, run_operation
from repro.service.registry import DatasetRegistry

#: Job lifecycle states (``state`` in every ``GET /jobs/{id}`` response).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"


class Job:
    """One unit of requested work and its observable lifecycle."""

    __slots__ = (
        "cache_key",
        "cached",
        "canonical_params",
        "deadline_at",
        "deadline_s",
        "error",
        "event",
        "fingerprint",
        "finished_at",
        "id",
        "inflight_key",
        "operation",
        "result",
        "started_at",
        "state",
        "submitted_at",
        "workers",
    )

    def __init__(
        self,
        job_id: str,
        fingerprint: str,
        operation: str,
        canonical_params: dict,
        cache_key: str,
        *,
        deadline_s: float | None,
        workers: int | None,
    ) -> None:
        self.id = job_id
        self.fingerprint = fingerprint
        self.operation = operation
        self.canonical_params = canonical_params
        self.cache_key = cache_key
        self.inflight_key: str | None = None
        self.deadline_s = deadline_s
        self.deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self.workers = workers
        self.state = QUEUED
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.cached = False
        self.event = threading.Event()

    def service_time_s(self) -> float | None:
        """Submission-to-completion wall time (None while unfinished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def describe(self, *, include_result: bool = True) -> dict:
        """JSON view served by ``GET /jobs/{id}``."""
        view = {
            "job_id": self.id,
            "state": self.state,
            "operation": self.operation,
            "fingerprint": self.fingerprint,
            "params": dict(self.canonical_params),
            "cached": self.cached,
            "deadline_s": self.deadline_s,
            "service_time_s": self.service_time_s(),
            "partial": bool(self.result and self.result.get("partial")),
        }
        if self.error is not None:
            view["error"] = self.error
        if include_result and self.result is not None:
            view["result"] = self.result
        return view

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; ``True`` iff it did."""
        return self.event.wait(timeout)

    def _finish(self, state: str) -> None:
        self.state = state
        self.finished_at = time.monotonic()
        self.event.set()


class JobQueue:
    """Bounded queue + thread worker pool over a registry and a cache."""

    def __init__(
        self,
        registry: DatasetRegistry,
        cache: ResultCache,
        *,
        workers: int = 2,
        max_queue: int = 64,
        default_deadline_s: float | None = None,
        max_finished: int = 4096,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_finished < 1:
            raise ServiceError(f"max_finished must be >= 1, got {max_finished}")
        self._registry = registry
        self._cache = cache
        self._default_deadline_s = default_deadline_s
        self._queue: queue.Queue[Job | None] = queue.Queue(maxsize=max_queue)
        self._jobs: dict[str, Job] = {}
        #: Finished job ids, oldest first: only the newest ``max_finished``
        #: finished jobs stay pollable; older ones are forgotten so a
        #: long-lived server's memory is bounded by traffic *rate*, not
        #: lifetime request count.  Queued/running jobs are never pruned.
        self._finished: deque[str] = deque()
        self._max_finished = max_finished
        self._inflight: dict[str, Job] = {}  # cache_key → live deadline-free job
        # Reentrant: the submit miss path creates jobs under the lock.
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self.coalesced = 0
        self.completed = {DONE: 0, FAILED: 0, TIMEOUT: 0}
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
    ) -> Job:
        """Create (or coalesce into, or answer from cache) one job."""
        if self._closed:
            raise ServiceError("job queue is shut down")
        params = dict(params or {})
        workers = params.pop("workers", None)
        if workers is not None and (
            isinstance(workers, bool) or not isinstance(workers, int) or workers < 1
        ):
            raise ServiceError(f"workers must be a positive integer, got {workers!r}")
        deadline_s = params.pop("deadline", None)
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(
                deadline_s, (int, float)
            ):
                raise ServiceError(
                    f"deadline must be a number of seconds, got {deadline_s!r}"
                )
            if deadline_s <= 0:
                raise ServiceError(f"deadline must be positive, got {deadline_s}")
            deadline_s = float(deadline_s)
        else:
            deadline_s = self._default_deadline_s
        canonical = canonicalize_params(operation, params)
        self._registry.get(fingerprint)  # raises UnknownDatasetError early
        key = canonical_key(fingerprint, operation, canonical)
        # The cache key is deadline-free (cached results are complete,
        # hence valid under any budget); coalescing is stricter still:
        # only deadline-free jobs coalesce.  Relative deadlines become
        # absolute at submission, so two "deadline=10" requests arriving
        # seconds apart have *different* remaining budgets — sharing one
        # outcome would hand the later caller less wall clock than it
        # asked for (or a timeout it never earned).
        inflight_key = key if deadline_s is None else None

        cached = self._cache.get(key)
        if cached is not None:
            job = self._new_job(
                fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers,
            )
            job.cached = True
            job.result = cached
            job.result["cached"] = True
            job._finish(DONE)
            with self._lock:
                self.completed[DONE] += 1
                self._record_finished(job)
            return job

        with self._lock:
            inflight = (
                self._inflight.get(inflight_key)
                if inflight_key is not None
                else None
            )
            if inflight is not None:
                self.coalesced += 1
                return inflight
            job = self._new_job(
                fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers,
            )
            # Enqueue while still holding the lock (put_nowait cannot
            # block): nobody can coalesce onto a job that backpressure
            # is about to roll back.
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._jobs.pop(job.id, None)
                raise QueueFullError(
                    f"job queue is full ({self._queue.maxsize} waiting); "
                    "retry later"
                ) from None
            if inflight_key is not None:
                job.inflight_key = inflight_key
                self._inflight[inflight_key] = job
        return job

    def _new_job(
        self,
        fingerprint: str,
        operation: str,
        canonical: dict,
        key: str,
        *,
        deadline_s: float | None,
        workers: int | None,
    ) -> Job:
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = Job(
                job_id, fingerprint, operation, canonical, key,
                deadline_s=deadline_s, workers=workers,
            )
            self._jobs[job_id] = job
            return job

    def _record_finished(self, job: Job) -> None:
        """Bound finished-job retention (caller holds the lock)."""
        self._finished.append(job.id)
        while len(self._finished) > self._max_finished:
            self._jobs.pop(self._finished.popleft(), None)

    # ------------------------------------------------------------------
    # Lookup + stats
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id!r}")
        return job

    def stats(self) -> dict:
        """JSON-ready queue summary (part of ``GET /stats``)."""
        with self._lock:
            states = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, TIMEOUT: 0}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "jobs": len(self._jobs),
                "states": states,
                # Lifetime totals: `states` only covers the retained
                # (un-pruned) jobs, these never decrease.
                "completed_total": dict(self.completed),
                "waiting": self._queue.qsize(),
                "max_queue": self._queue.maxsize,
                "workers": len(self._workers),
                "coalesced": self.coalesced,
            }

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    if job.inflight_key is not None:
                        self._inflight.pop(job.inflight_key, None)
                    self.completed[job.state] = (
                        self.completed.get(job.state, 0) + 1
                    )
                    self._record_finished(job)
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        job.started_at = time.monotonic()
        if job.deadline_at is not None and job.started_at >= job.deadline_at:
            # Expired while waiting in the queue: report a well-formed
            # timeout without burning a worker on doomed compute.
            job.error = (
                f"deadline of {job.deadline_s:g}s expired before the job "
                f"started (queued {job.started_at - job.submitted_at:.3f}s)"
            )
            job._finish(TIMEOUT)
            return
        job.state = RUNNING
        try:
            relation = self._registry.relation(job.fingerprint)
            payload = run_operation(
                relation,
                job.operation,
                job.canonical_params,
                deadline_at=job.deadline_at,
                workers=job.workers,
            )
            validate_report(payload)
            if not payload.get("partial"):
                self._cache.put(
                    job.cache_key,
                    payload,
                    meta={
                        "fingerprint": job.fingerprint,
                        "operation": job.operation,
                        "params": job.canonical_params,
                    },
                )
            job.result = payload
            job._finish(DONE)
        except ReproError as exc:
            job.error = str(exc)
            job._finish(FAILED)
        except Exception as exc:  # never kill a worker thread
            job.error = f"internal error: {exc}"
            traceback.print_exc()
            job._finish(FAILED)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the workers.

        Queued-but-unstarted jobs are failed immediately (never left
        hanging for waiters), so the shutdown sentinels reach the
        workers without blocking behind pending work; workers still
        finish the job they are currently running.
        """
        if self._closed:
            return
        self._closed = True
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            job.error = "server shut down before the job started"
            with self._lock:
                if job.inflight_key is not None:
                    self._inflight.pop(job.inflight_key, None)
                self.completed[FAILED] += 1
                self._record_finished(job)
            job._finish(FAILED)
            self._queue.task_done()
        for _ in self._workers:
            try:
                # Bounded wait: with max_queue < workers the sentinels
                # only fit as workers drain them.  Workers stuck on a
                # long-running job are daemon threads; give up rather
                # than stall the caller indefinitely.
                self._queue.put(None, timeout=2)
            except queue.Full:
                break
        if wait:
            for worker in self._workers:
                worker.join(timeout=10)

"""Result cache: ``(fingerprint, operation, canonical params)`` → report.

Every completed job's JSON report is cached under a digest of its
dataset fingerprint, operation name, and **canonicalized** parameters
(defaults filled in, irrelevant knobs dropped, keys sorted), so any two
requests that would compute the same thing share one entry regardless
of how sparsely the client spelled its parameters.

Two layers:

* an in-memory LRU (``max_entries``), serving hits in O(1);
* an optional on-disk **spill** (``spill_dir``): every stored report is
  also written as one JSON file named by its key digest, and a memory
  miss falls through to disk before being declared a miss.  A restarted
  service pointed at the same spill directory therefore starts warm.

Only reports that pass the shared CLI schema
(:func:`repro.factorize.report.validate_report`) are admitted — on put
*and* again when re-loaded from disk — so a cache can never serve a
malformed report.  Partial results (deadline-expired mining) are the
caller's responsibility to withhold; see :mod:`repro.service.jobs`.

Crash safety: spill writes fsync the temp file before the atomic
rename (a hard kill cannot leave an empty-but-renamed entry), and a
corrupt/truncated/schema-invalid spill file found at read time is
**quarantined** — renamed aside into ``quarantine/`` and counted in
``stats()`` — instead of raising or being retried forever.  A poisoned
disk tier therefore degrades to a cache miss plus a recorded incident,
never an error on the serving path.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path

from repro.errors import ReproError, ServiceError
from repro.factorize.report import validate_report
from repro.service.faults import DISABLED, FaultPlan
from repro.service.telemetry import MetricsRegistry


def canonical_key(fingerprint: str, operation: str, params: dict) -> str:
    """Digest identifying one unit of cacheable work.

    ``params`` must already be canonical (see
    :func:`repro.service.operations.canonicalize_params`); this function
    only serializes deterministically and hashes.
    """
    payload = json.dumps(
        {"fingerprint": fingerprint, "operation": operation, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class ResultCache:
    """LRU report cache with optional on-disk spill."""

    def __init__(
        self,
        *,
        max_entries: int = 1024,
        spill_dir: str | Path | None = None,
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_entries < 1:
            raise ServiceError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._faults = faults if faults is not None else DISABLED
        self._entries: OrderedDict[str, dict] = OrderedDict()
        # Sidecar per-entry metadata ({fingerprint, operation, params},
        # as supplied by the job layer) plus a fingerprint → keys index,
        # so delta ingest can enumerate a dataset's cached results for
        # revalidation without scanning every entry.
        self._meta: dict[str, dict] = {}
        self._by_fingerprint: dict[str, set[str]] = {}
        self._lock = threading.Lock()
        # Counters live on the (shared) metrics registry — ``/stats``
        # and ``/v1/metrics`` read the same instruments, so the two
        # documents can never disagree.  Standalone (unit-test) caches
        # get a private registry.
        metrics = metrics or MetricsRegistry()
        self._c_hits = metrics.counter(
            "cache_hits_total", "Result-cache hits (memory or spill)"
        )
        self._c_misses = metrics.counter(
            "cache_misses_total", "Result-cache misses"
        )
        self._c_spill_loads = metrics.counter(
            "cache_spill_loads_total", "Entries rehydrated from the disk spill"
        )
        self._c_spill_writes = metrics.counter(
            "cache_spill_writes_total", "Entries spilled to disk"
        )
        self._c_quarantined = metrics.counter(
            "cache_quarantined_total", "Poisoned spill files quarantined"
        )
        self._c_invalidated = metrics.counter(
            "cache_invalidated_total", "Entries explicitly invalidated"
        )
        self.last_quarantine_at: float | None = None  # time.monotonic()

    # Counter attributes stay readable (health checks, tests) while the
    # values live on the metrics registry.
    @property
    def hits(self) -> int:
        return int(self._c_hits.value())

    @property
    def misses(self) -> int:
        return int(self._c_misses.value())

    @property
    def spill_loads(self) -> int:
        return int(self._c_spill_loads.value())

    @property
    def spill_writes(self) -> int:
        return int(self._c_spill_writes.value())

    @property
    def quarantined(self) -> int:
        return int(self._c_quarantined.value())

    @property
    def invalidated(self) -> int:
        return int(self._c_invalidated.value())

    # ------------------------------------------------------------------
    def _spill_path(self, key: str) -> Path | None:
        if self._spill_dir is None:
            return None
        return self._spill_dir / f"result-{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached report for ``key``, or ``None`` (counts a miss).

        Hits return a **deep copy** so callers can annotate their
        response (``cached: true`` etc.) without corrupting the cache.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return json.loads(json.dumps(cached))
        spilled = self._load_spilled(key)
        with self._lock:
            if spilled is not None:
                payload, meta = spilled
                self._c_hits.inc()
                self._c_spill_loads.inc()
                self._admit(key, payload, meta)
                return json.loads(json.dumps(payload))
            self._c_misses.inc()
        return None

    def _load_spilled(self, key: str) -> tuple[dict, dict] | None:
        path = self._spill_path(key)
        if path is None or not path.exists():
            return None
        try:
            text = path.read_text()
            if self._faults.fire("cache.spill_read_corrupt"):
                # Chaos: the read sees a torn file (first half only).
                text = text[: len(text) // 2]
            document = json.loads(text)
            payload = document["payload"]
            validate_report(payload)
            meta = document.get("meta")
            return payload, meta if isinstance(meta, dict) else {}
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            # A torn, stale, or schema-invalid spill file is a miss,
            # never an error — and it is quarantined so it cannot be
            # re-parsed on every later lookup (or mistaken for healthy
            # state by an operator inspecting the spill directory).
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Rename a poisoned spill file aside into ``quarantine/``."""
        try:
            target_dir = path.parent / "quarantine"
            target_dir.mkdir(parents=True, exist_ok=True)
            path.replace(target_dir / path.name)
        except OSError:
            pass  # best effort: a miss either way
        with self._lock:
            self._c_quarantined.inc()
            self.last_quarantine_at = time.monotonic()

    def put(self, key: str, payload: dict, *, meta: dict | None = None) -> None:
        """Admit a report (validated against the shared schema) under ``key``."""
        validate_report(payload)
        frozen = json.loads(json.dumps(payload))  # detach from the producer
        with self._lock:
            self._admit(key, frozen, meta)
        path = self._spill_path(key)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                document = {"key": key, "meta": meta or {}, "payload": frozen}
                tmp = path.with_suffix(".tmp")
                with open(tmp, "w", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(document, indent=2, sort_keys=True) + "\n"
                    )
                    handle.flush()
                    # Durability before visibility: without the fsync, a
                    # hard kill after the rename could surface an
                    # empty-but-renamed entry from the page cache.
                    os.fsync(handle.fileno())
                tmp.replace(path)  # atomic: readers never see a torn file
                if self._faults.fire("cache.spill_write_torn"):
                    # Chaos: simulate a crash that tore the entry on
                    # disk (e.g. pre-fsync-discipline corruption) — the
                    # read path must quarantine it, never serve it.
                    with open(path, "r+", encoding="utf-8") as handle:
                        handle.truncate(max(path.stat().st_size // 2, 1))
                self._c_spill_writes.inc()
            except OSError:
                pass  # spill is best-effort; the memory tier already has it

    def _admit(self, key: str, payload: dict, meta: dict | None = None) -> None:
        """Insert/refresh under the LRU cap (caller holds the lock)."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        if meta:
            self._index(key, meta)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._unindex(evicted)

    def _index(self, key: str, meta: dict) -> None:
        """Record ``key``'s metadata + fingerprint index (lock held)."""
        self._meta[key] = dict(meta)
        fingerprint = meta.get("fingerprint")
        if isinstance(fingerprint, str):
            self._by_fingerprint.setdefault(fingerprint, set()).add(key)

    def _unindex(self, key: str) -> None:
        """Drop ``key`` from the metadata sidecar + index (lock held)."""
        meta = self._meta.pop(key, None)
        if meta is None:
            return
        fingerprint = meta.get("fingerprint")
        keys = self._by_fingerprint.get(fingerprint)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_fingerprint[fingerprint]

    def entries_for(self, fingerprint: str) -> list[tuple[str, dict, dict]]:
        """All indexed ``(key, meta, payload)`` entries for one dataset.

        Covers entries stored (or spill-rehydrated) by *this* process —
        spilled entries from a previous run that were never touched are
        not enumerated; they age out as stale keys nobody asks for.
        Payloads and meta are deep copies.
        """
        with self._lock:
            keys = sorted(self._by_fingerprint.get(fingerprint, ()))
            out = []
            for key in keys:
                payload = self._entries.get(key)
                if payload is None:
                    continue
                out.append(
                    (
                        key,
                        dict(self._meta.get(key, {})),
                        json.loads(json.dumps(payload)),
                    )
                )
            return out

    def remove(self, key: str) -> None:
        """Invalidate one entry: memory, index, and spill file."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            self._unindex(key)
            if existed:
                self._c_invalidated.inc()
        path = self._spill_path(key)
        if path is not None:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # best effort; a stale spill entry is only a cache hit
                # for the superseded fingerprint, which nothing asks for

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-ready cache summary (part of ``GET /stats``)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "spill_dir": (
                    str(self._spill_dir) if self._spill_dir is not None else None
                ),
                "spill_loads": self.spill_loads,
                "spill_writes": self.spill_writes,
                "quarantined": self.quarantined,
                "invalidated": self.invalidated,
            }

"""Python client for the decomposition service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the HTTP/JSON API in typed-ish methods and
polling helpers, so scripts (the CI smoke job, the benchmarks, user
code) never hand-roll requests::

    client = ServiceClient("http://127.0.0.1:8765")
    dataset = client.register_dataset(path="examples/planted_mvd.csv")
    report = client.mine(dataset["fingerprint"], strategy="beam")
    assert report["rho"] == 0.0

Convenience methods (``mine`` / ``analyze`` / ``decompose``) submit a
job and block until it finishes, returning the report and raising
:class:`ServiceClientError` on ``failed`` / ``timeout`` jobs.  The
lower-level ``submit_job`` / ``get_job`` / ``wait_job`` expose the
asynchronous lifecycle directly.

Resilience (see ``docs/robustness.md``): every request is retried up to
``retries`` times on transport failures (dropped/reset connections,
truncated bodies, timeouts) and on HTTP 503 — with capped exponential
backoff, full jitter, and the server's ``Retry-After`` honoured as a
floor.  Other HTTP errors (400/404/409/...) are never retried: they are
deterministic.  ``submit_job`` attaches an ``idempotency_key`` (an
auto-generated UUID unless the caller picks one) that is constant
across the retries of one logical submit, so a POST whose response was
lost on the wire is replayed — never re-run — by the server.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import uuid

from repro.errors import ServiceError

#: Transport-level failures worth retrying: the request may never have
#: reached the server, or the response died on the wire.  (HTTPError
#: subclasses URLError and carries a status; it is handled separately.)
_RETRYABLE_TRANSPORT = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
)


class ServiceClientError(ServiceError):
    """An HTTP call failed; carries the status and server-sent error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Thin JSON-over-HTTP client for one service base URL.

    ``retries`` counts *re*-attempts (0 disables retrying entirely);
    ``backoff_base_s``/``backoff_cap_s`` shape the capped exponential
    full-jitter backoff; ``seed`` makes the jitter deterministic for
    tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        seed: int | None = None,
    ) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(seed)
        self.retried = 0  # lifetime count of re-attempted requests

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int, *, floor: float = 0.0) -> float:
        """Full-jitter capped exponential backoff for re-attempt #attempt."""
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        return max(self._rng.uniform(0, ceiling), floor)

    @staticmethod
    def _retry_after_s(exc: urllib.error.HTTPError) -> float:
        """The server's Retry-After hint in seconds (0 when absent/garbled)."""
        raw = exc.headers.get("Retry-After") if exc.headers else None
        try:
            return max(float(raw), 0.0) if raw is not None else 0.0
        except ValueError:
            return 0.0

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # A status line arrived, so the server is up and spoke.
                # Only 503 (backpressure / open breaker) is transient;
                # everything else is deterministic and retrying would
                # just repeat the failure N times slower.
                if exc.code == 503 and attempt < self.retries:
                    delay = self._backoff_s(
                        attempt, floor=self._retry_after_s(exc)
                    )
                    attempt += 1
                    self.retried += 1
                    time.sleep(delay)
                    continue
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get(
                        "error", ""
                    )
                except (OSError, ValueError, AttributeError) as decode_exc:
                    # The error body was unreadable or not JSON; fall
                    # back to the bare HTTP reason but keep the decode
                    # failure chained for debugging.
                    raise ServiceClientError(
                        exc.code, str(exc.reason)
                    ) from decode_exc
                raise ServiceClientError(
                    exc.code, detail or str(exc.reason)
                ) from exc
            except _RETRYABLE_TRANSPORT as exc:
                # No (complete) response: dropped, reset, truncated, or
                # timed out.  The request may or may not have executed —
                # which is why submit_job sends an idempotency key.
                if attempt < self.retries:
                    delay = self._backoff_s(attempt)
                    attempt += 1
                    self.retried += 1
                    time.sleep(delay)
                    continue
                reason = getattr(exc, "reason", None) or exc
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {reason}"
                ) from exc

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        *,
        path: str | None = None,
        csv: str | None = None,
        chunk_rows: int | None = None,
        name: str | None = None,
    ) -> dict:
        """Register a dataset by server-local path or inline CSV text."""
        body: dict = {}
        if path is not None:
            body["path"] = str(path)
        if csv is not None:
            body["csv"] = csv
        if chunk_rows is not None:
            body["chunk_rows"] = chunk_rows
        if name is not None:
            body["name"] = name
        return self._request("POST", "/datasets", body)

    def get_dataset(self, fingerprint: str) -> dict:
        return self._request("GET", f"/datasets/{fingerprint}")

    def list_datasets(self) -> list[dict]:
        return self._request("GET", "/datasets")["datasets"]

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit_job(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit one job, idempotently across this call's retries.

        The key (auto-generated unless given) is part of the request
        body, so every retry of this submit carries the same token and
        the server replays — not re-runs — the job when an earlier
        attempt did land but its response was lost.
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        return self._request(
            "POST",
            "/jobs",
            {
                "fingerprint": fingerprint,
                "operation": operation,
                "params": params or {},
                "idempotency_key": idempotency_key,
            },
        )

    def submit_batch(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit a vector of operations as one batch job.

        ``operations`` is a list of ``{"operation": ..., "params": ...}``
        objects (``params`` optional).  Like :meth:`submit_job`, the
        submission is idempotent across this call's transport retries.
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        return self._request(
            "POST",
            "/jobs/batch",
            {
                "fingerprint": fingerprint,
                "operations": operations,
                "idempotency_key": idempotency_key,
            },
        )

    def get_job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
        poll_cap_s: float = 0.5,
    ) -> dict:
        """Poll until the job leaves queued/running; return its view.

        The poll interval starts at ``poll_s`` and grows geometrically
        (with jitter, capped at ``poll_cap_s``), so short jobs return
        promptly while long jobs do not hammer the server — and a herd
        of waiting clients does not poll in lockstep.
        """
        deadline = time.monotonic() + timeout
        interval = poll_s
        while True:
            view = self.get_job(job_id)
            if view["state"] not in ("queued", "running"):
                return view
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"job {job_id} still {view['state']} after {timeout:g}s"
                )
            sleep_s = min(
                self._rng.uniform(interval * 0.5, interval), deadline - now
            )
            time.sleep(max(sleep_s, 0.0))
            interval = min(interval * 1.6, poll_cap_s)

    def wait_batch(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
        poll_cap_s: float = 0.5,
    ) -> dict:
        """Alias of :meth:`wait_job` — batch jobs share the poll lifecycle."""
        return self.wait_job(
            job_id, timeout=timeout, poll_s=poll_s, poll_cap_s=poll_cap_s
        )

    def run_batch(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        timeout: float = 60.0,
    ) -> dict:
        """Submit a batch, wait, and return the finished job view."""
        job = self.submit_batch(fingerprint, operations)
        if job["state"] in ("queued", "running"):
            job = self.wait_batch(job["job_id"], timeout=timeout)
        return job

    def batch_reports(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        timeout: float = 60.0,
    ) -> list[dict]:
        """Run a batch and return the per-item reports, in order.

        Raises on a failed batch or on any failed item — use
        :meth:`run_batch` for per-item error handling.
        """
        job = self.run_batch(fingerprint, operations, timeout=timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"batch {job['job_id']} ended {job['state']}: "
                f"{job.get('error', 'no detail')}"
            )
        reports = []
        for index, item in enumerate(job["items"]):
            if item["state"] != "done":
                raise ServiceError(
                    f"batch {job['job_id']} item {index} "
                    f"({item['operation']}) ended {item['state']}: "
                    f"{item.get('error', 'no detail')}"
                )
            reports.append(item["result"])
        return reports

    def run(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        timeout: float = 60.0,
    ) -> dict:
        """Submit, wait, and return the finished job view (any state)."""
        job = self.submit_job(fingerprint, operation, params)
        if job["state"] in ("queued", "running"):
            job = self.wait_job(job["job_id"], timeout=timeout)
        return job

    def _report(self, job: dict) -> dict:
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['job_id']} ended {job['state']}: "
                f"{job.get('error', 'no detail')}"
            )
        return job["result"]

    def mine(self, fingerprint: str, *, timeout: float = 60.0, **params) -> dict:
        """Mine a schema; returns the report (raises on failed/timeout)."""
        return self._report(self.run(fingerprint, "mine", params, timeout=timeout))

    def analyze(
        self, fingerprint: str, schema: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Analyze under an explicit schema; returns the report."""
        params["schema"] = schema
        return self._report(
            self.run(fingerprint, "analyze", params, timeout=timeout)
        )

    def decompose(
        self, fingerprint: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Decompose (mining unless ``schema=`` given); returns the report."""
        return self._report(
            self.run(fingerprint, "decompose", params, timeout=timeout)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def cluster_stats(self) -> dict | None:
        """The ``cluster`` section of ``/stats``.

        ``None`` when the server runs single-process
        (``--worker-procs 0``), which omits the section entirely.
        """
        return self.stats().get("cluster")

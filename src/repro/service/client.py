"""Python client for the decomposition service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the HTTP/JSON API in typed-ish methods and
polling helpers, so scripts (the CI smoke job, the benchmarks, user
code) never hand-roll requests::

    client = ServiceClient("http://127.0.0.1:8765")
    dataset = client.register_dataset(path="examples/planted_mvd.csv")
    report = client.mine(dataset["fingerprint"], strategy="beam")
    assert report["rho"] == 0.0

Convenience methods (``mine`` / ``analyze`` / ``decompose``) submit a
job and block until it finishes, returning the report and raising
:class:`ServiceClientError` on ``failed`` / ``timeout`` jobs.  The
lower-level ``submit_job`` / ``get_job`` / ``wait_job`` expose the
asynchronous lifecycle directly.

Resilience (see ``docs/robustness.md``): every request is retried up to
``retries`` times on transport failures (dropped/reset connections,
truncated bodies, timeouts) and on HTTP errors the server marks
``"retryable": true`` in its typed envelope (queue full, open breaker —
with a legacy fallback to "retry iff 503") — with capped exponential
backoff, full jitter, and the server's ``retry_after_s`` /
``Retry-After`` honoured as a floor.  Other HTTP errors (400/404/409/
...) are never retried: they are deterministic.  ``submit_job``
attaches an ``idempotency_key`` (an auto-generated UUID unless the
caller picks one) that is constant across the retries of one logical
submit, so a POST whose response was lost on the wire is replayed —
never re-run — by the server.

Errors surface as typed exceptions mapped from the envelope's machine
code (see ``ERROR_CATALOG`` in :mod:`repro.service.http`): 400 →
:class:`BadRequestError`, 404 → :class:`UnknownResourceError`, 409 →
:class:`DegradedDatasetError`, 503 → :class:`ServiceUnavailableError`,
500 → :class:`InternalServerError` — all subclasses of
:class:`ServiceClientError`, which carries ``.status``, ``.code``,
``.retryable``, and ``.retry_after_s``.  Requests default to the
versioned ``/v1/`` paths; pass ``api_version=None`` to exercise the
deprecated bare aliases.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import uuid

from repro.errors import ServiceError

#: Transport-level failures worth retrying: the request may never have
#: reached the server, or the response died on the wire.  (HTTPError
#: subclasses URLError and carries a status; it is handled separately.)
_RETRYABLE_TRANSPORT = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
)


class ServiceClientError(ServiceError):
    """An HTTP call failed; carries the typed envelope fields.

    ``status`` is the HTTP status, ``code`` the machine-readable error
    code from the envelope (``"unknown"`` when the server sent a legacy
    string error), ``retryable`` whether the server said a retry can
    succeed, ``retry_after_s`` its backoff hint (or ``None``), and
    ``request_id`` the server's ``X-Request-Id`` header — quote it when
    reporting a failure and the operator can grep the request log for
    the exact exchange.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        code: str | None = None,
        retryable: bool = False,
        retry_after_s: float | None = None,
        request_id: str | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code or "unknown"
        self.retryable = retryable
        self.retry_after_s = retry_after_s
        self.request_id = request_id


class BadRequestError(ServiceClientError):
    """400 ``bad_request``: malformed body, params, CSV, or schema."""


class UnknownResourceError(ServiceClientError):
    """404 ``unknown_dataset`` / ``unknown_job`` / ``unknown_route``."""


class DegradedDatasetError(ServiceClientError):
    """409 ``dataset_degraded``: source gone/changed; re-register to heal."""


class ServiceUnavailableError(ServiceClientError):
    """503 ``queue_full`` / ``circuit_open``: transient, retryable."""


class InternalServerError(ServiceClientError):
    """500 ``internal``: an unexpected server-side failure."""


#: Envelope code → typed exception class (fallback: ServiceClientError).
_CODE_EXCEPTIONS = {
    "bad_request": BadRequestError,
    "unknown_dataset": UnknownResourceError,
    "unknown_job": UnknownResourceError,
    "unknown_route": UnknownResourceError,
    "dataset_degraded": DegradedDatasetError,
    "queue_full": ServiceUnavailableError,
    "circuit_open": ServiceUnavailableError,
    "internal": InternalServerError,
}


class ServiceClient:
    """Thin JSON-over-HTTP client for one service base URL.

    ``retries`` counts *re*-attempts (0 disables retrying entirely);
    ``backoff_base_s``/``backoff_cap_s`` shape the capped exponential
    full-jitter backoff; ``seed`` makes the jitter deterministic for
    tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        seed: int | None = None,
        api_version: str | None = "v1",
    ) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self._prefix = f"/{api_version}" if api_version else ""
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(seed)
        self.retried = 0  # lifetime count of re-attempted requests

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int, *, floor: float = 0.0) -> float:
        """Full-jitter capped exponential backoff for re-attempt #attempt."""
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        return max(self._rng.uniform(0, ceiling), floor)

    @staticmethod
    def _retry_after_s(exc: urllib.error.HTTPError) -> float:
        """The server's Retry-After hint in seconds (0 when absent/garbled)."""
        raw = exc.headers.get("Retry-After") if exc.headers else None
        try:
            return max(float(raw), 0.0) if raw is not None else 0.0
        except ValueError:
            return 0.0

    @staticmethod
    def _parse_error_body(
        exc: urllib.error.HTTPError,
    ) -> tuple[str | None, str, bool, float | None]:
        """Decode an error response: ``(code, message, retryable, retry_after_s)``.

        Understands the typed envelope (``{"error": {"code": ...}}``),
        the legacy string form (``{"error": "..."}``), and unreadable /
        non-JSON bodies — the latter two fall back to "retry iff 503",
        the pre-envelope client behavior.
        """
        legacy_retryable = exc.code == 503
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except (OSError, ValueError, AttributeError):
            return None, str(exc.reason), legacy_retryable, None
        error = document.get("error") if isinstance(document, dict) else None
        if isinstance(error, dict):
            code = error.get("code")
            message = (
                error.get("message")
                or document.get("message")
                or str(exc.reason)
            )
            hint = error.get("retry_after_s")
            retry_after_s = (
                float(hint)
                if isinstance(hint, (int, float)) and not isinstance(hint, bool)
                else None
            )
            return (
                code if isinstance(code, str) else None,
                str(message),
                bool(error.get("retryable", legacy_retryable)),
                retry_after_s,
            )
        if isinstance(error, str) and error:
            return None, error, legacy_retryable, None
        return None, str(exc.reason), legacy_retryable, None

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # A status line arrived, so the server is up and spoke.
                # The envelope says whether retrying can help (queue
                # full, open breaker); everything it marks permanent is
                # deterministic and retrying would just repeat the
                # failure N times slower.
                code, message, retryable, retry_after_s = (
                    self._parse_error_body(exc)
                )
                if retry_after_s is None:
                    header_hint = self._retry_after_s(exc)
                    retry_after_s = header_hint if header_hint > 0 else None
                if retryable and attempt < self.retries:
                    delay = self._backoff_s(
                        attempt, floor=retry_after_s or 0.0
                    )
                    attempt += 1
                    self.retried += 1
                    time.sleep(delay)
                    continue
                exc_class = _CODE_EXCEPTIONS.get(code, ServiceClientError)
                request_id = (
                    exc.headers.get("X-Request-Id") if exc.headers else None
                )
                raise exc_class(
                    exc.code,
                    message,
                    code=code,
                    retryable=retryable,
                    retry_after_s=retry_after_s,
                    request_id=request_id,
                ) from exc
            except _RETRYABLE_TRANSPORT as exc:
                # No (complete) response: dropped, reset, truncated, or
                # timed out.  The request may or may not have executed —
                # which is why submit_job sends an idempotency key.
                if attempt < self.retries:
                    delay = self._backoff_s(attempt)
                    attempt += 1
                    self.retried += 1
                    time.sleep(delay)
                    continue
                reason = getattr(exc, "reason", None) or exc
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {reason}"
                ) from exc

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        *,
        path: str | None = None,
        csv: str | None = None,
        chunk_rows: int | None = None,
        name: str | None = None,
    ) -> dict:
        """Register a dataset by server-local path or inline CSV text."""
        body: dict = {}
        if path is not None:
            body["path"] = str(path)
        if csv is not None:
            body["csv"] = csv
        if chunk_rows is not None:
            body["chunk_rows"] = chunk_rows
        if name is not None:
            body["name"] = name
        return self._request("POST", f"{self._prefix}/datasets", body)

    def append_dataset(
        self,
        fingerprint: str,
        *,
        csv: str | None = None,
        path: str | None = None,
    ) -> dict:
        """Delta ingest: append rows (inline CSV or server-local path).

        The delta must carry the dataset's exact header.  Returns the
        append view: the new ``fingerprint`` (key subsequent jobs by
        it), the version ``chain``, ``rows_added`` (after set-semantics
        dedup; ``"changed": false`` when every row was already present),
        and the cache ``revalidation`` summary.
        """
        body: dict = {}
        if csv is not None:
            body["csv"] = csv
        if path is not None:
            body["path"] = str(path)
        return self._request(
            "POST", f"{self._prefix}/datasets/{fingerprint}/append", body
        )

    def get_dataset(self, fingerprint: str) -> dict:
        return self._request("GET", f"{self._prefix}/datasets/{fingerprint}")

    def list_datasets(self) -> list[dict]:
        return self._request("GET", f"{self._prefix}/datasets")["datasets"]

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit_job(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit one job, idempotently across this call's retries.

        The key (auto-generated unless given) is part of the request
        body, so every retry of this submit carries the same token and
        the server replays — not re-runs — the job when an earlier
        attempt did land but its response was lost.
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        return self._request(
            "POST",
            f"{self._prefix}/jobs",
            {
                "fingerprint": fingerprint,
                "operation": operation,
                "params": params or {},
                "idempotency_key": idempotency_key,
            },
        )

    def submit_batch(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit a vector of operations as one batch job.

        ``operations`` is a list of ``{"operation": ..., "params": ...}``
        objects (``params`` optional).  Like :meth:`submit_job`, the
        submission is idempotent across this call's transport retries.
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        return self._request(
            "POST",
            f"{self._prefix}/jobs/batch",
            {
                "fingerprint": fingerprint,
                "operations": operations,
                "idempotency_key": idempotency_key,
            },
        )

    def get_job(self, job_id: str) -> dict:
        return self._request("GET", f"{self._prefix}/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
        poll_cap_s: float = 0.5,
    ) -> dict:
        """Poll until the job leaves queued/running; return its view.

        The poll interval starts at ``poll_s`` and grows geometrically
        (with jitter, capped at ``poll_cap_s``), so short jobs return
        promptly while long jobs do not hammer the server — and a herd
        of waiting clients does not poll in lockstep.
        """
        deadline = time.monotonic() + timeout
        interval = poll_s
        while True:
            view = self.get_job(job_id)
            if view["state"] not in ("queued", "running"):
                return view
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"job {job_id} still {view['state']} after {timeout:g}s"
                )
            sleep_s = min(
                self._rng.uniform(interval * 0.5, interval), deadline - now
            )
            time.sleep(max(sleep_s, 0.0))
            interval = min(interval * 1.6, poll_cap_s)

    def wait_batch(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
        poll_cap_s: float = 0.5,
    ) -> dict:
        """Alias of :meth:`wait_job` — batch jobs share the poll lifecycle."""
        return self.wait_job(
            job_id, timeout=timeout, poll_s=poll_s, poll_cap_s=poll_cap_s
        )

    def run_batch(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        timeout: float = 60.0,
    ) -> dict:
        """Submit a batch, wait, and return the finished job view."""
        job = self.submit_batch(fingerprint, operations)
        if job["state"] in ("queued", "running"):
            job = self.wait_batch(job["job_id"], timeout=timeout)
        return job

    def batch_reports(
        self,
        fingerprint: str,
        operations: list[dict],
        *,
        timeout: float = 60.0,
    ) -> list[dict]:
        """Run a batch and return the per-item reports, in order.

        Raises on a failed batch or on any failed item — use
        :meth:`run_batch` for per-item error handling.
        """
        job = self.run_batch(fingerprint, operations, timeout=timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"batch {job['job_id']} ended {job['state']}: "
                f"{job.get('error', 'no detail')}"
            )
        reports = []
        for index, item in enumerate(job["items"]):
            if item["state"] != "done":
                raise ServiceError(
                    f"batch {job['job_id']} item {index} "
                    f"({item['operation']}) ended {item['state']}: "
                    f"{item.get('error', 'no detail')}"
                )
            reports.append(item["result"])
        return reports

    def run(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        timeout: float = 60.0,
    ) -> dict:
        """Submit, wait, and return the finished job view (any state)."""
        job = self.submit_job(fingerprint, operation, params)
        if job["state"] in ("queued", "running"):
            job = self.wait_job(job["job_id"], timeout=timeout)
        return job

    def _report(self, job: dict) -> dict:
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['job_id']} ended {job['state']}: "
                f"{job.get('error', 'no detail')}"
            )
        return job["result"]

    def mine(self, fingerprint: str, *, timeout: float = 60.0, **params) -> dict:
        """Mine a schema; returns the report (raises on failed/timeout)."""
        return self._report(self.run(fingerprint, "mine", params, timeout=timeout))

    def analyze(
        self, fingerprint: str, schema: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Analyze under an explicit schema; returns the report."""
        params["schema"] = schema
        return self._report(
            self.run(fingerprint, "analyze", params, timeout=timeout)
        )

    def decompose(
        self, fingerprint: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Decompose (mining unless ``schema=`` given); returns the report."""
        return self._report(
            self.run(fingerprint, "decompose", params, timeout=timeout)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", f"{self._prefix}/healthz")

    def stats(self) -> dict:
        return self._request("GET", f"{self._prefix}/stats")

    def metrics_text(self) -> str:
        """``GET /v1/metrics``: the raw Prometheus text exposition."""
        request = urllib.request.Request(
            self.base_url + f"{self._prefix}/metrics",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def cluster_stats(self) -> dict | None:
        """The ``cluster`` section of ``/stats``.

        ``None`` when the server runs single-process
        (``--worker-procs 0``), which omits the section entirely.
        """
        return self.stats().get("cluster")

"""Python client for the decomposition service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the HTTP/JSON API in typed-ish methods and
polling helpers, so scripts (the CI smoke job, the benchmarks, user
code) never hand-roll requests::

    client = ServiceClient("http://127.0.0.1:8765")
    dataset = client.register_dataset(path="examples/planted_mvd.csv")
    report = client.mine(dataset["fingerprint"], strategy="beam")
    assert report["rho"] == 0.0

Convenience methods (``mine`` / ``analyze`` / ``decompose``) submit a
job and block until it finishes, returning the report and raising
:class:`ServiceClientError` on ``failed`` / ``timeout`` jobs.  The
lower-level ``submit_job`` / ``get_job`` / ``wait_job`` expose the
asynchronous lifecycle directly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError


class ServiceClientError(ServiceError):
    """An HTTP call failed; carries the status and server-sent error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Thin JSON-over-HTTP client for one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = exc.reason
            raise ServiceClientError(exc.code, detail or str(exc.reason)) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        *,
        path: str | None = None,
        csv: str | None = None,
        chunk_rows: int | None = None,
        name: str | None = None,
    ) -> dict:
        """Register a dataset by server-local path or inline CSV text."""
        body: dict = {}
        if path is not None:
            body["path"] = str(path)
        if csv is not None:
            body["csv"] = csv
        if chunk_rows is not None:
            body["chunk_rows"] = chunk_rows
        if name is not None:
            body["name"] = name
        return self._request("POST", "/datasets", body)

    def get_dataset(self, fingerprint: str) -> dict:
        return self._request("GET", f"/datasets/{fingerprint}")

    def list_datasets(self) -> list[dict]:
        return self._request("GET", "/datasets")["datasets"]

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit_job(
        self, fingerprint: str, operation: str, params: dict | None = None
    ) -> dict:
        return self._request(
            "POST",
            "/jobs",
            {
                "fingerprint": fingerprint,
                "operation": operation,
                "params": params or {},
            },
        )

    def get_job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_s: float = 0.02,
    ) -> dict:
        """Poll until the job leaves queued/running; return its view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.get_job(job_id)
            if view["state"] not in ("queued", "running"):
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {view['state']} after {timeout:g}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        fingerprint: str,
        operation: str,
        params: dict | None = None,
        *,
        timeout: float = 60.0,
    ) -> dict:
        """Submit, wait, and return the finished job view (any state)."""
        job = self.submit_job(fingerprint, operation, params)
        if job["state"] in ("queued", "running"):
            job = self.wait_job(job["job_id"], timeout=timeout)
        return job

    def _report(self, job: dict) -> dict:
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['job_id']} ended {job['state']}: "
                f"{job.get('error', 'no detail')}"
            )
        return job["result"]

    def mine(self, fingerprint: str, *, timeout: float = 60.0, **params) -> dict:
        """Mine a schema; returns the report (raises on failed/timeout)."""
        return self._report(self.run(fingerprint, "mine", params, timeout=timeout))

    def analyze(
        self, fingerprint: str, schema: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Analyze under an explicit schema; returns the report."""
        params["schema"] = schema
        return self._report(
            self.run(fingerprint, "analyze", params, timeout=timeout)
        )

    def decompose(
        self, fingerprint: str, *, timeout: float = 60.0, **params
    ) -> dict:
        """Decompose (mining unless ``schema=`` given); returns the report."""
        return self._report(
            self.run(fingerprint, "decompose", params, timeout=timeout)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

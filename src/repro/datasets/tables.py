"""Reusable realistic table generators for examples and experiments.

Denormalized tables with planted structure — the workloads the paper's
introduction motivates (schema discovery on flat, slightly dirty data):

* :func:`star_schema_table` — a fact table with hierarchies
  (dimension → attribute FDs), the snowflake-schema setting of [20];
* :func:`orders_table` — customers/regions × products/categories;
* :func:`zipf_relation` — skewed-frequency random relation (multiplicity
  via a Zipf law over a latent key), for heavy-tail entropy behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema


def star_schema_table(
    rng: np.random.Generator,
    *,
    n_rows: int = 90,
    n_products: int = 12,
    n_categories: int = 4,
    n_stores: int = 8,
    n_cities: int = 3,
) -> Relation:
    """A sales fact table (product, category, store, city).

    Plants the FDs ``product → category`` and ``store → city``, so the
    schema ``{product·category, store·city, product·store}`` is (nearly)
    lossless.
    """
    _validate_positive(
        n_rows=n_rows,
        n_products=n_products,
        n_categories=n_categories,
        n_stores=n_stores,
        n_cities=n_cities,
    )
    if n_rows > n_products * n_stores:
        raise SamplingError(
            f"at most {n_products * n_stores} distinct (product, store) "
            f"pairs exist; cannot make {n_rows} rows"
        )
    category_of = rng.integers(0, n_categories, size=n_products)
    city_of = rng.integers(0, n_cities, size=n_stores)
    rows = set()
    while len(rows) < n_rows:
        p = int(rng.integers(0, n_products))
        s = int(rng.integers(0, n_stores))
        rows.add((p, int(category_of[p]), s, int(city_of[s])))
    schema = RelationSchema.integer_domains(
        {
            "product": n_products,
            "category": n_categories,
            "store": n_stores,
            "city": n_cities,
        }
    )
    return Relation(schema, rows, validate=False)


def orders_table(
    rng: np.random.Generator,
    *,
    n_rows: int = 70,
    n_customers: int = 10,
    n_regions: int = 3,
    n_products: int = 8,
    n_categories: int = 4,
) -> Relation:
    """An orders table (customer, region, product, category).

    Plants ``customer → region`` and ``product → category``.
    """
    _validate_positive(
        n_rows=n_rows,
        n_customers=n_customers,
        n_regions=n_regions,
        n_products=n_products,
        n_categories=n_categories,
    )
    if n_rows > n_customers * n_products:
        raise SamplingError(
            f"at most {n_customers * n_products} distinct "
            f"(customer, product) pairs exist; cannot make {n_rows} rows"
        )
    region_of = rng.integers(0, n_regions, size=n_customers)
    category_of = rng.integers(0, n_categories, size=n_products)
    rows = set()
    while len(rows) < n_rows:
        c = int(rng.integers(0, n_customers))
        p = int(rng.integers(0, n_products))
        rows.add((c, int(region_of[c]), p, int(category_of[p])))
    schema = RelationSchema.integer_domains(
        {
            "customer": n_customers,
            "region": n_regions,
            "product": n_products,
            "category": n_categories,
        }
    )
    return Relation(schema, rows, validate=False)


def zipf_relation(
    rng: np.random.Generator,
    *,
    n_rows: int = 100,
    d_a: int = 20,
    d_b: int = 20,
    exponent: float = 1.5,
) -> Relation:
    """A two-attribute relation with Zipf-skewed ``A`` frequencies.

    ``A`` values are drawn from a (truncated) Zipf law and paired with
    uniform fresh ``B`` values; the result is a *set* of up to
    ``n_rows`` tuples whose ``A``-marginal is heavy-tailed — useful for
    exercising entropy estimators away from the uniform regime.
    """
    _validate_positive(n_rows=n_rows, d_a=d_a, d_b=d_b)
    if exponent <= 1.0:
        raise SamplingError(f"Zipf exponent must exceed 1, got {exponent}")
    if n_rows > d_a * d_b:
        raise SamplingError(
            f"cannot make {n_rows} distinct rows over {d_a * d_b} cells"
        )
    weights = 1.0 / np.arange(1, d_a + 1) ** exponent
    weights /= weights.sum()
    rows: set[tuple[int, int]] = set()
    while len(rows) < n_rows:
        a = int(rng.choice(d_a, p=weights))
        b = int(rng.integers(0, d_b))
        rows.add((a, b))
    schema = RelationSchema.integer_domains({"A": d_a, "B": d_b})
    return Relation(schema, rows, validate=False)


def _validate_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise SamplingError(f"{name} must be positive, got {value}")

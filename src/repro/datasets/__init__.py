"""Synthetic workload generators and noise injection."""

from repro.datasets.noise import (
    delete_random_tuples,
    insert_random_tuples,
    perturb,
)
from repro.datasets.synthetic import (
    diagonal_relation,
    functional_relation,
    independent_product_relation,
    lossless_instance,
    planted_mvd_relation,
)
from repro.datasets.tables import orders_table, star_schema_table, zipf_relation

__all__ = [
    "delete_random_tuples",
    "diagonal_relation",
    "functional_relation",
    "independent_product_relation",
    "insert_random_tuples",
    "lossless_instance",
    "orders_table",
    "perturb",
    "planted_mvd_relation",
    "star_schema_table",
    "zipf_relation",
]

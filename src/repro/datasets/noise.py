"""Noise injection: perturb relations so exact AJDs become approximate.

The paper's motivation is data that only *approximately* fits a schema;
these helpers produce such data from exact instances:

* :func:`insert_random_tuples` — add tuples drawn from the product domain
  (outside the current instance);
* :func:`delete_random_tuples` — drop existing tuples;
* :func:`perturb` — a convenience combining both at given rates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.relations.relation import Relation


def _domain_sizes(relation: Relation) -> list[int]:
    sizes = []
    for attr in relation.schema.attributes:
        if attr.domain is None:
            raise SamplingError(
                f"attribute {attr.name!r} needs a declared domain for noise "
                "injection (use infer_integer_domains first)"
            )
        sizes.append(len(attr.domain))
    return sizes


def insert_random_tuples(
    relation: Relation, count: int, rng: np.random.Generator
) -> Relation:
    """Insert ``count`` uniform-random tuples not already present.

    Requires integer domains ``{0, …, d−1}`` (the library's synthetic
    convention).  Raises when fewer than ``count`` free cells exist.
    """
    if count < 0:
        raise SamplingError(f"count must be non-negative, got {count}")
    if count == 0:
        return relation
    sizes = _domain_sizes(relation)
    total = 1
    for d in sizes:
        total *= d
    free = total - len(relation)
    if count > free:
        raise SamplingError(
            f"cannot insert {count} tuples; only {free} free cells remain"
        )
    existing = set(relation.rows())
    new_rows: set[tuple] = set()
    while len(new_rows) < count:
        need = count - len(new_rows)
        batch = np.column_stack(
            [rng.integers(0, d, size=max(2 * need, 16)) for d in sizes]
        )
        for row in map(tuple, batch.tolist()):
            if row not in existing and row not in new_rows:
                new_rows.add(row)
                if len(new_rows) == count:
                    break
    return Relation(
        relation.schema, existing | new_rows, validate=False
    )


def delete_random_tuples(
    relation: Relation, count: int, rng: np.random.Generator
) -> Relation:
    """Delete ``count`` uniformly chosen tuples."""
    if count < 0:
        raise SamplingError(f"count must be non-negative, got {count}")
    if count > len(relation):
        raise SamplingError(
            f"cannot delete {count} tuples from a relation of size {len(relation)}"
        )
    if count == 0:
        return relation
    rows = relation.sorted_rows()
    keep_idx = rng.choice(len(rows), size=len(rows) - count, replace=False)
    kept = [rows[i] for i in keep_idx]
    return Relation(relation.schema, kept, validate=False)


def perturb(
    relation: Relation,
    rng: np.random.Generator,
    *,
    insert_rate: float = 0.0,
    delete_rate: float = 0.0,
) -> Relation:
    """Apply deletion then insertion at the given rates (fractions of N)."""
    for name, rate in (("insert_rate", insert_rate), ("delete_rate", delete_rate)):
        if not 0.0 <= rate <= 1.0:
            raise SamplingError(f"{name} must lie in [0, 1], got {rate}")
    n = len(relation)
    out = delete_random_tuples(relation, int(round(delete_rate * n)), rng)
    return insert_random_tuples(out, int(round(insert_rate * n)), rng)

"""Synthetic relation generators used by tests, examples, and experiments.

* :func:`diagonal_relation` — the tight family of Example 4.1;
* :func:`independent_product_relation` — fully lossless two-attribute data;
* :func:`planted_mvd_relation` — a relation satisfying ``C ↠ A|B`` exactly;
* :func:`lossless_instance` — a relation modeling an arbitrary join tree
  exactly (``R ⊨ AJD``), obtained by closing a random seed under the
  schema's join;
* :func:`functional_relation` — a relation satisfying the FD ``A → B``.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.random_relations import random_relation
from repro.errors import SamplingError
from repro.jointrees.jointree import JoinTree
from repro.relations.join import materialized_acyclic_join
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema


def diagonal_relation(n: int) -> Relation:
    """Example 4.1: ``R = {(a₁,b₁), …, (a_N,b_N)}`` with disjoint domains.

    For the schema ``{{A},{B}}`` this family is the tight case of
    Lemma 4.1: ``J = I(A;B) = log N = log(1 + ρ)`` with ``ρ = N − 1``.
    """
    if n <= 0:
        raise SamplingError(f"diagonal relation needs N >= 1, got {n}")
    schema = RelationSchema.integer_domains({"A": n, "B": n})
    return Relation(schema, [(i, i) for i in range(n)], validate=False)


def independent_product_relation(d_a: int, d_b: int) -> Relation:
    """The full product ``[d_A] × [d_B]`` — lossless for ``{{A},{B}}``.

    Its empirical distribution makes ``A`` and ``B`` independent and
    uniform, so ``I(A;B) = 0`` and ``ρ = 0``.
    """
    if d_a <= 0 or d_b <= 0:
        raise SamplingError("domain sizes must be positive")
    schema = RelationSchema.integer_domains({"A": d_a, "B": d_b})
    return Relation.full(schema)


def planted_mvd_relation(
    d_a: int,
    d_b: int,
    d_c: int,
    rng: np.random.Generator,
    *,
    group_size_a: int | None = None,
    group_size_b: int | None = None,
) -> Relation:
    """A relation satisfying the MVD ``C ↠ A|B`` *exactly*.

    For every ``c ∈ [d_C]``, independent subsets ``S_A(c) ⊆ [d_A]`` and
    ``S_B(c) ⊆ [d_B]`` are drawn and the class is their full product
    ``S_A(c) × S_B(c) × {c}``, so conditioning on ``C`` makes ``A`` and
    ``B`` combinatorially independent and ``ρ(R, C↠A|B) = 0``.

    Group sizes default to about half of each domain (at least 1).
    """
    if min(d_a, d_b, d_c) <= 0:
        raise SamplingError("domain sizes must be positive")
    size_a = max(1, d_a // 2) if group_size_a is None else group_size_a
    size_b = max(1, d_b // 2) if group_size_b is None else group_size_b
    if not 1 <= size_a <= d_a or not 1 <= size_b <= d_b:
        raise SamplingError("group sizes must fit inside the domains")
    blocks = []
    for c in range(d_c):
        sa = rng.choice(d_a, size=size_a, replace=False)
        sb = rng.choice(d_b, size=size_b, replace=False)
        block = np.empty((size_a * size_b, 3), dtype=np.int64)
        block[:, 0] = np.repeat(sa, size_b)
        block[:, 1] = np.tile(sb, size_a)
        block[:, 2] = c
        blocks.append(block)
    schema = RelationSchema.integer_domains({"A": d_a, "B": d_b, "C": d_c})
    return Relation.from_codes(schema, np.concatenate(blocks), distinct=True)


def lossless_instance(
    jointree: JoinTree,
    sizes: Mapping[str, int],
    seed_size: int,
    rng: np.random.Generator,
) -> Relation:
    """A relation that models ``jointree`` exactly (``ρ = 0``).

    Draws a random seed relation of ``seed_size`` tuples and closes it
    under the schema's join: ``R = ⋈ᵢ Π_{Ωᵢ}(seed)``.  For an acyclic
    schema, the join of projections equals the join of *its own*
    projections, so the result satisfies the AJD exactly.

    The closure is materialized — keep ``sizes`` and ``seed_size`` small.
    """
    missing = jointree.attributes() - set(sizes)
    if missing:
        raise SamplingError(f"sizes missing attributes {sorted(missing)}")
    seed = random_relation(
        {name: sizes[name] for name in sizes}, seed_size, rng
    )
    closed = materialized_acyclic_join(seed, jointree)
    return closed.project(seed.schema.names)


def functional_relation(
    d_a: int, d_b: int, rng: np.random.Generator
) -> Relation:
    """A relation over ``A, B`` satisfying the FD ``A → B``.

    One tuple per ``a ∈ [d_A]`` with ``b = f(a)`` for a random function
    ``f : [d_A] → [d_B]``.  FDs are the ``|group| = 1`` degenerate case of
    MVDs; useful for edge-case tests.
    """
    if d_a <= 0 or d_b <= 0:
        raise SamplingError("domain sizes must be positive")
    f = rng.integers(0, d_b, size=d_a)
    schema = RelationSchema.integer_domains({"A": d_a, "B": d_b})
    return Relation(schema, [(a, int(f[a])) for a in range(d_a)], validate=False)

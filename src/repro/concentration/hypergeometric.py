"""Hypergeometric tail bounds, sampling, and Poissonization (Lemma B.4).

The random relation model (Definition 5.2) makes row counts such as
``Z_S(i)`` (tuples of the relation with ``A = i``) and ``N_S(ℓ)`` (tuples
with ``C = ℓ``) hypergeometric.  This module provides:

* the pmf/mean and a numpy-backed sampler;
* Serfling's inequality for sampling without replacement (Lemma D.7);
* the Poissonization bound ``P[Z = b] ≤ 21·d_A²·P[W = b]`` (Lemma B.4);
* the per-class sample-size guarantee of Lemma C.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import BoundConditionError


def hypergeometric_mean(population: int, successes: int, draws: int) -> float:
    """``E[Y] = draws·successes/population``."""
    _validate_hypergeometric(population, successes, draws)
    return draws * successes / population


def hypergeometric_pmf(
    k: int, population: int, successes: int, draws: int
) -> float:
    """``P[Y = k]`` for ``Y ~ Hypergeometric(population, successes, draws)``."""
    _validate_hypergeometric(population, successes, draws)
    return float(stats.hypergeom.pmf(k, population, successes, draws))


def sample_hypergeometric(
    population: int,
    successes: int,
    draws: int,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` samples of the hypergeometric distribution."""
    _validate_hypergeometric(population, successes, draws)
    return rng.hypergeometric(successes, population - successes, draws, size)


def _validate_hypergeometric(population: int, successes: int, draws: int) -> None:
    if population <= 0:
        raise BoundConditionError(f"population must be positive, got {population}")
    if not 0 <= successes <= population:
        raise BoundConditionError(
            f"successes must lie in [0, {population}], got {successes}"
        )
    if not 0 <= draws <= population:
        raise BoundConditionError(
            f"draws must lie in [0, {population}], got {draws}"
        )


def serfling_tail(
    epsilon: float, draws: int, *, population: int | None = None
) -> float:
    """Serfling's inequality (Lemma D.7, simplified form).

    ``P[Y − E[Y] ≥ ε] ≤ exp(−2ε²/ℓ)`` for ``Y`` hypergeometric with ``ℓ``
    draws.  If ``population`` is given, the sharper factor
    ``(1 − (ℓ−1)/L)`` in the denominator is used.
    """
    if epsilon < 0:
        raise BoundConditionError(f"epsilon must be non-negative, got {epsilon}")
    if draws < 1:
        raise BoundConditionError(f"draws must be >= 1, got {draws}")
    denom = float(draws)
    if population is not None:
        if population < draws:
            raise BoundConditionError("population must be >= draws")
        denom = draws * (1.0 - (draws - 1) / population)
        if denom <= 0.0:
            return 1.0
    return min(1.0, math.exp(-2.0 * epsilon * epsilon / denom))


@dataclass(frozen=True)
class PoissonizationCheck:
    """Result of :func:`poissonization_ratio` (Lemma B.4 verification).

    ``max_ratio`` is ``max_b P[Z = b] / P[W = b]`` over the support of
    ``Z``; Lemma B.4 asserts ``max_ratio ≤ 21·d_A²`` under its
    assumptions, recorded in ``bound``.
    """

    max_ratio: float
    argmax_b: int
    bound: float

    @property
    def holds(self) -> bool:
        """Whether the Poissonization bound is satisfied."""
        return self.max_ratio <= self.bound


def poissonization_ratio(d_a: int, d_b: int, eta: int) -> PoissonizationCheck:
    """Numerically verify Lemma B.4 for the given parameters.

    ``Z ~ Hypergeometric(d_A·d_B, d_B, η)`` (the count of one row of the
    random relation) versus ``W ~ Poisson(η/d_A)`` with the same mean.
    Assumes ``d_A ≥ d_B`` and ``η ∈ [d_A, d_A·d_B − d_B]`` as in the lemma.
    """
    if d_a < d_b:
        raise BoundConditionError(f"Lemma B.4 assumes d_A >= d_B ({d_a} < {d_b})")
    if not d_a <= eta <= d_a * d_b - d_b:
        raise BoundConditionError(
            f"Lemma B.4 assumes η ∈ [d_A, d_A·d_B − d_B]; got η={eta}"
        )
    lam = eta / d_a
    max_ratio = 0.0
    argmax = 0
    for b in range(0, d_b + 1):
        pz = hypergeometric_pmf(b, d_a * d_b, d_b, eta)
        if pz <= 0.0:
            continue
        pw = float(stats.poisson.pmf(b, lam))
        ratio = math.inf if pw == 0.0 else pz / pw
        if ratio > max_ratio:
            max_ratio = ratio
            argmax = b
    return PoissonizationCheck(
        max_ratio=max_ratio, argmax_b=argmax, bound=21.0 * d_a * d_a
    )


@dataclass(frozen=True)
class ClassSizeGuarantee:
    """Lemma C.1: high-probability lower bound on ``min_ℓ N_S(ℓ)``.

    With ``N`` tuples over domains ``d_A, d_B, d_C``, each class
    ``N_S(ℓ) = |σ_{C=ℓ}(R_S)|`` is hypergeometric with mean ``N/d_C``; with
    probability ``≥ 1 − δ`` all classes exceed ``threshold = N/(2·d_C)``.
    """

    condition_holds: bool
    required_n: float
    threshold: float
    per_class_failure: float


def class_size_guarantee(
    n: int, d_a: int, d_c: int, delta: float, *, d: int | None = None
) -> ClassSizeGuarantee:
    """Evaluate Lemma C.1's condition and conclusion.

    Parameters
    ----------
    n:
        Relation size ``N``.
    d_a:
        Domain size of the larger of the two joined sides.
    d_c:
        Domain size of the conditioning attribute ``C``.
    delta:
        Failure probability budget.
    d:
        ``max(d_A, d_C)``; computed when omitted.
    """
    _validate_delta(delta)
    d = max(d_a, d_c) if d is None else d
    required = 256.0 * d_a * d * math.log(128.0 * d / delta)
    per_class = math.exp(-n / (2.0 * d_c * d_c)) if d_c > 0 else 0.0
    return ClassSizeGuarantee(
        condition_holds=n >= required,
        required_n=required,
        threshold=n / (2.0 * d_c),
        per_class_failure=min(1.0, per_class),
    )


def _validate_delta(delta: float) -> None:
    if not 0.0 < delta < 1.0:
        raise BoundConditionError(f"delta must lie in (0, 1), got {delta}")

"""Elementary inequalities and special functions from Appendix D.

These small functions appear throughout the paper's proofs and bounds:

* ``h(t) = t·log(1+t)`` (Eq. 57) — the rate function of Proposition 5.5;
* ``C(d) = 2·log(d)/√d`` (Eq. 45) — the expected-entropy deficit bound;
* ``g(t) = −t·log t`` and its Lipschitz surrogates ``ĝ_ζ`` (Eq. 209) and
  ``g̃_η`` (Eq. 219);
* ``f_ζ(w)`` (Eq. 261) — the positive surrogate used to bound ``Ent(W)``;
* the log-sum inequality (Lemma D.8);
* ``|g(t) − g(s)| ≤ 2·g(|s − t|)`` (Lemma D.2);
* Lemma D.6: ``x ≥ y·log y  ⇒  x/log x ≥ y``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import BoundConditionError


def h_rate(t: float) -> float:
    """``h(t) = t·log(1 + t)`` for ``t ≥ 0`` (Eq. 57).

    Examples
    --------
    >>> h_rate(0.0)
    0.0
    >>> round(h_rate(1.0), 6)
    0.693147
    """
    if t < 0:
        raise BoundConditionError(f"h(t) needs t >= 0, got {t}")
    return t * math.log1p(t)


def expected_entropy_deficit(d: float) -> float:
    """``C(d) = 2·log(d)/√d`` (Eq. 45).

    Upper-bounds ``log d_A − E[H(A_S)]`` in Proposition 5.4 when evaluated
    at the *other* side's domain size.
    """
    if d < 1:
        raise BoundConditionError(f"C(d) needs d >= 1, got {d}")
    return 2.0 * math.log(d) / math.sqrt(d)


def neg_xlogx(t: float) -> float:
    """``g(t) = −t·log t`` with the continuous extension ``g(0) = 0``."""
    if t < 0:
        raise BoundConditionError(f"g(t) needs t >= 0, got {t}")
    if t == 0.0:
        return 0.0
    return -t * math.log(t)


def clipped_neg_xlogx(t: float, zeta: float) -> float:
    """``ĝ_ζ(t)`` (Eq. 209): a ``log(ζ/e)``-Lipschitz surrogate of ``g``.

    Linear with slope ``log(ζ/e)`` on ``[0, 1/ζ]`` (offset ``1/ζ`` keeps it
    continuous), equal to ``g(t) = −t·log t`` for ``t ≥ 1/ζ``.  Requires
    ``ζ ≥ e``.  Satisfies ``max_{t∈[0,1]} |ĝ_ζ(t) − g(t)| = 1/ζ``
    (Eq. 210).
    """
    if zeta < math.e:
        raise BoundConditionError(f"ĝ_ζ needs ζ >= e, got {zeta}")
    if t < 0:
        raise BoundConditionError(f"ĝ_ζ(t) needs t >= 0, got {t}")
    if t <= 1.0 / zeta:
        return t * math.log(zeta / math.e) + 1.0 / zeta
    return -t * math.log(t)


def capped_neg_xlogx(t: float, eta: float) -> float:
    """``g̃_η(t)`` (Eq. 219): ``ĝ_η`` capped at its maximum past ``t = 1/e``.

    Tracks ``ĝ_η(t)`` on ``[0, 1/e]`` and stays at ``ĝ_η(1/e) = 1/e``
    afterwards, making it Lipschitz on all of ``[0, ∞)``.
    """
    if t < 0:
        raise BoundConditionError(f"g̃_η(t) needs t >= 0, got {t}")
    cutoff = 1.0 / math.e
    if t <= cutoff:
        return clipped_neg_xlogx(t, eta)
    return clipped_neg_xlogx(cutoff, eta)


def positive_floor_surrogate(w: int, zeta: float) -> float:
    """``f_ζ(w)`` (Eq. 261): ``1/ζ`` at ``w = 0``, else ``w``.

    A strictly positive surrogate of the identity on ℕ, used with the
    Poisson LSI to bound ``Ent(W) ≤ 4`` in Lemma B.5.  Requires ``ζ > 2``.
    """
    if zeta <= 2:
        raise BoundConditionError(f"f_ζ needs ζ > 2, got {zeta}")
    if w < 0:
        raise BoundConditionError(f"f_ζ(w) needs w >= 0, got {w}")
    return 1.0 / zeta if w == 0 else float(w)


def log_sum_inequality_sides(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Both sides of the log-sum inequality (Lemma D.8).

    Returns ``(lhs, rhs)`` with
    ``lhs = (Σaᵢ)·log(Σaᵢ/Σbᵢ) ≤ rhs = Σ aᵢ·log(aᵢ/bᵢ)``.
    Uses the conventions ``0·log(0/b) = 0`` and ``a·log(a/0) = ∞``.
    """
    if len(a) != len(b):
        raise BoundConditionError("log-sum inequality needs aligned sequences")
    if any(x < 0 for x in a) or any(x < 0 for x in b):
        raise BoundConditionError("log-sum inequality needs non-negative terms")
    sum_a = sum(a)
    sum_b = sum(b)
    if sum_a == 0.0:
        lhs = 0.0
    elif sum_b == 0.0:
        lhs = math.inf
    else:
        lhs = sum_a * math.log(sum_a / sum_b)
    rhs = 0.0
    for ai, bi in zip(a, b):
        if ai == 0.0:
            continue
        if bi == 0.0:
            rhs = math.inf
            break
        rhs += ai * math.log(ai / bi)
    return lhs, rhs


def g_difference_bound(t: float, s: float) -> tuple[float, float]:
    """Lemma D.2 (second part): ``|g(t) − g(s)| ≤ 2·g(|s − t|)``.

    Returns ``(|g(t) − g(s)|, 2·g(|s − t|))`` for ``t, s ∈ [0, 1]`` with
    ``|s − t| ≤ 1/2``.

    **Erratum.** The paper states the inequality for all ``s, t ∈ [0, 1]``,
    but it fails for ``|s − t|`` close to 1 (e.g. ``t = 0.025, s = 1``
    gives ``lhs ≈ 0.092 > rhs ≈ 0.049``): the proof's case-2 step
    ``2(s−t) ≤ 2(s−t)·log(1/(s−t))`` needs ``s − t ≤ 1/e``.  The paper
    only ever applies the bound with ``|s − t| ≤ √(2/d_B) ≤ 1/2``
    (Lemma B.3), where it is valid — so this function enforces that
    regime.  See EXPERIMENTS.md §Errata.
    """
    for value in (t, s):
        if not 0.0 <= value <= 1.0:
            raise BoundConditionError(
                f"the g-difference bound needs arguments in [0, 1]; got {value}"
            )
    if abs(s - t) > 0.5:
        raise BoundConditionError(
            f"the g-difference bound is valid for |s − t| <= 1/2; "
            f"got |{s} − {t}| = {abs(s - t)} (see the Lemma D.2 erratum)"
        )
    lhs = abs(neg_xlogx(t) - neg_xlogx(s))
    rhs = 2.0 * neg_xlogx(abs(s - t))
    return lhs, rhs


def inverse_x_over_logx(y: float) -> float:
    """Lemma D.6 (repaired): a witness ``x`` with ``x/log x ≥ y``.

    Returns ``x = 2·y·log y``, which satisfies the conclusion for all
    ``y ≥ 2``.

    **Erratum.** The paper's witness ``x = y·log y`` does *not* satisfy
    ``x/log x ≥ y`` for ``y > e`` (e.g. ``y = 5`` gives
    ``x/log x ≈ 3.86 < 5``): ``log(y·log y) = log y + log log y > log y``.
    Doubling the witness repairs it — ``2y·log y / log(2y·log y) ≥ y``
    holds whenever ``y ≥ 2·log y``, i.e. for all ``y ≥ 2`` — at the cost
    of a factor 2 inside condition (287).  See EXPERIMENTS.md §Errata.
    """
    if y < 2.0:
        raise BoundConditionError(f"Lemma D.6 (repaired) needs y >= 2, got {y}")
    return 2.0 * y * math.log(y)

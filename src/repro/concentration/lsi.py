"""Bernoulli logarithmic Sobolev inequality and Efron–Stein variance.

Lemma D.1: for i.i.d. ``±1`` variables with ``P[R(j)=1] = p`` and any
``g : {−1,1}^d → ℝ``,

    Ent(g²) ≤ (1/(1−2p))·log((1−p)/p) · E(g),

where ``E(g)`` is the Efron–Stein variance (Eq. 340), which carries the
``p(1−p)`` factor.  Also Lemma D.2's relative Chernoff bound for binomial
averages.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import BoundConditionError

#: Maximum dimension for exact (2^d enumeration) Efron–Stein evaluation.
MAX_EXACT_DIMENSION = 20


def bernoulli_lsi_constant(p: float) -> float:
    """The LSI pre-factor ``(1/(1−2p))·log((1−p)/p)``.

    Continuously extended to ``p = 1/2``, where the limit is 2.
    """
    if not 0.0 < p < 1.0:
        raise BoundConditionError(f"p must lie in (0, 1), got {p}")
    if abs(p - 0.5) < 1e-9:
        return 2.0
    return math.log((1.0 - p) / p) / (1.0 - 2.0 * p)


def _sign_vectors(d: int):
    return itertools.product((-1, 1), repeat=d)


def _vector_probability(signs: Sequence[int], p: float) -> float:
    ones = sum(1 for s in signs if s == 1)
    return (p ** ones) * ((1.0 - p) ** (len(signs) - ones))


def efron_stein_variance_exact(
    g: Callable[[Sequence[int]], float], p: float, d: int
) -> float:
    """Exact Efron–Stein variance ``E(g)`` (Eq. 340) by enumeration.

    ``E(g) = p(1−p)·E[Σⱼ (g(R) − g(R^{(j)}))²]`` where ``R^{(j)}`` flips
    coordinate ``j``.  Exponential in ``d``; limited to
    ``d ≤ MAX_EXACT_DIMENSION``.
    """
    _validate_p_d(p, d)
    if d > MAX_EXACT_DIMENSION:
        raise BoundConditionError(
            f"exact Efron–Stein enumeration limited to d <= {MAX_EXACT_DIMENSION}"
        )
    total = 0.0
    for signs in _sign_vectors(d):
        prob = _vector_probability(signs, p)
        base = g(signs)
        for j in range(d):
            flipped = signs[:j] + (-signs[j],) + signs[j + 1:]
            diff = base - g(flipped)
            total += prob * diff * diff
    return p * (1.0 - p) * total


def efron_stein_variance_mc(
    g: Callable[[Sequence[int]], float],
    p: float,
    d: int,
    *,
    samples: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo Efron–Stein variance for larger dimensions."""
    _validate_p_d(p, d)
    if samples <= 0:
        raise BoundConditionError(f"samples must be positive, got {samples}")
    total = 0.0
    for _ in range(samples):
        signs = tuple(np.where(rng.random(d) < p, 1, -1).tolist())
        base = g(signs)
        inner = 0.0
        for j in range(d):
            flipped = signs[:j] + (-signs[j],) + signs[j + 1:]
            diff = base - g(flipped)
            inner += diff * diff
        total += inner
    return p * (1.0 - p) * total / samples


def bernoulli_functional_entropy_exact(
    g: Callable[[Sequence[int]], float], p: float, d: int
) -> float:
    """Exact ``Ent(g²)`` under the product Bernoulli(±1, p) measure."""
    _validate_p_d(p, d)
    if d > MAX_EXACT_DIMENSION:
        raise BoundConditionError(
            f"exact entropy enumeration limited to d <= {MAX_EXACT_DIMENSION}"
        )
    mean_sq = 0.0
    mean_sq_log = 0.0
    for signs in _sign_vectors(d):
        prob = _vector_probability(signs, p)
        sq = g(signs) ** 2
        mean_sq += prob * sq
        if sq > 0.0:
            mean_sq_log += prob * sq * math.log(sq)
    if mean_sq <= 0.0:
        return 0.0
    return max(mean_sq_log - mean_sq * math.log(mean_sq), 0.0)


def bernoulli_lsi_bound(
    g: Callable[[Sequence[int]], float], p: float, d: int
) -> float:
    """Lemma D.1 right-hand side: ``constant(p) · E(g)`` (exact mode)."""
    return bernoulli_lsi_constant(p) * efron_stein_variance_exact(g, p, d)


def relative_chernoff_tail(n: int, p: float, xi: float) -> float:
    """Lemma D.2 (first part): relative Chernoff bound for binomials.

    ``P[|n⁻¹ΣBᵢ − p| ≥ ξp] ≤ 2·exp(−ξ²pn/3)`` for ``ξ ∈ [0, 1]``.
    """
    if n <= 0:
        raise BoundConditionError(f"n must be positive, got {n}")
    if not 0.0 < p < 1.0:
        raise BoundConditionError(f"p must lie in (0, 1), got {p}")
    if not 0.0 <= xi <= 1.0:
        raise BoundConditionError(f"ξ must lie in [0, 1], got {xi}")
    return min(1.0, 2.0 * math.exp(-xi * xi * p * n / 3.0))


def _validate_p_d(p: float, d: int) -> None:
    if not 0.0 < p < 1.0:
        raise BoundConditionError(f"p must lie in (0, 1), got {p}")
    if d <= 0:
        raise BoundConditionError(f"dimension must be positive, got {d}")

"""Poisson concentration tools (Lemmas D.3–D.5).

* Chernoff's bound for Poisson upper tails (Lemma D.3);
* concentration of 1-Lipschitz functions of a Poisson variable
  (Bobkov–Ledoux / Kontoyiannis–Madiman, Lemma D.4);
* the Poisson logarithmic Sobolev inequality (Lemma D.5);
* the exact series identity ``E[1/(1+W)] = (1 − e^{−λ})/λ`` (Eq. 280).
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np
from scipy import stats

from repro.errors import BoundConditionError

#: Lemma D.3 requires ``α > 3e``.
CHERNOFF_MIN_ALPHA = 3.0 * math.e


def poisson_chernoff_tail(alpha: float, lam: float) -> float:
    """Lemma D.3: ``P[X ≥ α·E[X]] ≤ e^{−αλ·log(α/e)} ≤ e^{−αλ}``.

    Returns the sharper middle expression; requires ``α > 3e``.
    """
    if alpha <= CHERNOFF_MIN_ALPHA:
        raise BoundConditionError(
            f"Poisson Chernoff bound needs α > 3e ≈ {CHERNOFF_MIN_ALPHA:.2f}, "
            f"got {alpha}"
        )
    if lam <= 0:
        raise BoundConditionError(f"λ must be positive, got {lam}")
    return min(1.0, math.exp(-alpha * lam * math.log(alpha / math.e)))


def poisson_lipschitz_tail(t: float, lam: float) -> float:
    """Lemma D.4: for 1-Lipschitz ``f`` and ``W ~ Poisson(λ)``,

    ``P[f(W) − E f(W) > t] ≤ exp(−(t/4)·log(1 + t/(2λ)))``.
    """
    if t <= 0:
        raise BoundConditionError(f"t must be positive, got {t}")
    if lam <= 0:
        raise BoundConditionError(f"λ must be positive, got {lam}")
    return min(1.0, math.exp(-(t / 4.0) * math.log1p(t / (2.0 * lam))))


def discrete_derivative(f: Callable[[int], float]) -> Callable[[int], float]:
    """``Df(w) = f(w+1) − f(w)`` (Eq. 347)."""

    def df(w: int) -> float:
        return f(w + 1) - f(w)

    return df


def _truncation_point(lam: float, tail: float) -> int:
    """Smallest ``k`` with ``P[W > k] ≤ tail`` for ``W ~ Poisson(λ)``."""
    return int(stats.poisson.isf(tail, lam)) + 2


def poisson_expectation(
    f: Callable[[int], float], lam: float, *, tail: float = 1e-14
) -> float:
    """``E[f(W)]`` for ``W ~ Poisson(λ)`` by truncated summation."""
    if lam <= 0:
        raise BoundConditionError(f"λ must be positive, got {lam}")
    upper = _truncation_point(lam, tail)
    ks = np.arange(0, upper + 1)
    pmf = stats.poisson.pmf(ks, lam)
    values = np.asarray([f(int(k)) for k in ks], dtype=np.float64)
    return float((pmf * values).sum())


def poisson_functional_entropy(
    f: Callable[[int], float], lam: float, *, tail: float = 1e-14
) -> float:
    """``Ent[f(W)] = E[f log f] − E[f]·log E[f]`` for positive ``f``."""
    mean = poisson_expectation(f, lam, tail=tail)
    if mean <= 0:
        raise BoundConditionError("Poisson LSI needs a positive function")

    def flogf(w: int) -> float:
        value = f(w)
        if value < 0:
            raise BoundConditionError("Poisson LSI needs a non-negative function")
        return 0.0 if value == 0.0 else value * math.log(value)

    return max(poisson_expectation(flogf, lam, tail=tail) - mean * math.log(mean), 0.0)


def poisson_lsi_bound(
    f: Callable[[int], float], lam: float, *, tail: float = 1e-14
) -> float:
    """Lemma D.5 right-hand side: ``λ·E[(Df(W))²/f(W)]``.

    The Poisson LSI asserts ``Ent[f(W)] ≤`` this value for positive ``f``.
    """

    def integrand(w: int) -> float:
        value = f(w)
        if value <= 0:
            raise BoundConditionError("Poisson LSI needs a strictly positive function")
        step = f(w + 1) - value
        return step * step / value

    return lam * poisson_expectation(integrand, lam, tail=tail)


def expected_inverse_one_plus_poisson(lam: float) -> float:
    """``E[1/(1+W)] = (1 − e^{−λ})/λ`` for ``W ~ Poisson(λ)`` (Eq. 280)."""
    if lam <= 0:
        raise BoundConditionError(f"λ must be positive, got {lam}")
    return (1.0 - math.exp(-lam)) / lam


def poisson_identity_entropy_bound() -> float:
    """The constant 4 from Lemma B.5: ``Ent(W) ≤ min_{ζ>2}(ζ+1+log ζ/ζ) ≤ 4``.

    Returned as a named constant so callers can reference the paper's
    bound rather than a magic number.
    """
    return 4.0

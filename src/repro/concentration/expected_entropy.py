"""Exact expected entropy under the random relation model.

Under Definition 5.2 with ``d_C = 1``, the entropy of ``A_S`` is
``H(A_S) = Σᵢ g(Z_S(i)/η)`` with ``g(t) = −t·log t``, where the row
counts ``Z_S(i)`` are exchangeable ``Hypergeometric(d_A·d_B, d_B, η)``
variables.  By linearity of expectation,

    E[H(A_S)] = d_A · E[g(Z/η)] = d_A · Σ_b P[Z = b] · g(b/η),

a *closed form* requiring only the hypergeometric pmf — no simulation.
This turns Proposition 5.4's inequality chain and Figure 1's expected
curve into exactly computable quantities:

    E[I(A_S;B_S)] = E[H(A_S)] + E[H(B_S)] − log η

(the joint entropy is deterministically ``log η``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro.concentration.inequalities import expected_entropy_deficit
from repro.errors import BoundConditionError


def exact_expected_entropy(d_a: int, d_b: int, eta: int) -> float:
    """``E[H(A_S)]`` exactly, in nats.

    Parameters
    ----------
    d_a:
        Domain size of the attribute whose entropy is measured.
    d_b:
        The other attribute's domain size.
    eta:
        Relation size ``η``; must satisfy ``0 < η ≤ d_A·d_B``.
    """
    _validate(d_a, d_b, eta)
    # Z ~ Hypergeometric(population d_A*d_B, successes d_B, draws eta):
    # the count of sampled cells in one row of the grid.
    support_top = min(d_b, eta)
    expectation = 0.0
    for b in range(1, support_top + 1):
        p = float(stats.hypergeom.pmf(b, d_a * d_b, d_b, eta))
        if p <= 0.0:
            continue
        t = b / eta
        expectation += p * (-t * math.log(t))
    return d_a * expectation


def exact_expected_mi(d_a: int, d_b: int, eta: int) -> float:
    """``E[I(A_S;B_S)] = E[H(A_S)] + E[H(B_S)] − log η`` exactly, in nats.

    Uses ``H(A_S,B_S) = log η`` with probability 1 (the relation is a set
    of ``η`` tuples).
    """
    _validate(d_a, d_b, eta)
    return (
        exact_expected_entropy(d_a, d_b, eta)
        + exact_expected_entropy(d_b, d_a, eta)
        - math.log(eta)
    )


@dataclass(frozen=True)
class ExpectedEntropyReport:
    """Proposition 5.4 evaluated exactly.

    ``deficit = log d_A − E[H(A_S)]`` must lie in ``[0, C(d_B)]`` whenever
    the qualifying condition ``η ≥ 60·d_A`` (and ``d_A ≥ d_B``) holds.
    """

    d_a: int
    d_b: int
    eta: int
    expected_entropy: float
    deficit: float
    bound: float
    in_regime: bool

    @property
    def proposition_holds(self) -> bool:
        """Whether ``0 ≤ deficit ≤ C(d_B)`` (meaningful in regime)."""
        return -1e-9 <= self.deficit <= self.bound + 1e-9


def proposition_54_exact(d_a: int, d_b: int, eta: int) -> ExpectedEntropyReport:
    """Evaluate Proposition 5.4 with the exact expectation."""
    expected = exact_expected_entropy(d_a, d_b, eta)
    return ExpectedEntropyReport(
        d_a=d_a,
        d_b=d_b,
        eta=eta,
        expected_entropy=expected,
        deficit=math.log(d_a) - expected,
        bound=expected_entropy_deficit(d_b),
        in_regime=(eta >= 60 * d_a and d_a >= d_b),
    )


def _validate(d_a: int, d_b: int, eta: int) -> None:
    if d_a <= 0 or d_b <= 0:
        raise BoundConditionError("domain sizes must be positive")
    if not 0 < eta <= d_a * d_b:
        raise BoundConditionError(
            f"η must lie in (0, d_A·d_B] = (0, {d_a * d_b}], got {eta}"
        )

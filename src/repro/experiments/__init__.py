"""The paper's evaluation harness (experiment index in DESIGN.md §3)."""

from repro.experiments import (
    classwise_bounds,
    discovery_quality,
    estimator_bias,
    figure1,
    lower_bound,
    schema_bounds,
    upper_bound,
)

__all__ = [
    "classwise_bounds",
    "discovery_quality",
    "estimator_bias",
    "figure1",
    "lower_bound",
    "schema_bounds",
    "upper_bound",
]

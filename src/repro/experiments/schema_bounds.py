"""Experiments E6/E7 — schema-level inequalities.

* **E6** (Proposition 5.1): the product bound
  ``log(1+ρ(R,S)) ≤ Σᵢ log(1+ρ(R,φᵢ))`` over multi-node schemas (chains
  and stars, ``m = 3 … 5``), together with the provably correct
  *stepwise expansion* replacement (see the Prop 5.1 erratum in
  EXPERIMENTS.md: the paper's inequality admits counterexamples, so the
  experiment reports its empirical violation rate rather than asserting
  it).
* **E7** (Theorem 2.2): the sandwich
  ``maxᵢ Iᵢ ≤ J(T) ≤ Σᵢ Iᵢ`` across the same instances — this one is
  unconditional and must always hold.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import product_bound_check, stepwise_expansion_check
from repro.core.evalcontext import EvalContext
from repro.core.jmeasure import sandwich_bounds
from repro.core.random_relations import random_relation
from repro.errors import ExperimentError
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.jointree import JoinTree


def _workloads() -> list[tuple[str, dict[str, int], JoinTree]]:
    """The chain/star schema zoo used by both experiments."""
    chain4 = jointree_from_schema([{"A", "B"}, {"B", "C"}, {"C", "D"}])
    chain5 = jointree_from_schema(
        [{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}]
    )
    star4 = jointree_from_schema([{"X", "A"}, {"X", "B"}, {"X", "C"}])
    star5 = jointree_from_schema([{"X", "A"}, {"X", "B"}, {"X", "C"}, {"X", "D"}])
    wide_chain = jointree_from_schema([{"A", "B", "C"}, {"B", "C", "D"}, {"C", "D", "E"}])
    return [
        ("chain m=3", {"A": 6, "B": 6, "C": 6, "D": 6}, chain4),
        ("chain m=4", {"A": 5, "B": 5, "C": 5, "D": 5, "E": 5}, chain5),
        ("star  m=3", {"X": 4, "A": 6, "B": 6, "C": 6}, star4),
        ("star  m=4", {"X": 4, "A": 5, "B": 5, "C": 5, "D": 5}, star5),
        ("chain bags=3attrs", {"A": 4, "B": 4, "C": 4, "D": 4, "E": 4}, wide_chain),
    ]


@dataclass(frozen=True)
class SchemaBoundRow:
    """E6 + E7 results for one sampled instance."""

    label: str
    n: int
    product_lhs: float
    product_rhs: float
    stepwise_rhs: float
    sandwich_lower: float
    j_value: float
    sandwich_upper: float

    @property
    def product_holds(self) -> bool:
        """Proposition 5.1's inequality on this instance (may fail; erratum)."""
        return self.product_lhs <= self.product_rhs + 1e-9

    @property
    def stepwise_holds(self) -> bool:
        """The stepwise replacement — provably always true."""
        return self.product_lhs <= self.stepwise_rhs + 1e-9

    @property
    def sandwich_holds(self) -> bool:
        """Theorem 2.2's sandwich on this instance."""
        slack = 1e-9 * max(1.0, self.sandwich_upper)
        return (
            self.sandwich_lower <= self.j_value + slack
            and self.j_value <= self.sandwich_upper + slack
        )


def run_schema_bounds(
    *, density: float = 0.15, trials: int = 5, seed: int = 17
) -> list[SchemaBoundRow]:
    """Evaluate E6/E7 over the schema zoo with random instances."""
    if not 0 < density <= 1:
        raise ExperimentError(f"density must lie in (0, 1], got {density}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for label, sizes, tree in _workloads():
        total = int(np.prod(list(sizes.values())))
        n = max(4, int(density * total))
        for _ in range(trials):
            relation = random_relation(sizes, n, rng)
            # All three checks share one evaluation context: the full
            # join size is counted once (product ρ, stepwise last
            # prefix) and all entropies hit one memo.
            context = EvalContext.for_relation(relation)
            product = product_bound_check(relation, tree, context=context)
            stepwise = stepwise_expansion_check(relation, tree, context=context)
            sandwich = sandwich_bounds(relation, tree, engine=context.engine)
            rows.append(
                SchemaBoundRow(
                    label=label,
                    n=n,
                    product_lhs=product.lhs,
                    product_rhs=product.rhs,
                    stepwise_rhs=stepwise.rhs,
                    sandwich_lower=sandwich.lower,
                    j_value=sandwich.j_value,
                    sandwich_upper=sandwich.upper,
                )
            )
    return rows


def format_table(rows: Sequence[SchemaBoundRow]) -> str:
    """Render the E6/E7 series."""
    header = (
        f"{'schema':>18} {'N':>6} {'lhs':>8} {'P5.1rhs':>8} {'steprhs':>8} "
        f"{'maxI':>8} {'J':>8} {'sumI':>8} {'P5.1':>5} {'step':>5} {'T2.2':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.label:>18} {row.n:>6} {row.product_lhs:>8.4f} "
            f"{row.product_rhs:>8.4f} {row.stepwise_rhs:>8.4f} "
            f"{row.sandwich_lower:>8.4f} {row.j_value:>8.4f} "
            f"{row.sandwich_upper:>8.4f} "
            f"{'ok' if row.product_holds else 'NO':>5} "
            f"{'ok' if row.stepwise_holds else 'NO':>5} "
            f"{'ok' if row.sandwich_holds else 'NO':>5}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print the schema-level bound experiments."""
    print("E6 / Prop 5.1 + E7 / Thm 2.2 — schema-level bounds")
    rows = run_schema_bounds()
    print(format_table(rows))
    p_ok = sum(1 for r in rows if r.product_holds)
    s_ok = sum(1 for r in rows if r.stepwise_holds)
    t_ok = sum(1 for r in rows if r.sandwich_holds)
    print(
        f"Prop 5.1 held on {p_ok}/{len(rows)} (can fail; see erratum), "
        f"stepwise bound on {s_ok}/{len(rows)}, "
        f"Thm 2.2 sandwich on {t_ok}/{len(rows)}"
    )


if __name__ == "__main__":
    main()

"""Experiments E4/E5 — the probabilistic upper bounds (Section 5).

* **E4** (Theorem 5.2 / Proposition 5.4): sample ``A_S`` from the random
  relation model with ``d_C = 1`` and measure the entropy deficit
  ``log d_A − H(A_S)`` against the confidence radius
  ``20·√(d_A·log³(η/δ)/η)`` and the expected-value bound ``C(d_B)``.
  Coverage must be at least ``1 − δ``; the deficit must shrink with ``η``.
* **E5** (Theorem 5.1 / Corollary 5.2.1): sample full MVD instances and
  compare ``log(1 + ρ(R_S, φ))`` with ``I(A_S; B_S | C_S) + ε*``.  The
  empirical violation rate must stay below ``δ``, and ``ε*`` shrinks like
  ``Õ(√(d_A·d/N))``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import (
    entropy_confidence_radius,
    epsilon_star,
    expected_entropy_bounds,
)
from repro.core.loss import split_loss
from repro.core.random_relations import random_relation
from repro.errors import ExperimentError
from repro.info.divergence import conditional_mutual_information
from repro.info.entropy import joint_entropy


@dataclass(frozen=True)
class EntropyConfidenceRow:
    """E4: entropy deficit statistics at one sample size ``η``."""

    d_a: int
    d_b: int
    eta: int
    deficit_mean: float
    deficit_max: float
    radius: float
    expected_bound: float
    coverage: float
    in_regime: bool


def run_entropy_confidence(
    *,
    d_a: int = 256,
    d_b: int = 256,
    etas: Sequence[int] = (16384, 32768, 65536),
    delta: float = 0.1,
    trials: int = 20,
    seed: int = 11,
) -> list[EntropyConfidenceRow]:
    """E4: measure ``log d_A − H(A_S)`` against Theorem 5.2's radius."""
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for eta in etas:
        if eta > d_a * d_b:
            raise ExperimentError(
                f"η = {eta} exceeds the product domain {d_a * d_b}"
            )
        deficits = []
        for _ in range(trials):
            relation = random_relation({"A": d_a, "B": d_b}, eta, rng)
            deficits.append(math.log(d_a) - joint_entropy(relation, ["A"]))
        radius_report = entropy_confidence_radius(d_a, d_b, eta, delta)
        expected_report = expected_entropy_bounds(d_a, d_b, eta)
        covered = sum(1 for d in deficits if d <= radius_report.value)
        rows.append(
            EntropyConfidenceRow(
                d_a=d_a,
                d_b=d_b,
                eta=eta,
                deficit_mean=float(np.mean(deficits)),
                deficit_max=float(np.max(deficits)),
                radius=radius_report.value,
                expected_bound=expected_report.value,
                coverage=covered / trials,
                in_regime=radius_report.condition_holds,
            )
        )
    return rows


@dataclass(frozen=True)
class UpperBoundRow:
    """E5: one MVD configuration, aggregated over trials."""

    d: int
    d_c: int
    n: int
    log_loss_mean: float
    cmi_mean: float
    epsilon: float
    bare_violation_rate: float   # log(1+ρ) > I          (no slack term)
    bound_violation_rate: float  # log(1+ρ) > I + ε*     (Thm 5.1 event)
    in_regime: bool


def run_mvd_upper_bound(
    *,
    ds: Sequence[int] = (16, 32, 64),
    d_c: int = 4,
    density: float = 0.5,
    delta: float = 0.1,
    trials: int = 10,
    seed: int = 13,
) -> list[UpperBoundRow]:
    """E5: ``log(1+ρ(R_S,φ)) ≤ I(A;B|C) + ε*`` empirically.

    For each ``d ∈ ds`` samples ``N = density·d·d·d_C`` tuples over
    ``d_A = d_B = d`` and the MVD ``φ = C ↠ A|B``.
    """
    if not 0 < density <= 1:
        raise ExperimentError(f"density must lie in (0, 1], got {density}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for d in ds:
        n = max(4, int(density * d * d * d_c))
        log_losses = []
        cmis = []
        bare_violations = 0
        bound_violations = 0
        eps = epsilon_star(d, d, d_c, n, delta)
        for _ in range(trials):
            relation = random_relation({"A": d, "B": d, "C": d_c}, n, rng)
            rho = split_loss(relation, {"A", "C"}, {"B", "C"})
            cmi = conditional_mutual_information(relation, ["A"], ["B"], ["C"])
            log_loss = math.log1p(rho)
            log_losses.append(log_loss)
            cmis.append(cmi)
            if log_loss > cmi + 1e-12:
                bare_violations += 1
            if log_loss > cmi + eps.value:
                bound_violations += 1
        rows.append(
            UpperBoundRow(
                d=d,
                d_c=d_c,
                n=n,
                log_loss_mean=float(np.mean(log_losses)),
                cmi_mean=float(np.mean(cmis)),
                epsilon=eps.value,
                bare_violation_rate=bare_violations / trials,
                bound_violation_rate=bound_violations / trials,
                in_regime=eps.condition_holds,
            )
        )
    return rows


def format_entropy_table(rows: Sequence[EntropyConfidenceRow]) -> str:
    """Render the E4 series."""
    header = (
        f"{'eta':>8} {'deficit_mean':>13} {'deficit_max':>12} "
        f"{'radius(Thm5.2)':>15} {'C(d_B)':>9} {'coverage':>9} {'regime':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.eta:>8} {row.deficit_mean:>13.6f} {row.deficit_max:>12.6f} "
            f"{row.radius:>15.4f} {row.expected_bound:>9.4f} "
            f"{row.coverage:>9.2f} {'yes' if row.in_regime else 'no':>7}"
        )
    return "\n".join(lines)


def format_upper_table(rows: Sequence[UpperBoundRow]) -> str:
    """Render the E5 series."""
    header = (
        f"{'d':>5} {'N':>8} {'log(1+rho)':>11} {'I(A;B|C)':>10} "
        f"{'eps*':>9} {'bare_viol':>10} {'bound_viol':>11} {'regime':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.d:>5} {row.n:>8} {row.log_loss_mean:>11.5f} "
            f"{row.cmi_mean:>10.5f} {row.epsilon:>9.3f} "
            f"{row.bare_violation_rate:>10.2f} {row.bound_violation_rate:>11.2f} "
            f"{'yes' if row.in_regime else 'no':>7}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print both upper-bound experiments."""
    print("E4 / Thm 5.2 — entropy confidence (d_C = 1)")
    print(format_entropy_table(run_entropy_confidence()))
    print()
    print("E5 / Thm 5.1 — log(1+rho) vs I + eps* for the MVD C ↠ A|B")
    print(format_upper_table(run_mvd_upper_bound()))


if __name__ == "__main__":
    main()

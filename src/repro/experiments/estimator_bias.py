"""Experiment E10 — entropy-estimator bias vs the Prop 5.4 deficit.

Proposition 5.4 bounds the *plug-in* entropy's negative bias under the
random relation model; this ablation measures how far bias-corrected
estimators (Miller–Madow, jackknife) close the gap to the exact
expectation computed in closed form
(:mod:`repro.concentration.expected_entropy`).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.concentration.expected_entropy import exact_expected_entropy
from repro.core.random_relations import random_relation
from repro.errors import ExperimentError
from repro.info.estimators import jackknife, miller_madow, plug_in


@dataclass(frozen=True)
class EstimatorBiasRow:
    """Mean absolute error of each estimator at one configuration."""

    d: int
    eta: int
    exact_expected: float       # E[H(A_S)] in closed form
    truth: float                # log d (the asymptotic value)
    plug_in_deficit: float      # truth − mean plug-in estimate
    miller_madow_error: float   # |truth − estimate|, averaged
    jackknife_error: float


def run_estimator_bias(
    *,
    ds: Sequence[int] = (32, 64, 128),
    density: float = 0.25,
    trials: int = 20,
    seed: int = 43,
) -> list[EstimatorBiasRow]:
    """Measure estimator bias across domain sizes."""
    if not 0 < density <= 1:
        raise ExperimentError(f"density must lie in (0, 1], got {density}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for d in ds:
        eta = max(2, int(density * d * d))
        truth = math.log(d)
        plug_vals, mm_errs, jk_errs = [], [], []
        for _ in range(trials):
            relation = random_relation({"A": d, "B": d}, eta, rng)
            counts = list(relation.projection_counts(["A"]).values())
            plug_vals.append(plug_in(counts))
            mm_errs.append(abs(truth - miller_madow(counts)))
            jk_errs.append(abs(truth - jackknife(counts)))
        rows.append(
            EstimatorBiasRow(
                d=d,
                eta=eta,
                exact_expected=exact_expected_entropy(d, d, eta),
                truth=truth,
                plug_in_deficit=truth - float(np.mean(plug_vals)),
                miller_madow_error=float(np.mean(mm_errs)),
                jackknife_error=float(np.mean(jk_errs)),
            )
        )
    return rows


def format_table(rows: Sequence[EstimatorBiasRow]) -> str:
    """Render the E10 series."""
    header = (
        f"{'d':>5} {'eta':>7} {'log d':>8} {'E[H] exact':>11} "
        f"{'plug-in deficit':>16} {'MM |err|':>9} {'JK |err|':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.d:>5} {row.eta:>7} {row.truth:>8.4f} "
            f"{row.exact_expected:>11.4f} {row.plug_in_deficit:>16.5f} "
            f"{row.miller_madow_error:>9.5f} {row.jackknife_error:>9.5f}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print the estimator-bias ablation."""
    print("E10 — entropy-estimator bias vs the Prop 5.4 deficit")
    rows = run_estimator_bias()
    print(format_table(rows))
    print(
        "Reading: the plug-in deficit matches log d − E[H] (exact column); "
        "bias-corrected estimators shrink it."
    )


if __name__ == "__main__":
    main()

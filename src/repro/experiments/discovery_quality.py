"""Experiment E8 — low J-measure predicts few spurious tuples.

The paper's introduction cites the empirical finding of Kenig et al. [14]
that schemas with low J-measure generally incur few spurious tuples (the
relationship is not monotone, but correlates).  This experiment:

1. plants an exact MVD instance, perturbs it at increasing noise rates,
   and checks the miner recovers the planted schema at noise 0 and tracks
   increasing J / ρ as noise grows;
2. measures the rank correlation (Spearman) between ``J`` and ``ρ``
   across a pool of random schemas and instances — the correlation should
   be strongly positive, reproducing [14]'s observation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.evalcontext import EvalContext
from repro.core.random_relations import random_relation
from repro.datasets.noise import perturb
from repro.datasets.synthetic import planted_mvd_relation
from repro.discovery.miner import mine_jointree
from repro.errors import ExperimentError
from repro.jointrees.build import jointree_from_schema


@dataclass(frozen=True)
class RecoveryRow:
    """E8a: miner behaviour at one noise rate."""

    noise: float
    recovered: bool
    mined_j: float
    mined_rho: float
    planted_j: float
    planted_rho: float


def run_recovery(
    *,
    noise_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    threshold: float = 0.25,
    seed: int = 23,
    strategy: str = "recursive",
    workers: int | None = None,
) -> list[RecoveryRow]:
    """E8a: plant ``C ↠ A|B``, add noise, mine, compare.

    ``strategy`` and ``workers`` select the discovery engine's search
    mode and scoring backend (defaults reproduce the pinned numbers).
    """
    rng = np.random.default_rng(seed)
    planted_tree = jointree_from_schema([{"A", "C"}, {"B", "C"}])
    planted_bags = {frozenset({"A", "C"}), frozenset({"B", "C"})}
    rows = []
    for rate in noise_rates:
        base = planted_mvd_relation(10, 10, 5, rng)
        noisy = perturb(base, rng, insert_rate=rate)
        mined = mine_jointree(
            noisy, threshold=threshold, strategy=strategy, workers=workers
        )
        # One evaluation context per instance: the planted-schema J and ρ
        # reuse the entropies the mining run already memoized.
        context = EvalContext.for_relation(noisy)
        rows.append(
            RecoveryRow(
                noise=rate,
                recovered=set(mined.bags) == planted_bags,
                mined_j=mined.j_value,
                mined_rho=mined.rho,
                planted_j=context.j_measure(planted_tree),
                planted_rho=context.spurious_loss(planted_tree),
            )
        )
    return rows


@dataclass(frozen=True)
class CorrelationResult:
    """E8b: J-vs-ρ correlation across a random pool."""

    pairs: tuple[tuple[float, float], ...]
    spearman: float
    p_value: float


def run_j_rho_correlation(
    *, instances: int = 40, seed: int = 29
) -> CorrelationResult:
    """E8b: Spearman correlation between ``J`` and ``ρ`` over random data.

    Instances vary in density and domain sizes under the two-bag MVD
    schema; since ``J`` and ``ρ`` both increase as instances drift from
    conditional independence, the rank correlation should be strongly
    positive (the paper stresses it is *not* a monotone function — only a
    correlation).
    """
    if instances < 4:
        raise ExperimentError(f"need at least 4 instances, got {instances}")
    rng = np.random.default_rng(seed)
    tree = jointree_from_schema([{"A", "C"}, {"B", "C"}])
    pairs = []
    for _ in range(instances):
        d_a = int(rng.integers(4, 14))
        d_b = int(rng.integers(4, 14))
        d_c = int(rng.integers(2, 6))
        total = d_a * d_b * d_c
        n = int(rng.integers(max(4, total // 20), max(5, total // 2)))
        relation = random_relation({"A": d_a, "B": d_b, "C": d_c}, n, rng)
        context = EvalContext.for_relation(relation)
        pairs.append(
            (context.j_measure(tree), context.spurious_loss(tree))
        )
    js = [p[0] for p in pairs]
    rhos = [p[1] for p in pairs]
    corr, p_value = stats.spearmanr(js, rhos)
    return CorrelationResult(
        pairs=tuple(pairs), spearman=float(corr), p_value=float(p_value)
    )


@dataclass(frozen=True)
class StrategyRow:
    """E8c: one strategy's result on a fixed noisy planted instance."""

    strategy: str
    num_bags: int
    j_value: float
    rho: float
    recovered: bool


def run_strategy_comparison(
    *,
    noise: float = 0.1,
    threshold: float = 0.25,
    seed: int = 23,
    strategies: Sequence[str] | None = None,
) -> list[StrategyRow]:
    """E8c: every registered strategy on one noisy planted instance.

    All strategies see the same relation *instance*, so the shared
    entropy memo makes the comparison cheap; rows report how finely each
    strategy decomposed and at what J/ρ cost.
    """
    from repro.discovery.strategies import available_strategies

    if strategies is None:
        strategies = available_strategies()
    rng = np.random.default_rng(seed)
    base = planted_mvd_relation(10, 10, 5, rng)
    noisy = perturb(base, rng, insert_rate=noise)
    planted_bags = {frozenset({"A", "C"}), frozenset({"B", "C"})}
    rows = []
    for name in strategies:
        mined = mine_jointree(noisy, threshold=threshold, strategy=name)
        rows.append(
            StrategyRow(
                strategy=name,
                num_bags=len(mined.bags),
                j_value=mined.j_value,
                rho=mined.rho,
                recovered=set(mined.bags) == planted_bags,
            )
        )
    return rows


def format_strategy_table(rows: Sequence[StrategyRow]) -> str:
    """Render the E8c comparison."""
    header = f"{'strategy':>22} {'bags':>5} {'J':>9} {'rho':>9} {'recovered':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.strategy:>22} {row.num_bags:>5} {row.j_value:>9.4f} "
            f"{row.rho:>9.4f} {'yes' if row.recovered else 'no':>10}"
        )
    return "\n".join(lines)


def format_recovery_table(rows: Sequence[RecoveryRow]) -> str:
    """Render the E8a series."""
    header = (
        f"{'noise':>6} {'recovered':>10} {'mined J':>9} {'mined rho':>10} "
        f"{'planted J':>10} {'planted rho':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.noise:>6.2f} {'yes' if row.recovered else 'no':>10} "
            f"{row.mined_j:>9.4f} {row.mined_rho:>10.4f} "
            f"{row.planted_j:>10.4f} {row.planted_rho:>12.4f}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print the discovery-quality experiment."""
    print("E8a — schema recovery under noise (planted C ↠ A|B)")
    print(format_recovery_table(run_recovery()))
    print()
    corr = run_j_rho_correlation()
    print(
        "E8b — Spearman(J, rho) over "
        f"{len(corr.pairs)} random instances: {corr.spearman:.3f} "
        f"(p = {corr.p_value:.2e})"
    )
    print()
    print("E8c — discovery strategies on one noisy planted instance")
    print(format_strategy_table(run_strategy_comparison()))


if __name__ == "__main__":
    main()

"""Experiments E2/E3 — the deterministic lower bound (Lemma 4.1).

* **E2** replays Example 4.1: for the diagonal relation family the bound
  ``ρ ≥ e^J − 1`` is an *equality* for every ``N ≥ 2``.
* **E3** stress-tests the bound across random, planted-then-noised, and
  structured instances: it must never fail, and the experiment reports
  the gap distribution (how loose the bound gets away from the tight
  family).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import loss_lower_bound
from repro.core.jmeasure import j_measure
from repro.core.loss import spurious_loss
from repro.core.random_relations import random_relation
from repro.datasets.noise import perturb
from repro.datasets.synthetic import diagonal_relation, planted_mvd_relation
from repro.errors import ExperimentError
from repro.jointrees.build import jointree_from_schema
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation


@dataclass(frozen=True)
class TightnessRow:
    """E2: one diagonal-family instance."""

    n: int
    j_value: float
    log_loss: float

    @property
    def gap(self) -> float:
        """``log(1+ρ) − J`` — exactly zero for the diagonal family."""
        return self.log_loss - self.j_value


def run_diagonal_tightness(
    ns: Sequence[int] = (2, 5, 10, 50, 100, 500, 1000),
) -> list[TightnessRow]:
    """E2: verify ``J = log(1+ρ)`` on Example 4.1's family."""
    tree = jointree_from_schema([{"A"}, {"B"}])
    rows = []
    for n in ns:
        relation = diagonal_relation(n)
        rows.append(
            TightnessRow(
                n=n,
                j_value=j_measure(relation, tree),
                log_loss=math.log1p(spurious_loss(relation, tree)),
            )
        )
    return rows


@dataclass(frozen=True)
class LowerBoundRow:
    """E3: one instance's loss versus its Lemma 4.1 floor."""

    label: str
    n: int
    j_value: float
    rho: float
    rho_floor: float

    @property
    def holds(self) -> bool:
        """``ρ ≥ e^J − 1`` with floating-point slack."""
        return self.rho + 1e-9 * max(1.0, self.rho) >= self.rho_floor

    @property
    def slack(self) -> float:
        """``ρ − (e^J − 1)`` — how loose the bound is here."""
        return self.rho - self.rho_floor


def _measure(label: str, relation: Relation, tree: JoinTree) -> LowerBoundRow:
    j_value = j_measure(relation, tree)
    return LowerBoundRow(
        label=label,
        n=len(relation),
        j_value=j_value,
        rho=spurious_loss(relation, tree),
        rho_floor=loss_lower_bound(j_value),
    )


def run_lower_bound_gap(*, trials: int = 5, seed: int = 7) -> list[LowerBoundRow]:
    """E3: the lower bound across heterogeneous workloads.

    Workloads: sparse/dense random relations under an MVD schema, planted
    MVD instances with increasing insertion noise, and a three-bag chain
    schema over four attributes.
    """
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows: list[LowerBoundRow] = []

    mvd_tree = jointree_from_schema([{"A", "C"}, {"B", "C"}])
    for density, label in ((0.05, "random sparse"), (0.4, "random dense")):
        for _ in range(trials):
            total = 12 * 12 * 4
            n = max(4, int(density * total))
            relation = random_relation({"A": 12, "B": 12, "C": 4}, n, rng)
            rows.append(_measure(label, relation, mvd_tree))

    for rate in (0.0, 0.1, 0.3):
        for _ in range(trials):
            base = planted_mvd_relation(10, 10, 4, rng)
            noisy = perturb(base, rng, insert_rate=rate)
            rows.append(_measure(f"planted noise={rate:.1f}", noisy, mvd_tree))

    chain = jointree_from_schema([{"A", "B"}, {"B", "C"}, {"C", "D"}])
    for _ in range(trials):
        relation = random_relation({"A": 6, "B": 6, "C": 6, "D": 6}, 80, rng)
        rows.append(_measure("chain m=3", relation, chain))
    return rows


def format_tightness_table(rows: Sequence[TightnessRow]) -> str:
    """Render the E2 series."""
    header = f"{'N':>6} {'J':>10} {'log(1+rho)':>11} {'gap':>11}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.n:>6} {row.j_value:>10.6f} {row.log_loss:>11.6f} "
            f"{row.gap:>11.2e}"
        )
    return "\n".join(lines)


def format_gap_table(rows: Sequence[LowerBoundRow]) -> str:
    """Render the E3 series."""
    header = (
        f"{'workload':>20} {'N':>6} {'J':>9} {'rho':>10} "
        f"{'floor':>10} {'slack':>10} {'ok':>3}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.label:>20} {row.n:>6} {row.j_value:>9.4f} {row.rho:>10.4f} "
            f"{row.rho_floor:>10.4f} {row.slack:>10.4f} "
            f"{'ok' if row.holds else 'NO':>3}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print both lower-bound experiments."""
    print("E2 / Example 4.1 — tightness of the lower bound (diagonal family)")
    tight = run_diagonal_tightness()
    print(format_tightness_table(tight))
    print()
    print("E3 / Lemma 4.1 — rho >= e^J − 1 across workloads")
    gaps = run_lower_bound_gap()
    print(format_gap_table(gaps))
    print(f"bound held on {sum(r.holds for r in gaps)}/{len(gaps)} instances")


if __name__ == "__main__":
    main()

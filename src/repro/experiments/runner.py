"""Experiment registry: run any paper experiment by id.

Maps the experiment ids of DESIGN.md §3 to their ``main()`` entry points.
``python -m repro.experiments.runner E1`` prints Figure 1's series;
``python -m repro.experiments.runner all`` runs the full suite.
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments import (
    classwise_bounds,
    discovery_quality,
    estimator_bias,
    figure1,
    lower_bound,
    schema_bounds,
    upper_bound,
)

#: Experiment id → (description, entry point).
REGISTRY: dict[str, tuple[str, Callable[[], None]]] = {
    "E1": ("Figure 1: MI scattering vs log(1+rho)", figure1.main),
    "E2": ("Example 4.1: lower-bound tightness", lower_bound.main),
    "E3": ("Lemma 4.1: lower bound across workloads", lower_bound.main),
    "E4": ("Thm 5.2: entropy confidence", upper_bound.main),
    "E5": ("Thm 5.1: MVD upper bound", upper_bound.main),
    "E6": ("Prop 5.1: product bound", schema_bounds.main),
    "E7": ("Thm 2.2: sandwich bounds", schema_bounds.main),
    "E8": ("Discovery: J vs rho, schema recovery", discovery_quality.main),
    "E9": ("Per-class glue of Thm 5.1 (Eq 44/336, Lemma C.1)", classwise_bounds.main),
    "E10": ("Estimator bias vs Prop 5.4 deficit", estimator_bias.main),
}


def run(experiment_id: str) -> None:
    """Run one experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known ids: {', '.join(sorted(REGISTRY))}"
        )
    REGISTRY[key][1]()


def _id_key(experiment_id: str) -> tuple:
    """Numeric-aware sort key: E2 before E10 (plain sorted() is not)."""
    suffix = experiment_id[1:]
    if experiment_id[:1] == "E" and suffix.isdigit():
        return (0, int(suffix))
    return (1, experiment_id)


def entry_groups() -> list[tuple[Callable[[], None], list[str]]]:
    """Experiment ids grouped by their entry callable, in numeric id order.

    Several ids intentionally share one ``main`` (E2/E3, E4/E5, E6/E7
    present two claims of the same experiment program); grouping by the
    callable itself is what lets :func:`run_all` run each program exactly
    once while every id stays individually runnable via :func:`run`.
    """
    groups: dict[Callable[[], None], list[str]] = {}
    for key in sorted(REGISTRY, key=_id_key):
        groups.setdefault(REGISTRY[key][1], []).append(key)
    return list(groups.items())


def run_all() -> None:
    """Run the full suite, executing each shared entry point exactly once.

    Each run is labelled with *all* the ids it serves, so shared entry
    points are visible rather than silently collapsed.
    """
    for entry, ids in entry_groups():
        print(f"=== {'/'.join(ids)} ===")
        entry()
        print()


def _usage_lines() -> list[str]:
    """The id directory printed by ``--help`` and unknown-id errors."""
    lines = ["usage: python -m repro.experiments.runner <experiment-id>|all"]
    for key in sorted(REGISTRY, key=_id_key):
        lines.append(f"  {key}: {REGISTRY[key][0]}")
    return lines


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point for the experiment runner.

    An unknown experiment id exits with status 2 and the full directory
    of valid ids (with descriptions) on stderr — never a traceback.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in {"-h", "--help"}:
        print("\n".join(_usage_lines()))
        return 0
    try:
        if args[0].lower() == "all":
            run_all()
        else:
            run(args[0])
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("\n".join(_usage_lines()[1:]), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

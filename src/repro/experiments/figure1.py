"""Experiment E1 — reproduce Figure 1 of the paper.

Protocol (caption of Figure 1): fix the percentage of spurious tuples
``ρ``, set ``d_C = 1`` and ``d_A = d_B = d``, draw
``N = d²/(1+ρ)`` tuples from the random relation model, and plot the
resulting mutual information ``I(A_S; B_S)`` against ``d``.  As the
database grows the mutual information approaches ``log(1+ρ)`` — the shape
this harness checks.

The paper sweeps ``d`` from 100 to 1000 with the y-axis hugging
``log(1+ρ) ≈ 0.0953`` (ρ = 0.1); the defaults here match that sweep.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.random_relations import random_relation, relation_size_for_loss
from repro.errors import ExperimentError
from repro.info.divergence import mutual_information

#: The paper's sweep: d = 100, 200, …, 1000 at fixed ρ = 0.1.
PAPER_DS: tuple[int, ...] = tuple(range(100, 1001, 100))
PAPER_RHO: float = 0.1


@dataclass(frozen=True)
class Figure1Row:
    """One point of the Figure 1 scatter (aggregated over trials)."""

    d: int
    n: int
    target: float          # log(1 + ρ̄), the asymptote
    mi_mean: float
    mi_min: float
    mi_max: float
    mi_exact: float        # E[I(A_S;B_S)] in closed form (no simulation)

    @property
    def gap(self) -> float:
        """``target − mi_mean`` — shrinks as ``d`` grows (the figure's shape)."""
        return self.target - self.mi_mean

    @property
    def exact_gap(self) -> float:
        """``|mi_mean − mi_exact|`` — simulation vs closed form."""
        return abs(self.mi_mean - self.mi_exact)


def run_figure1(
    *,
    ds: Sequence[int] = PAPER_DS,
    rho: float = PAPER_RHO,
    trials: int = 3,
    seed: int = 2023,
) -> list[Figure1Row]:
    """Run the Figure 1 protocol and return one aggregated row per ``d``."""
    if rho < 0:
        raise ExperimentError(f"target loss must be non-negative, got {rho}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    from repro.concentration.expected_entropy import exact_expected_mi

    rng = np.random.default_rng(seed)
    rows = []
    for d in ds:
        if d < 2:
            raise ExperimentError(f"domain size must be at least 2, got {d}")
        sizes = {"A": d, "B": d}
        n = relation_size_for_loss(sizes, rho)
        target = math.log(d * d / n)
        mis = []
        for _ in range(trials):
            relation = random_relation(sizes, n, rng)
            mis.append(mutual_information(relation, ["A"], ["B"]))
        rows.append(
            Figure1Row(
                d=d,
                n=n,
                target=target,
                mi_mean=float(np.mean(mis)),
                mi_min=float(np.min(mis)),
                mi_max=float(np.max(mis)),
                mi_exact=exact_expected_mi(d, d, n),
            )
        )
    return rows


def format_table(rows: Sequence[Figure1Row]) -> str:
    """Render the Figure 1 series as an aligned text table (nats)."""
    header = (
        f"{'d':>6} {'N':>9} {'log(1+rho)':>11} {'I mean':>9} "
        f"{'I min':>9} {'I max':>9} {'E[I] exact':>11} {'gap':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.d:>6} {row.n:>9} {row.target:>11.5f} {row.mi_mean:>9.5f} "
            f"{row.mi_min:>9.5f} {row.mi_max:>9.5f} {row.mi_exact:>11.5f} "
            f"{row.gap:>9.5f}"
        )
    return "\n".join(lines)


def shape_holds(rows: Sequence[Figure1Row]) -> bool:
    """The paper's qualitative claim for Figure 1.

    (a) the mutual information never exceeds its ceiling ``log(1+ρ̄)``
    (Corollary 5.2.1 region), and (b) the gap at the largest ``d`` is
    smaller than at the smallest ``d`` — the scatter approaches the
    asymptote as the database grows.
    """
    if len(rows) < 2:
        raise ExperimentError("need at least two sweep points to check the shape")
    ceiling_ok = all(row.mi_max <= row.target + 1e-9 for row in rows)
    shrink_ok = rows[-1].gap < rows[0].gap
    return ceiling_ok and shrink_ok


@dataclass(frozen=True)
class ConditionalFigure1Row:
    """One point of the conditional (``d_C > 1``) Figure 1 variant."""

    d: int
    d_c: int
    n: int
    target: float
    cmi_mean: float

    @property
    def gap(self) -> float:
        """``target − cmi_mean``."""
        return self.target - self.cmi_mean


def run_figure1_conditional(
    *,
    ds: Sequence[int] = (20, 40, 80),
    d_c: int = 4,
    rho: float = 0.1,
    trials: int = 3,
    seed: int = 2024,
) -> list[ConditionalFigure1Row]:
    """E11: the Figure 1 protocol for a genuine MVD (``d_C > 1``).

    Fix ρ, draw ``N = d²·d_C/(1+ρ)`` tuples, and track
    ``I(A;B|C) → log(1+ρ)`` — the conditional analogue of the paper's
    figure, exercising Theorem 5.1's full setting.
    """
    from repro.info.divergence import conditional_mutual_information

    if rho < 0:
        raise ExperimentError(f"target loss must be non-negative, got {rho}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for d in ds:
        sizes = {"A": d, "B": d, "C": d_c}
        n = relation_size_for_loss(sizes, rho)
        target = math.log(d * d * d_c / n)
        cmis = []
        for _ in range(trials):
            relation = random_relation(sizes, n, rng)
            cmis.append(
                conditional_mutual_information(relation, ["A"], ["B"], ["C"])
            )
        rows.append(
            ConditionalFigure1Row(
                d=d,
                d_c=d_c,
                n=n,
                target=target,
                cmi_mean=float(np.mean(cmis)),
            )
        )
    return rows


def format_conditional_table(rows: Sequence[ConditionalFigure1Row]) -> str:
    """Render the E11 series."""
    header = (
        f"{'d':>6} {'d_C':>4} {'N':>9} {'log(1+rho)':>11} "
        f"{'I(A;B|C)':>10} {'gap':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.d:>6} {row.d_c:>4} {row.n:>9} {row.target:>11.5f} "
            f"{row.cmi_mean:>10.5f} {row.gap:>9.5f}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print the Figure 1 reproduction at the paper's scale."""
    rows = run_figure1()
    print("E1 / Figure 1 — mutual information vs log(1+rho), d_C=1, rho=0.1")
    print(format_table(rows))
    print(f"shape holds (gap shrinks, ceiling respected): {shape_holds(rows)}")
    print()
    print("E11 — conditional variant (d_C = 4): I(A;B|C) -> log(1+rho)")
    conditional = run_figure1_conditional(ds=(20, 40, 80, 160))
    print(format_conditional_table(conditional))


if __name__ == "__main__":
    main()

"""Experiment E9 — inside Theorem 5.1's proof: the per-class glue.

Theorem 5.1's proof conditions on ``C = ℓ`` and glues the per-class
pictures with the log-sum inequality (Eq. 44) plus the conditional-MI
averaging identity (Eq. 336).  This experiment makes both steps visible
on data:

* Eq. 44 (ceiling form) must hold on every instance;
* the averaging identity must hold to machine precision;
* per-class sample sizes must clear the Lemma C.1 threshold
  ``N/(2·d_C)`` with high probability.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.classwise import classwise_decomposition
from repro.core.random_relations import random_relation
from repro.errors import ExperimentError


@dataclass(frozen=True)
class ClasswiseRow:
    """One sampled instance's per-class glue summary."""

    d: int
    d_c: int
    n: int
    log_loss: float
    eq44_bound: float
    eq44_holds: bool
    averaging_gap: float
    min_class_size: int
    lemma_c1_threshold: float

    @property
    def class_sizes_ok(self) -> bool:
        """Whether every class cleared the N/(2·d_C) threshold."""
        return self.min_class_size >= self.lemma_c1_threshold


def run_classwise_bounds(
    *,
    ds: Sequence[int] = (8, 16, 32),
    d_c: int = 4,
    density: float = 0.4,
    trials: int = 5,
    seed: int = 37,
) -> list[ClasswiseRow]:
    """Run the per-class glue experiment over random MVD instances."""
    if not 0 < density <= 1:
        raise ExperimentError(f"density must lie in (0, 1], got {density}")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    rows = []
    for d in ds:
        n = max(d_c * 2, int(density * d * d * d_c))
        for _ in range(trials):
            relation = random_relation({"A": d, "B": d, "C": d_c}, n, rng)
            dec = classwise_decomposition(relation, "A", "B", "C")
            rows.append(
                ClasswiseRow(
                    d=d,
                    d_c=d_c,
                    n=n,
                    log_loss=dec.log_loss,
                    eq44_bound=dec.eq44_bound,
                    eq44_holds=dec.eq44_holds,
                    averaging_gap=dec.averaging_identity_gap,
                    min_class_size=min(c.n for c in dec.classes),
                    lemma_c1_threshold=n / (2 * d_c),
                )
            )
    return rows


def format_table(rows: Sequence[ClasswiseRow]) -> str:
    """Render the E9 series."""
    header = (
        f"{'d':>5} {'N':>7} {'log(1+rho)':>11} {'Eq44 rhs':>9} {'ok':>3} "
        f"{'avg gap':>10} {'min N(l)':>9} {'N/(2dC)':>8} {'C1':>3}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.d:>5} {row.n:>7} {row.log_loss:>11.5f} "
            f"{row.eq44_bound:>9.5f} {'ok' if row.eq44_holds else 'NO':>3} "
            f"{row.averaging_gap:>10.2e} {row.min_class_size:>9} "
            f"{row.lemma_c1_threshold:>8.1f} "
            f"{'ok' if row.class_sizes_ok else 'NO':>3}"
        )
    return "\n".join(lines)


def main() -> None:
    """Print the per-class glue experiment."""
    print("E9 — per-class glue of Theorem 5.1 (Eq. 44, Eq. 336, Lemma C.1)")
    rows = run_classwise_bounds()
    print(format_table(rows))
    eq44 = sum(r.eq44_holds for r in rows)
    c1 = sum(r.class_sizes_ok for r in rows)
    print(
        f"Eq. 44 held on {eq44}/{len(rows)}, class-size threshold on "
        f"{c1}/{len(rows)} (Lemma C.1 is a high-probability statement)"
    )


if __name__ == "__main__":
    main()

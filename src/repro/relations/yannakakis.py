"""Yannakakis' algorithm: output-sensitive acyclic join evaluation.

The full pipeline the paper cites for "efficient query evaluation" over
acyclic schemas [26]:

1. **full reduction** — two semijoin sweeps remove dangling tuples
   (:mod:`repro.relations.semijoin`);
2. **bottom-up join** — join reduced relations along the tree; because
   nothing dangles, every intermediate result embeds into the final one,
   so the cost is ``O(input + output)`` joins rather than worst-case
   intermediate blowup;
3. optional **projection** onto requested output attributes.

:func:`evaluate_acyclic_join` is the user-facing entry point; it also
supports evaluating directly from a universal relation's projections
(the paper's decomposition setting).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import JoinTreeError
from repro.jointrees.jointree import JoinTree
from repro.relations.join import natural_join
from repro.relations.relation import Relation
from repro.relations.semijoin import full_reduce, projections_for_tree


def evaluate_acyclic_join(
    relations: Mapping[int, Relation],
    jointree: JoinTree,
    *,
    output: Iterable[str] | None = None,
) -> Relation:
    """Compute ``⋈ᵢ Rᵢ`` over a join tree with Yannakakis' algorithm.

    Parameters
    ----------
    relations:
        One relation per tree node (attributes = the node's bag).
    jointree:
        The acyclic schema's join tree.
    output:
        Optional attribute subset to project the result onto (canonical
        order).  ``None`` returns the full join.

    Returns
    -------
    Relation
        The join result (possibly projected).
    """
    reduced = full_reduce(relations, jointree)

    order = jointree.dfs_order()
    parent = jointree.parents()
    # Bottom-up: fold each subtree's join into its parent.
    accumulated: dict[int, Relation] = dict(reduced)
    for node in reversed(order[1:]):
        p = parent[node]
        accumulated[p] = natural_join(accumulated[p], accumulated[node])
    result = accumulated[order[0]]

    if output is not None:
        wanted = set(output)
        missing = wanted - set(result.schema.names)
        if missing:
            raise JoinTreeError(
                f"output attributes {sorted(missing)} not produced by the join"
            )
        result = result.project(result.schema.canonical_order(wanted))
    return result


def evaluate_decomposition(
    relation: Relation,
    jointree: JoinTree,
    *,
    output: Iterable[str] | None = None,
) -> Relation:
    """Yannakakis over the projections ``R[Ωᵢ]`` of a universal relation.

    This materializes exactly the join whose *size* the loss machinery
    counts; use it only when the result is small enough to hold.
    """
    return evaluate_acyclic_join(
        projections_for_tree(relation, jointree), jointree, output=output
    )

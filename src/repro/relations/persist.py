"""Persistent columnar snapshots: zero-parse on-disk relations.

A **snapshot** is a directory holding one relation in exactly the form
the in-memory :class:`~repro.relations.columns.ColumnStore` wants it:

* ``col-NNN.npy`` — one contiguous ``int64`` code array per attribute,
  written with :func:`numpy.save` so it reloads with
  ``numpy.load(..., mmap_mode="r")`` — no parsing, no factorization,
  no per-value coercion;
* ``meta.json`` — format marker + version, the schema's attribute
  names, row count, per-column cardinalities, per-column **decoder**
  lists (``decoder[code] = value``, values tagged by type so ints,
  floats, strings, bools, and ``None`` round-trip exactly — including
  ``nan``/``inf`` via ``repr``), the content
  :meth:`~repro.relations.relation.Relation.fingerprint`, and optional
  provenance (source CSV path + size + mtime).

Loading rebuilds the relation through
:meth:`ColumnStore.from_coded_columns` — the same zero-factorization
path the streaming builder uses — so a reloaded dataset is immediately
query-ready and **bit-identical** to the one that was saved: same
fingerprint, same rows, same cardinalities, same decoders.

Fidelity is enforced at *save* time: after deriving the on-disk form,
:func:`save_snapshot` decodes it back and compares fingerprints; a
relation whose values cannot round-trip (e.g. the ``1 == True == 1.0``
hash collapse leaving two repr-distinct values behind one code) raises
:class:`~repro.errors.SnapshotError` *instead of writing*, so a
snapshot on disk is always trustworthy and loads do not pay an O(N)
re-hash.  Loads verify structure (format, version, dtype, shapes, code
ranges, duplicate-free decode) plus the recorded fingerprint string
against the caller's expectation; ``verify_content=True`` additionally
re-hashes the decoded rows (used by tests and one-off audits).

Durability follows the ResultCache spill discipline: every file is
flushed + fsynced inside a temporary sibling directory which is then
atomically renamed into place — a hard kill can never leave a torn
snapshot under the published name.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from pathlib import Path

import numpy as np

from repro.errors import SnapshotError
from repro.relations.columns import ColumnStore
from repro.relations.schema import Attribute, RelationSchema

FORMAT_NAME = "repro-columnar-snapshot"
#: Current write version.  Version 1 stored every code column as int64;
#: version 2 narrows each column to the smallest unsigned dtype that can
#: hold ``card - 1`` (uint8/16/32, falling back to int64 past 2**32).
#: Loads accept both and always hand the engine int64 arrays.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
META_FILE = "meta.json"
MEMO_FILE = "memo.json"
MEMO_FORMAT_NAME = "repro-entropy-memo"
#: The memo sidecar format is versioned independently of the snapshot
#: format (its shape did not change when snapshots learned narrow
#: dtypes), so v1 sidecars written beside v1 snapshots stay readable.
MEMO_FORMAT_VERSION = 1


def code_dtype_for(card: int) -> np.dtype:
    """Narrowest dtype holding codes in ``[0, card)`` (version-2 layout).

    An empty column (``card == 0``) stores no codes; uint8 is used so
    the on-disk array still has a well-defined element type.
    """
    if card <= 1 << 8:
        return np.dtype(np.uint8)
    if card <= 1 << 16:
        return np.dtype(np.uint16)
    if card <= 1 << 32:
        return np.dtype(np.uint32)
    return np.dtype(np.int64)


# ----------------------------------------------------------------------
# Shared crash-safe write helper (also used by the service's cache and
# registry spills).
# ----------------------------------------------------------------------
def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` with fsync-before-atomic-rename.

    The temp file lives beside the target, is flushed and fsynced
    before the rename, so readers either see the complete new content
    or whatever was there before — never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        path.name + f".tmp{os.getpid()}-{threading.get_ident()}"
    )
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms refusing O_RDONLY on directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Decoder value (de)serialization — tagged so types survive JSON
# ----------------------------------------------------------------------
def _tag_value(value) -> list:
    """``value`` → JSON-safe tagged pair; raises on unsupported types."""
    if value is None:
        return ["n"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        # repr is the shortest exact round-trip and covers nan/inf,
        # which strict JSON cannot carry as numbers.
        return ["f", repr(value)]
    if isinstance(value, str):
        return ["s", value]
    raise SnapshotError(
        f"cannot snapshot a value of type {type(value).__name__!r} "
        f"({value!r}); snapshots support int, float, str, bool, None"
    )


def _untag_value(tagged):
    if (
        not isinstance(tagged, list)
        or not tagged
        or tagged[0] not in ("n", "b", "i", "f", "s")
    ):
        raise SnapshotError(f"malformed decoder value {tagged!r}")
    kind = tagged[0]
    if kind == "n":
        return None
    if len(tagged) != 2:
        raise SnapshotError(f"malformed decoder value {tagged!r}")
    payload = tagged[1]
    if kind == "b":
        if not isinstance(payload, bool):
            raise SnapshotError(f"malformed bool decoder value {tagged!r}")
        return payload
    if kind == "i":
        if isinstance(payload, bool) or not isinstance(payload, int):
            raise SnapshotError(f"malformed int decoder value {tagged!r}")
        return payload
    if kind == "f":
        try:
            return float(payload)
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"malformed float decoder value {tagged!r}"
            ) from exc
    if not isinstance(payload, str):
        raise SnapshotError(f"malformed str decoder value {tagged!r}")
    return payload


def _object_array(values, count: int) -> np.ndarray:
    """1-D object array from ``values`` (safe for any element types)."""
    return np.fromiter(values, dtype=object, count=count)


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def _derive_decoders(relation) -> list[list]:
    """Per-column ``code → original value`` lists from the live relation.

    Values come from the relation's actual row tuples (not the store's
    internal decoders) so identity- and unique-coded columns recover
    the *original* Python objects (an int column ingested as float64 by
    numpy would otherwise decode ``2`` as ``2.0``).  Codes never hit by
    any row (identity coding admits gaps) decode to the code itself.
    """
    store = relation.columns()
    row_list = store.row_list
    n = len(row_list)
    decoders: list[list] = []
    for j, card in enumerate(store.cards):
        dec = np.empty(card, dtype=object)
        if n:
            values = _object_array((row[j] for row in row_list), n)
            codes = store.codes[j]
            mask = np.zeros(card, dtype=bool)
            dec[codes] = values
            mask[codes] = True
            for code in np.flatnonzero(~mask).tolist():
                dec[code] = int(code)  # identity gap: value == code
        decoders.append(dec.tolist())
    return decoders


def save_snapshot(
    relation,
    path: str | Path,
    *,
    source: str | None = None,
    extra: dict | None = None,
) -> Path:
    """Persist ``relation`` as a verified columnar snapshot at ``path``.

    ``path`` becomes a directory (replaced atomically if it already
    exists).  ``source`` records provenance (the CSV the relation was
    ingested from) with its current size/mtime so warm restarts can
    cheaply detect an unchanged file; ``extra`` is carried verbatim in
    the metadata (must be JSON-serializable).

    Raises :class:`~repro.errors.SnapshotError` when the relation's
    values cannot round-trip bit-identically (nothing is written) and
    on I/O failure (wrapping the underlying ``OSError``).
    """
    path = Path(path)
    store = relation.columns()
    decoders = _derive_decoders(relation)
    fingerprint = relation.fingerprint()

    # Fidelity gate: decode the on-disk form back and require the same
    # content fingerprint.  Catches every repr-changing collapse (1 vs
    # True vs 1.0 behind one code) before anything is published.
    rebuilt = _assemble(
        relation.schema.names,
        [np.asarray(col) for col in store.codes],
        list(store.cards),
        decoders,
        len(relation),
        expected_fingerprint=None,
        domains=False,
    )
    if rebuilt.fingerprint() != fingerprint:
        raise SnapshotError(
            f"relation does not round-trip through columnar decoding "
            f"(fingerprint {fingerprint} != {rebuilt.fingerprint()}); "
            "numerically-colliding values (e.g. 1 vs True vs 1.0) share "
            "a code — keep the CSV source for this dataset"
        )

    tagged = [[_tag_value(v) for v in dec] for dec in decoders]
    column_files = [f"col-{j:03d}.npy" for j in range(len(store.cards))]
    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "attributes": list(relation.schema.names),
        "n_rows": len(relation),
        "cards": [int(c) for c in store.cards],
        "columns": column_files,
        "decoders": tagged,
        "created_at": time.time(),
    }
    if source is not None:
        provenance: dict = {"path": str(source)}
        try:
            stat = os.stat(source)
            provenance["size"] = stat.st_size
            provenance["mtime_ns"] = stat.st_mtime_ns
        except OSError:
            pass  # provenance is advisory; the fingerprint is the truth
        meta["source"] = provenance
    if extra:
        meta["extra"] = extra

    tmp = path.with_name(
        path.name + f".tmp{os.getpid()}-{threading.get_ident()}"
    )
    try:
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
    except OSError as exc:
        raise SnapshotError(
            f"cannot create snapshot at {path}: {exc}"
        ) from exc
    try:
        for j, name in enumerate(column_files):
            # Narrow losslessly: codes live in [0, card) by construction
            # (the range is re-verified against the same card on load).
            narrow = code_dtype_for(int(store.cards[j]))
            with open(tmp / name, "wb") as handle:
                np.save(
                    handle,
                    np.ascontiguousarray(
                        store.codes[j].astype(narrow, copy=False)
                    ),
                )
                handle.flush()
                os.fsync(handle.fileno())
        meta_text = json.dumps(meta, indent=2, sort_keys=True) + "\n"
        with open(tmp / META_FILE, "w", encoding="utf-8") as handle:
            handle.write(meta_text)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(tmp)
        if path.exists():
            shutil.rmtree(path)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException as exc:
        shutil.rmtree(tmp, ignore_errors=True)
        if isinstance(exc, OSError):
            raise SnapshotError(
                f"cannot write snapshot at {path}: {exc}"
            ) from exc
        raise
    return path


# ----------------------------------------------------------------------
# Fingerprint chains (delta ingest)
# ----------------------------------------------------------------------
#: ``meta["extra"]`` key carrying a dataset's version chain.
CHAIN_KEY = "chain"


def validate_chain(chain) -> dict:
    """Structurally validate a fingerprint chain; return it normalized.

    A chain records a live dataset's append history:
    ``{"base": <fp>, "chunks": [<fp>, ...], "version": 1 + len(chunks)}``
    — the base ingest's content fingerprint plus one fingerprint per
    appended delta, in order.  The *current* content fingerprint is not
    part of the chain (it keys the snapshot/registry entry itself); the
    chain is the provenance trail proving how that content was reached.
    Raises :class:`~repro.errors.SnapshotError` on anything malformed.
    """

    def _is_fp(value) -> bool:
        return isinstance(value, str) and len(value) == 32

    if (
        not isinstance(chain, dict)
        or not _is_fp(chain.get("base"))
        or not isinstance(chain.get("chunks"), list)
        or not all(_is_fp(fp) for fp in chain["chunks"])
        or chain.get("version") != 1 + len(chain["chunks"])
    ):
        raise SnapshotError(f"malformed fingerprint chain: {chain!r}")
    return {
        "base": chain["base"],
        "chunks": [str(fp) for fp in chain["chunks"]],
        "version": int(chain["version"]),
    }


def chain_from_meta(meta: dict) -> dict | None:
    """The snapshot's fingerprint chain, or ``None`` for version-1 data.

    Reads ``meta["extra"]["chain"]`` (see :data:`CHAIN_KEY`) as written
    by the registry's append path; a malformed chain raises
    :class:`~repro.errors.SnapshotError` rather than silently dropping
    provenance.
    """
    extra = meta.get("extra")
    if not isinstance(extra, dict) or CHAIN_KEY not in extra:
        return None
    return validate_chain(extra[CHAIN_KEY])


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def read_snapshot_meta(path: str | Path) -> dict:
    """Parse and structurally validate a snapshot's ``meta.json``.

    Raises :class:`~repro.errors.SnapshotError` on anything malformed —
    missing file, bad JSON, wrong format marker, unsupported version,
    or inconsistent schema/cardinality/decoder structure.
    """
    path = Path(path)
    meta_path = path / META_FILE
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    except ValueError as exc:
        raise SnapshotError(
            f"snapshot {path} has corrupt metadata: {exc}"
        ) from exc
    if not isinstance(meta, dict) or meta.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"{path} is not a {FORMAT_NAME} snapshot "
            f"(format={meta.get('format') if isinstance(meta, dict) else meta!r})"
        )
    if meta.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"snapshot {path} has format version {meta.get('version')!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS}"
        )
    attributes = meta.get("attributes")
    if (
        not isinstance(attributes, list)
        or not attributes
        or not all(isinstance(a, str) for a in attributes)
    ):
        raise SnapshotError(f"snapshot {path} has a malformed attribute list")
    arity = len(attributes)
    n_rows = meta.get("n_rows")
    if isinstance(n_rows, bool) or not isinstance(n_rows, int) or n_rows < 0:
        raise SnapshotError(f"snapshot {path} has a malformed row count")
    fingerprint = meta.get("fingerprint")
    if not isinstance(fingerprint, str) or len(fingerprint) != 32:
        raise SnapshotError(f"snapshot {path} has a malformed fingerprint")
    cards = meta.get("cards")
    if (
        not isinstance(cards, list)
        or len(cards) != arity
        or not all(
            not isinstance(c, bool) and isinstance(c, int) and c >= 0
            for c in cards
        )
    ):
        raise SnapshotError(f"snapshot {path} has malformed cardinalities")
    columns = meta.get("columns")
    if (
        not isinstance(columns, list)
        or len(columns) != arity
        or not all(
            isinstance(name, str) and Path(name).name == name
            for name in columns
        )
    ):
        raise SnapshotError(f"snapshot {path} has a malformed column list")
    decoders = meta.get("decoders")
    if (
        not isinstance(decoders, list)
        or len(decoders) != arity
        or not all(
            isinstance(dec, list) and len(dec) == card
            for dec, card in zip(decoders, cards)
        )
    ):
        raise SnapshotError(
            f"snapshot {path} has decoders inconsistent with its "
            "cardinalities"
        )
    return meta


def _assemble(
    names,
    columns: list[np.ndarray],
    cards: list[int],
    decoders: list[list],
    n_rows: int,
    *,
    expected_fingerprint: str | None,
    domains: bool,
    lazy: bool = False,
):
    """Build a Relation from coded columns + decoders (shared save/load).

    ``lazy=True`` skips decoding the Python row tuples entirely — the
    relation carries only its coded store, and
    :attr:`~repro.relations.columns.ColumnStore.row_list` decodes on
    first tuple-level access.  Store-level consumers (entropy engines,
    groupings) therefore reload with zero per-row work.
    """
    from repro.relations.relation import Relation

    decoded = []
    attrs = []
    for name, codes, card, decoder in zip(names, columns, cards, decoders):
        dec_arr = _object_array(decoder, card)
        if not lazy:
            decoded.append(dec_arr[codes].tolist() if n_rows else [])
        if domains:
            # An Attribute may not declare an *empty* domain, so an
            # empty relation keeps open-domain attributes.
            if n_rows:
                present = np.unique(codes)
                attrs.append(
                    Attribute(name, frozenset(dec_arr[present].tolist()))
                )
            else:
                attrs.append(Attribute(name, None))
    if lazy:
        row_list = None
        rows = None
    else:
        row_list = tuple(zip(*decoded)) if n_rows else ()
        rows = frozenset(row_list)
        if len(rows) != n_rows:
            raise SnapshotError(
                f"decoded rows are not pairwise distinct ({len(rows)} of "
                f"{n_rows}); the snapshot is corrupt"
            )
    schema = (
        RelationSchema(attrs) if domains else RelationSchema.from_names(names)
    )
    relation = Relation.__new__(Relation)
    relation._schema = schema
    relation._rows = rows
    relation._engine = None
    relation._eval = None
    relation._fingerprint = expected_fingerprint
    relation._store = ColumnStore.from_coded_columns(
        row_list, columns, cards, decoders
    )
    return relation


def load_snapshot(
    path: str | Path,
    *,
    mmap: bool = True,
    expected_fingerprint: str | None = None,
    verify_content: bool = False,
    domains: bool = False,
):
    """Load a relation from a snapshot directory — zero parsing.

    Structural verification always runs: format marker + version, array
    dtype/shape, code-range-vs-cardinality, decoder consistency.  The
    Python row tuples are decoded **lazily** on first tuple-level access
    (a non-duplicate-free decode is rejected there), so store-level
    consumers — the entropy engine behind every mine/analyze — reload
    with zero per-row work.  ``expected_fingerprint`` additionally pins
    the recorded content fingerprint (the registry knows what it
    admitted); ``verify_content=True`` re-hashes the decoded rows
    against the recorded fingerprint (O(N); tests and audits only —
    save already guaranteed it).  ``mmap`` maps the code arrays
    read-only instead of copying them into memory.  ``domains=True``
    declares each attribute's active domain on the schema (equivalent
    to :func:`~repro.relations.io.infer_integer_domains`, computed
    vectorized from the decoders).

    Raises :class:`~repro.errors.SnapshotError` on any mismatch.
    """
    path = Path(path)
    meta = read_snapshot_meta(path)
    fingerprint = meta["fingerprint"]
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise SnapshotError(
            f"snapshot {path} holds fingerprint {fingerprint}, expected "
            f"{expected_fingerprint}"
        )
    n_rows = meta["n_rows"]
    cards = meta["cards"]
    version = meta["version"]
    columns: list[np.ndarray] = []
    for name, card in zip(meta["columns"], cards):
        try:
            arr = np.load(
                path / name,
                mmap_mode="r" if mmap else None,
                allow_pickle=False,
            )
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot column {path / name} is unreadable: {exc}"
            ) from exc
        expected_dtype = (
            np.dtype(np.int64) if version == 1 else code_dtype_for(card)
        )
        if (
            arr.dtype != expected_dtype
            or arr.ndim != 1
            or arr.shape[0] != n_rows
        ):
            raise SnapshotError(
                f"snapshot column {path / name} has dtype {arr.dtype} and "
                f"shape {arr.shape}; expected {expected_dtype} of shape "
                f"({n_rows},)"
            )
        if n_rows and (int(arr.min()) < 0 or int(arr.max()) >= card):
            raise SnapshotError(
                f"snapshot column {path / name} has codes outside "
                f"[0, {card}); the snapshot is corrupt"
            )
        if arr.dtype != np.int64:
            # The in-memory contract is int64 (ColumnStore.packed_key
            # does mixed-radix arithmetic that would overflow narrow
            # unsigned arrays).  One vectorized widen — still zero-parse.
            arr = arr.astype(np.int64)
        columns.append(arr)
    decoders = [
        [_untag_value(tagged) for tagged in dec] for dec in meta["decoders"]
    ]
    relation = _assemble(
        meta["attributes"],
        columns,
        cards,
        decoders,
        n_rows,
        expected_fingerprint=fingerprint,
        domains=domains,
        lazy=True,
    )
    if verify_content:
        relation._fingerprint = None
        if relation.fingerprint() != fingerprint:
            raise SnapshotError(
                f"snapshot {path} content hashes to "
                f"{relation.fingerprint()}, metadata records {fingerprint}"
            )
    return relation


def quarantine_snapshot(path: str | Path) -> Path | None:
    """Move a poisoned snapshot directory aside into ``quarantine/``.

    Returns the new location, or ``None`` when the move failed (best
    effort — the caller treats the snapshot as missing either way).
    """
    path = Path(path)
    try:
        target_dir = path.parent / "quarantine"
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = target_dir / f"{path.name}.{suffix}"
        path.replace(target)
        return target
    except OSError:
        return None


# ----------------------------------------------------------------------
# Entropy-memo sidecar
# ----------------------------------------------------------------------
def save_engine_memo(snapshot_path: str | Path, engine) -> bool:
    """Spill an engine's entropy memo beside a snapshot (atomic write).

    Returns ``False`` (writing nothing) when the memo is empty.  The
    memo is advisory warm-start state: its loss is a performance event,
    never a correctness one.
    """
    entries = engine.cache_snapshot()
    if not entries:
        return False
    document = {
        "format": MEMO_FORMAT_NAME,
        "version": MEMO_FORMAT_VERSION,
        "entries": [
            [list(key), float(value)] for key, value in entries.items()
        ],
    }
    atomic_write_text(
        Path(snapshot_path) / MEMO_FILE,
        json.dumps(document, sort_keys=True) + "\n",
    )
    return True


def load_engine_memo(snapshot_path: str | Path) -> dict[tuple[str, ...], float]:
    """Read a snapshot's entropy-memo sidecar; ``{}`` when absent.

    Raises :class:`~repro.errors.SnapshotError` when the file exists
    but is corrupt (callers typically discard it and move on).
    """
    memo_path = Path(snapshot_path) / MEMO_FILE
    if not memo_path.exists():
        return {}
    try:
        document = json.loads(memo_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"memo {memo_path} is unreadable: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != MEMO_FORMAT_NAME
        or document.get("version") != MEMO_FORMAT_VERSION
        or not isinstance(document.get("entries"), list)
    ):
        raise SnapshotError(f"memo {memo_path} is malformed")
    out: dict[tuple[str, ...], float] = {}
    for item in document["entries"]:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not isinstance(item[0], list)
            or not all(isinstance(name, str) for name in item[0])
            or isinstance(item[1], bool)
            or not isinstance(item[1], (int, float))
        ):
            raise SnapshotError(f"memo {memo_path} has a malformed entry")
        out[tuple(item[0])] = float(item[1])
    return out


def merge_engine_memo(
    snapshot_path: str | Path, entries: dict[tuple[str, ...], float]
) -> int:
    """Fold ``entries`` into a snapshot's memo sidecar; return new keys.

    This is the front end's half of the cluster memo hand-off: workers
    return the entropy values they computed as a delta, and the
    dispatcher merges each delta into the shared sidecar so the *next*
    process to hydrate the dataset (a respawned worker, a restarted
    server) starts warm.  Existing keys win — entropy values for a
    fixed fingerprint are deterministic, so a conflict can only be a
    duplicate.  A corrupt sidecar is overwritten with the delta alone.
    """
    if not entries:
        return 0
    snapshot_path = Path(snapshot_path)
    if not (snapshot_path / META_FILE).exists():
        return 0
    try:
        merged = load_engine_memo(snapshot_path)
    except SnapshotError:
        merged = {}
    added = 0
    for key, value in entries.items():
        if key not in merged:
            merged[tuple(key)] = float(value)
            added += 1
    if not added:
        return 0
    document = {
        "format": MEMO_FORMAT_NAME,
        "version": MEMO_FORMAT_VERSION,
        "entries": [
            [list(key), float(value)] for key, value in merged.items()
        ],
    }
    atomic_write_text(
        snapshot_path / MEMO_FILE,
        json.dumps(document, sort_keys=True) + "\n",
    )
    return added


# ----------------------------------------------------------------------
# Worker-side hydration
# ----------------------------------------------------------------------
def hydrate_relation(
    *,
    expected_fingerprint: str,
    snapshot_path: str | Path | None = None,
    source: str | None = None,
    chunk_rows: int | None = None,
):
    """Materialize a relation in a worker process: snapshot, then CSV.

    The cluster dispatcher ships *references* (snapshot directory, CSV
    source path) instead of pickled relations; each worker rebuilds the
    dataset locally through the same zero-parse path the registry uses:

    1. the columnar snapshot (mmap + decode-free assembly), with the
       entropy-memo sidecar merged into the resident engine so a
       rehomed dataset starts warm;
    2. the CSV source, re-fingerprinted and rejected on mismatch (a
       mutated source must never silently impersonate the dataset).

    Returns ``(relation, origin)`` with ``origin`` in ``{"snapshot",
    "csv"}``.  Raises :class:`~repro.errors.SnapshotError` when no
    route produces the expected content.
    """
    from repro.info.engine import EntropyEngine
    from repro.relations.io import infer_integer_domains, read_csv
    from repro.relations.relation import Relation

    if snapshot_path is not None:
        snapshot_path = Path(snapshot_path)
        if (snapshot_path / META_FILE).exists():
            try:
                relation = load_snapshot(
                    snapshot_path,
                    expected_fingerprint=expected_fingerprint,
                    domains=True,
                )
            except (SnapshotError, OSError):
                relation = None
            if relation is not None:
                try:
                    memo = load_engine_memo(snapshot_path)
                except SnapshotError:
                    memo = {}
                if memo:
                    EntropyEngine.for_relation(relation).merge_cache(memo)
                return relation, "snapshot"
    if source is not None:
        try:
            loaded = (
                Relation.from_csv_stream(source, chunk_rows=chunk_rows)
                if chunk_rows is not None
                else read_csv(source)
            )
        except OSError as exc:
            raise SnapshotError(
                f"dataset {expected_fingerprint} has no loadable snapshot "
                f"and its source {source!r} is unreadable: {exc}"
            ) from exc
        relation = infer_integer_domains(loaded)
        if relation.fingerprint() != expected_fingerprint:
            raise SnapshotError(
                f"source {source!r} re-ingests to fingerprint "
                f"{relation.fingerprint()}, expected {expected_fingerprint}; "
                "the file mutated since registration"
            )
        return relation, "csv"
    raise SnapshotError(
        f"dataset {expected_fingerprint} cannot be hydrated: no snapshot "
        "directory and no CSV source were provided"
    )

"""Relational algebra substrate: schemas, relation instances, joins.

See :mod:`repro.relations.schema`, :mod:`repro.relations.relation`,
:mod:`repro.relations.join`, :mod:`repro.relations.io` (eager +
streaming CSV), and :mod:`repro.relations.builder` (incremental
columnar ingestion).
"""

from repro.relations.builder import ColumnStoreBuilder, relation_from_chunks
from repro.relations.io import (
    DEFAULT_CHUNK_ROWS,
    CsvChunk,
    iter_csv_chunks,
    sniff_header,
)
from repro.relations.join import (
    acyclic_join_size,
    cartesian_size,
    join_size,
    materialized_acyclic_join,
    natural_join,
    natural_join_all,
    split_join_size,
)
from repro.relations.columns import ColumnStore, GroupIndex
from repro.relations.io import infer_integer_domains, read_csv, write_csv
from repro.relations.persist import (
    atomic_write_text,
    load_snapshot,
    read_snapshot_meta,
    save_snapshot,
)
from repro.relations.relation import Relation
from repro.relations.schema import Attribute, RelationSchema, Row, Value
from repro.relations.semijoin import (
    dangling_counts,
    full_reduce,
    is_globally_consistent,
    projections_for_tree,
    semijoin,
)
from repro.relations.yannakakis import (
    evaluate_acyclic_join,
    evaluate_decomposition,
)

__all__ = [
    "Attribute",
    "ColumnStore",
    "ColumnStoreBuilder",
    "CsvChunk",
    "DEFAULT_CHUNK_ROWS",
    "GroupIndex",
    "Relation",
    "RelationSchema",
    "Row",
    "Value",
    "acyclic_join_size",
    "atomic_write_text",
    "cartesian_size",
    "dangling_counts",
    "evaluate_acyclic_join",
    "evaluate_decomposition",
    "full_reduce",
    "infer_integer_domains",
    "is_globally_consistent",
    "iter_csv_chunks",
    "join_size",
    "load_snapshot",
    "materialized_acyclic_join",
    "natural_join",
    "natural_join_all",
    "projections_for_tree",
    "read_csv",
    "read_snapshot_meta",
    "relation_from_chunks",
    "save_snapshot",
    "semijoin",
    "sniff_header",
    "split_join_size",
    "write_csv",
]

"""Columnar backing store: integer-coded attribute columns for a relation.

A :class:`ColumnStore` factorizes each attribute of a relation exactly once
into a dense ``int64`` *code* array.  Every multiplicity query over an
attribute subset — the workhorse behind ``H(Y)``, CMI, and the J-measure —
then reduces to a mixed-radix pack of the subset's code columns followed by
one :func:`numpy.bincount` / :func:`numpy.unique` call: no Python-level row
iteration or tuple hashing.

Column coding picks the cheapest safe representation:

* **identity** — columns that are already small non-negative integers (the
  library's synthetic convention ``D(X) = [d]``) are used as codes
  directly; no factorization work at all;
* **unique**   — homogeneous numeric or string columns go through
  :func:`numpy.unique` with ``return_inverse``;
* **dict**     — heterogeneous or numpy-unsafe columns (mixed types, NaNs,
  arbitrary hashables) fall back to a first-occurrence dict loop whose
  equality semantics match Python's hash-based containers bit-for-bit
  (``1 == True == 1.0`` collapse, exactly as inside the relation's
  ``frozenset`` of rows).

Group results are cached per attribute-position subset: a counts-only
cache (entropy queries need just multiplicities) and a full
:class:`GroupIndex` cache (group ids + first-occurrence representatives,
used by projection, selection, and join-size message passing).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

import numpy as np

#: Mixed-radix packing stays below this to keep int64 arithmetic exact;
#: when the running radix product would cross it, the partial key is
#: re-compressed with :func:`numpy.unique` (bounding the radix by ``N``).
_MAX_PACK = 1 << 62


def _dense_limit(n: int) -> int:
    """Largest code range we treat as "dense enough" for direct bincount."""
    return max(4 * n, 1024)


class GroupIndex(NamedTuple):
    """Grouping of the relation's rows by one attribute-position subset.

    Attributes
    ----------
    gids:
        ``int64[N]`` — dense group id of each row (ids follow the sorted
        order of the packed keys).
    first_index:
        ``int64[G]`` — for each group, the index (into the store's row
        list) of its first occurrence; used to decode representative rows.
    counts:
        ``int64[G]`` — multiplicity of each group.
    """

    gids: np.ndarray
    first_index: np.ndarray
    counts: np.ndarray


def _encode_column(values: Sequence) -> tuple[np.ndarray, int, object]:
    """Encode one column; return ``(codes, card, decoder)``.

    ``card`` is an exclusive upper bound on the codes (the mixed-radix
    digit base).  ``decoder`` describes how to map values back:

    * ``None``   — identity coding (value *is* the code);
    * ``list``   — ``decoder[code] = value`` (``numpy.unique`` path);
    * ``dict``   — a ready ``value → code`` encoder (dict fallback).
    """
    n = len(values)
    candidate = None
    try:
        arr = np.asarray(values)
        if arr.ndim == 1 and arr.shape[0] == n:
            candidate = arr
    except Exception:
        candidate = None
    if candidate is not None:
        kind = candidate.dtype.kind
        if kind in "iub":
            codes = candidate.astype(np.int64, copy=False)
            if n == 0:
                return codes, 0, None
            lo = int(codes.min())
            hi = int(codes.max())
            if lo >= 0 and hi < _dense_limit(n):
                return codes, hi + 1, None  # identity coding: no unique
            uniques, inverse = np.unique(codes, return_inverse=True)
            return (
                inverse.astype(np.int64, copy=False),
                len(uniques),
                uniques.tolist(),
            )
        if (kind == "f" and not np.isnan(candidate).any()) or (
            kind in "US" and all(type(v) is str for v in values)
        ):
            uniques, inverse = np.unique(candidate, return_inverse=True)
            return (
                inverse.astype(np.int64, copy=False),
                len(uniques),
                uniques.tolist(),
            )

    codes = np.empty(n, dtype=np.int64)
    encoder: dict = {}
    for i, value in enumerate(values):
        code = encoder.get(value)
        if code is None:
            code = len(encoder)
            encoder[value] = code
        codes[i] = code
    return codes, len(encoder), encoder


class ColumnStore:
    """Integer-coded columns plus per-subset grouping caches.

    Built lazily (and exactly once) by
    :meth:`repro.relations.relation.Relation.columns`; immutable
    thereafter, like the relation itself, so cached groupings never need
    invalidation.
    """

    __slots__ = (
        "cards",
        "codes",
        "n_rows",
        "_counts",
        "_decoders",
        "_encoders",
        "_groups",
        "_row_list",
    )

    def __init__(self, row_list: tuple, arity: int) -> None:
        self._row_list = row_list
        self.n_rows = len(row_list)
        columns = list(zip(*row_list)) if row_list else [()] * arity
        codes = []
        cards = []
        decoders = []
        for column in columns:
            col_codes, card, decoder = _encode_column(column)
            codes.append(col_codes)
            cards.append(card)
            decoders.append(decoder)
        self.codes: tuple[np.ndarray, ...] = tuple(codes)
        self.cards: tuple[int, ...] = tuple(cards)
        self._decoders = decoders
        self._encoders: list[dict | None] = [
            d if isinstance(d, dict) else None for d in decoders
        ]
        self._groups: dict[tuple[int, ...], GroupIndex] = {}
        self._counts: dict[tuple[int, ...], np.ndarray] = {}

    @classmethod
    def from_identity_codes(
        cls, row_list: tuple, columns: Sequence[np.ndarray], cards: Sequence[int]
    ) -> "ColumnStore":
        """Seed a store whose columns are already dense non-negative codes.

        Used by :meth:`repro.relations.relation.Relation.from_codes` to
        skip per-column factorization entirely: the arrays are adopted as
        identity-coded columns (``value == code``).
        """
        store = cls.__new__(cls)
        store._row_list = row_list
        store.n_rows = len(row_list)
        store.codes = tuple(columns)
        store.cards = tuple(int(c) for c in cards)
        store._decoders = [None] * len(store.codes)
        store._encoders = [None] * len(store.codes)
        store._groups = {}
        store._counts = {}
        return store

    @classmethod
    def from_coded_columns(
        cls,
        row_list: tuple | None,
        columns: Sequence[np.ndarray],
        cards: Sequence[int],
        decoders: Sequence[list],
    ) -> "ColumnStore":
        """Seed a store from externally dictionary-coded columns.

        Used by :class:`repro.relations.builder.ColumnStoreBuilder` and
        the snapshot loader: the arrays are adopted as dict-coded columns
        whose ``decoders[j]`` lists map each column's codes back to
        values (``decoders[j][code] = value``), so neither factorization
        nor value re-encoding runs again.  ``row_list=None`` defers the
        row-tuple decode until :attr:`row_list` is first read — code-level
        queries (grouping, entropies) never pay for it.
        """
        store = cls.__new__(cls)
        store._row_list = row_list
        store.n_rows = (
            len(row_list)
            if row_list is not None
            else (int(columns[0].shape[0]) if columns else 0)
        )
        store.codes = tuple(columns)
        store.cards = tuple(int(c) for c in cards)
        store._decoders = list(decoders)
        store._encoders = [None] * len(store.codes)
        store._groups = {}
        store._counts = {}
        return store

    @property
    def row_list(self) -> tuple:
        """The decoded row tuples (decoded lazily, once, from the codes)."""
        row_list = self._row_list
        if row_list is None:
            decoded = []
            for codes, decoder in zip(self.codes, self._decoders):
                if decoder is None:  # identity coding: value == code
                    decoded.append(np.asarray(codes).tolist())
                else:
                    dec_arr = np.fromiter(
                        decoder, dtype=object, count=len(decoder)
                    )
                    decoded.append(dec_arr[np.asarray(codes)].tolist())
            row_list = tuple(zip(*decoded)) if self.n_rows else ()
            self._row_list = row_list
        return row_list

    def __len__(self) -> int:
        return self.n_rows

    def encoder(self, position: int) -> dict:
        """``value → code`` mapping for one column (built lazily)."""
        encoder = self._encoders[position]
        if encoder is None:
            decoder = self._decoders[position]
            if decoder is None:  # identity coding: present values are codes
                present = np.unique(self.codes[position]).tolist()
                encoder = {value: value for value in present}
            else:
                encoder = {value: code for code, value in enumerate(decoder)}
            self._encoders[position] = encoder
        return encoder

    def packed_key(self, positions: Sequence[int]) -> np.ndarray:
        """Mixed-radix pack of the code columns at ``positions``.

        Two rows get equal keys iff they agree on all the positions.  The
        running radix is kept below ``2^62`` by re-compressing the partial
        key with :func:`numpy.unique` whenever the next column would
        overflow, so the packing is exact for any ``N`` and cardinalities.
        """
        key = self.codes[positions[0]]
        radix = max(self.cards[positions[0]], 1)
        for position in positions[1:]:
            card = self.cards[position]
            if card <= 1:
                continue  # constant column: contributes nothing
            if radix * card >= _MAX_PACK:
                uniques, key = np.unique(key, return_inverse=True)
                radix = max(len(uniques), 1)
            key = key * card + self.codes[position]
            radix *= card
        return key

    def counts(self, positions: Sequence[int]) -> np.ndarray:
        """Group multiplicities only (the entropy hot path; cached).

        When the subset's radix is dense enough, this is a straight
        :func:`numpy.bincount` over the packed key — cheaper than the
        sorting :func:`numpy.unique` that :meth:`groups` needs for ids
        and representatives.  Count order matches :meth:`groups`.
        """
        cache_key = tuple(positions)
        cached = self._counts.get(cache_key)
        if cached is not None:
            return cached
        group = self._groups.get(cache_key)
        if group is not None:
            self._counts[cache_key] = group.counts
            return group.counts
        n = len(self.row_list)
        radix = 1
        limit = _dense_limit(n)
        for position in cache_key:
            radix *= max(self.cards[position], 1)
            if radix > limit:
                break
        if n and radix <= limit:
            counts = np.bincount(self.packed_key(cache_key))
            counts = counts[counts > 0]
        else:
            counts = self.groups(cache_key).counts
        counts.flags.writeable = False  # shared cached array
        self._counts[cache_key] = counts
        return counts

    def groups(self, positions: Sequence[int]) -> GroupIndex:
        """Group rows by the attribute subset at ``positions`` (cached)."""
        cache_key = tuple(positions)
        cached = self._groups.get(cache_key)
        if cached is not None:
            return cached
        key = self.packed_key(cache_key)
        _, first_index, gids, counts = np.unique(
            key, return_index=True, return_inverse=True, return_counts=True
        )
        result = GroupIndex(
            gids=gids.astype(np.int64, copy=False),
            first_index=first_index.astype(np.int64, copy=False),
            counts=counts.astype(np.int64, copy=False),
        )
        self._groups[cache_key] = result
        return result

    def clear_cache(self) -> None:
        """Drop cached groupings (codes and encoders are kept)."""
        self._groups.clear()
        self._counts.clear()

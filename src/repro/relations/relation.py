"""Relation instances: immutable sets of tuples over a schema.

A :class:`Relation` models the paper's relation instance ``R ∈ Rel(Ω)``: a
finite *set* of tuples (no duplicates).  Projections return relations
(sets), but multiplicity information — how many tuples of ``R`` project to
each value — is exposed via :meth:`Relation.projection_counts`, which is the
workhorse for all empirical-entropy computations.

Internally a relation lazily materializes a **columnar store**
(:class:`repro.relations.columns.ColumnStore`): each attribute is
factorized once into a dense ``int64`` code array, after which every
multiplicity query over any attribute subset (``projection_counts``,
:meth:`Relation.projection_count_values`, :meth:`Relation.projection_size`,
:meth:`Relation.project`, :meth:`Relation.select_eq`) is a vectorized
mixed-radix pack + ``numpy.unique`` — no per-row Python iteration.  The
tuple-based API (:meth:`rows`, set operations, iteration) is unchanged and
remains the source of truth; columns are derived from it and cached for
the relation's lifetime (relations are immutable, so the cache never
needs invalidation).
"""

from __future__ import annotations

import hashlib
import operator
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError, SnapshotError, UnknownAttributeError
from repro.relations.columns import ColumnStore, _dense_limit
from repro.relations.schema import RelationSchema, Row, Value


def _distinct_row_indices(arr, cards) -> "np.ndarray | None":
    """First-occurrence indices of the distinct rows of an int code array.

    Returns ``None`` when the mixed-radix key would overflow int64 (the
    caller then falls back to hash-based dedup).
    """
    radix = 1
    for card in cards:
        radix *= max(card, 1)
        if radix >= 1 << 62:
            return None
    key = arr[:, 0]
    for j in range(1, arr.shape[1]):
        key = key * max(cards[j], 1) + arr[:, j]
    _, idx = np.unique(key, return_index=True)
    idx.sort()
    return idx


class Relation:
    """An immutable relation instance over a :class:`RelationSchema`.

    Duplicate input rows are collapsed (a relation is a set); use
    :func:`len` for ``N = |R|``.

    Parameters
    ----------
    schema:
        The relation's schema.
    rows:
        Iterable of tuples, each validated against the schema.
    validate:
        If ``False``, skip per-row domain validation (rows are still
        tuple-ified and deduplicated).  Use for trusted internal callers on
        hot paths such as samplers.

    Examples
    --------
    >>> schema = RelationSchema.from_names(["A", "B"])
    >>> r = Relation(schema, [(1, "x"), (2, "y"), (1, "x")])
    >>> len(r)
    2
    >>> sorted(r.project(["A"]).rows())
    [(1,), (2,)]
    """

    __slots__ = (
        "_engine",
        "_eval",
        "_fingerprint",
        "_row_cache",
        "_schema",
        "_store",
    )

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Value]],
        *,
        validate: bool = True,
    ) -> None:
        self._schema = schema
        if validate:
            self._rows: frozenset[Row] = frozenset(
                schema.validate_row(row) for row in rows
            )
        else:
            self._rows = frozenset(tuple(row) for row in rows)
        # Lazily-built caches (the relation itself is immutable): the
        # columnar store, the memoizing entropy engine bound to it, and
        # the evaluation context memoizing join sizes on top of both.
        self._store: ColumnStore | None = None
        self._engine = None
        self._eval = None
        self._fingerprint: str | None = None

    @property
    def _rows(self) -> frozenset:
        """The row set, decoded lazily for snapshot-loaded relations.

        A relation loaded from a columnar snapshot carries only its coded
        store (``_row_cache is None``); the Python row tuples are decoded
        on first tuple-level access, so store-level queries (entropies,
        groupings) never pay for them.
        """
        rows = self._row_cache
        if rows is None:
            row_list = self._store.row_list
            rows = frozenset(row_list)
            if len(rows) != len(row_list):
                raise SnapshotError(
                    f"decoded rows are not pairwise distinct ({len(rows)} "
                    f"of {len(row_list)}); the snapshot is corrupt"
                )
            self._row_cache = rows
        return rows

    @_rows.setter
    def _rows(self, rows: "frozenset | None") -> None:
        self._row_cache = rows

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_named_rows(
        cls, schema: RelationSchema, rows: Iterable[dict[str, Value]]
    ) -> "Relation":
        """Build a relation from dict rows keyed by attribute name."""
        names = schema.names
        return cls(schema, (tuple(row[n] for n in names) for row in rows))

    @classmethod
    def from_codes(
        cls,
        schema: RelationSchema,
        codes,
        *,
        distinct: bool = False,
    ) -> "Relation":
        """Vectorized construction from a non-negative integer array.

        ``codes`` is an ``(N, arity)`` array-like of small non-negative
        integers (the library's synthetic convention ``D(X) = [d]``).
        Rows are materialized via one ``tolist`` pass and the columnar
        store is seeded directly from the array columns — no per-value
        Python conversion and no re-factorization.  Pass
        ``distinct=True`` when the rows are known to be pairwise distinct
        (e.g. sampled without replacement) to skip the vectorized dedup.

        Domain validation is skipped (as with ``validate=False``); callers
        are trusted to supply in-domain codes.
        """
        arr = np.asarray(codes, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != schema.arity:
            raise SchemaError(
                f"from_codes needs an (N, {schema.arity}) array, got shape "
                f"{getattr(arr, 'shape', None)}"
            )
        if arr.size and int(arr.min()) < 0:
            raise SchemaError("from_codes needs non-negative integer codes")
        n = arr.shape[0]
        cards = (
            [int(arr[:, j].max()) + 1 for j in range(arr.shape[1])]
            if n
            else [0] * arr.shape[1]
        )
        if not distinct and n > 1:
            keep = _distinct_row_indices(arr, cards)
            if keep is not None:
                if len(keep) != n:
                    arr = arr[keep]
                    n = arr.shape[0]
            else:  # radix overflow: let frozenset dedup below
                distinct_rows = frozenset(map(tuple, arr.tolist()))
                return cls(schema, distinct_rows, validate=False)
        row_list = tuple(map(tuple, arr.tolist()))
        rows = frozenset(row_list)
        if len(rows) != n:  # caller lied about distinctness: rebuild safely
            return cls(schema, rows, validate=False)
        relation = cls.__new__(cls)
        relation._schema = schema
        relation._rows = rows
        relation._engine = None
        relation._eval = None
        relation._fingerprint = None
        if n and max(cards) < _dense_limit(n):
            relation._store = ColumnStore.from_identity_codes(
                row_list,
                [np.ascontiguousarray(arr[:, j]) for j in range(arr.shape[1])],
                cards,
            )
        else:
            relation._store = None  # lazily re-factorized on demand
        return relation

    @classmethod
    def from_csv(
        cls,
        path,
        *,
        typed: bool = True,
        delimiter: str = ",",
    ) -> "Relation":
        """Eagerly load a relation from a CSV file (header row = schema).

        Thin alias of :func:`repro.relations.io.read_csv`, provided for
        symmetry with :meth:`from_csv_stream`.
        """
        from repro.relations.io import read_csv

        return read_csv(path, typed=typed, delimiter=delimiter)

    @classmethod
    def from_csv_stream(
        cls,
        path,
        *,
        chunk_rows: int | None = None,
        typed: bool = True,
        delimiter: str = ",",
    ) -> "Relation":
        """Stream a CSV file into a relation with bounded ingestion memory.

        Reads the file in chunks of ``chunk_rows`` data rows
        (:func:`repro.relations.io.iter_csv_chunks`) and dictionary-codes
        each chunk into an incremental
        :class:`~repro.relations.builder.ColumnStoreBuilder`, so peak
        memory during ingestion is one chunk of raw values plus the
        accumulated ``int64`` codes — never the whole file's Python
        tuples.  The result is equal to ``read_csv(path)`` (same schema,
        same row set, same coercion) for **every** chunk size, and its
        columnar store is pre-seeded from the streamed codes.
        """
        from repro.relations.builder import ColumnStoreBuilder
        from repro.relations.io import DEFAULT_CHUNK_ROWS, iter_csv_chunks

        if chunk_rows is None:
            chunk_rows = DEFAULT_CHUNK_ROWS
        builder: ColumnStoreBuilder | None = None
        schema: RelationSchema | None = None
        for chunk in iter_csv_chunks(
            path, chunk_rows=chunk_rows, typed=typed, delimiter=delimiter
        ):
            if builder is None:
                # Validate the schema before ingesting data, so a bad
                # header fails fast instead of after gigabytes of rows.
                schema = RelationSchema.from_names(chunk.header)
                builder = ColumnStoreBuilder(schema.arity)
            builder.add_rows(chunk.rows)
        assert builder is not None and schema is not None  # >= 1 chunk always
        return builder.finish(schema)

    @classmethod
    def load_snapshot(
        cls,
        path,
        *,
        mmap: bool = True,
        expected_fingerprint: str | None = None,
        verify_content: bool = False,
        domains: bool = False,
    ) -> "Relation":
        """Load a relation from an on-disk columnar snapshot — zero parsing.

        The snapshot's ``int64`` code arrays are memory-mapped (or copied
        with ``mmap=False``) and adopted via the
        :meth:`ColumnStore.from_coded_columns` zero-factorization path,
        so the result is immediately query-ready and bit-identical to
        the saved relation.  See :func:`repro.relations.persist.load_snapshot`
        for the verification knobs; raises
        :class:`~repro.errors.SnapshotError` on anything untrustworthy.
        """
        from repro.relations.persist import load_snapshot

        return load_snapshot(
            path,
            mmap=mmap,
            expected_fingerprint=expected_fingerprint,
            verify_content=verify_content,
            domains=domains,
        )

    def save_snapshot(self, path, *, source: str | None = None) -> "Path":
        """Persist this relation as a verified columnar snapshot directory.

        Written with fsync-before-atomic-rename discipline and verified
        to round-trip bit-identically (same fingerprint) before being
        published; raises :class:`~repro.errors.SnapshotError` — writing
        nothing — for relations whose values cannot be represented
        faithfully.  See :mod:`repro.relations.persist`.
        """
        from repro.relations.persist import save_snapshot

        return save_snapshot(self, path, source=source)

    @classmethod
    def empty(cls, schema: RelationSchema) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(schema, [])

    @classmethod
    def full(cls, schema: RelationSchema) -> "Relation":
        """The full product relation ``D(X₁) × … × D(X_n)``.

        Every attribute must have a declared domain.  Intended for small
        schemas (tests and examples); the size is the product of domain
        sizes.
        """
        import itertools

        domains = []
        for attr in schema.attributes:
            if attr.domain is None:
                raise SchemaError(
                    f"attribute {attr.name!r} has no declared domain; "
                    "Relation.full needs finite domains"
                )
            domains.append(sorted(attr.domain, key=repr))
        return cls(schema, itertools.product(*domains), validate=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation's schema."""
        return self._schema

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return self._schema.names

    def rows(self) -> frozenset[Row]:
        """The underlying set of tuples."""
        return self._rows

    def __len__(self) -> int:
        if self._row_cache is None:
            return self._store.n_rows  # lazy snapshot load: no decode
        return len(self._row_cache)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema.names == other._schema.names and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema.names, self._rows))

    def __repr__(self) -> str:
        return f"Relation({list(self._schema.names)}, N={len(self)})"

    def is_empty(self) -> bool:
        """Whether the relation has no tuples."""
        return len(self) == 0

    # ------------------------------------------------------------------
    # Columnar backend
    # ------------------------------------------------------------------
    def columns(self) -> ColumnStore:
        """The relation's columnar store (built lazily, once).

        Each attribute is factorized into a dense ``int64`` code array;
        multiplicity queries over attribute subsets are answered by
        mixed-radix packing + ``numpy.unique`` and cached per subset.
        Advanced API — most callers want :meth:`projection_counts`,
        :meth:`projection_count_values`, or
        :class:`repro.info.engine.EntropyEngine`.
        """
        store = self._store
        if store is None:
            store = ColumnStore(tuple(self._rows), self._schema.arity)
            self._store = store
        return store

    def _group_index(self, names: Iterable[str]):
        """Canonicalize ``names`` and group rows by them (columnar)."""
        ordered = self._schema.canonical_order(names)
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        positions = self._schema.indices(ordered)
        return ordered, positions, self.columns().groups(positions)

    # ------------------------------------------------------------------
    # Relational algebra
    # ------------------------------------------------------------------
    def _getter(self, names: Sequence[str]) -> Callable[[Row], Row]:
        """Return a function extracting ``names`` positions from a row."""
        idx = self._schema.indices(names)
        if len(idx) == 1:
            single = idx[0]
            return lambda row: (row[single],)
        getter = operator.itemgetter(*idx)
        return lambda row: getter(row)

    def project(self, names: Iterable[str]) -> "Relation":
        """Projection ``R[Y]`` onto the attribute *set* ``names``.

        The output schema orders attributes canonically (by their position
        in this relation's schema), so projections onto equal sets are
        equal relations.  Computed columnar: one group-by over the code
        columns, then only the ``G`` distinct representatives are
        materialized as tuples (instead of re-hashing all ``N`` rows).
        """
        ordered = self._schema.canonical_order(names)
        if ordered == self._schema.names:
            return self
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        if self._store is None and len(self._rows) < 64:
            # Tiny one-shot relation: a plain scan beats building columns.
            getter = self._getter(ordered)
            return Relation(
                self._schema.project(ordered),
                {getter(row) for row in self._rows},
                validate=False,
            )
        positions = self._schema.indices(ordered)
        group = self.columns().groups(positions)
        row_list = self.columns().row_list
        if len(positions) == 1:
            single = positions[0]
            out_rows = [(row_list[i][single],) for i in group.first_index.tolist()]
        else:
            out_rows = [
                tuple(row_list[i][p] for p in positions)
                for i in group.first_index.tolist()
            ]
        return Relation(self._schema.project(ordered), out_rows, validate=False)

    def projection_counts(self, names: Iterable[str]) -> Counter[Row]:
        """Multiplicities of projected values: ``value -> |R(Y=value)|``.

        This is the empirical-distribution workhorse: the marginal
        probability of ``y`` is ``counts[y] / N`` (Section 2.2 of the
        paper).  Computed from the columnar store: grouping is one
        vectorized ``numpy.unique`` over packed code columns; only the
        distinct groups are decoded back into value tuples.
        """
        ordered, positions, group = self._group_index(names)
        row_list = self.columns().row_list
        counts = group.counts.tolist()
        first = group.first_index.tolist()
        if len(positions) == 1:
            single = positions[0]
            keys = [(row_list[i][single],) for i in first]
        elif ordered == self._schema.names:
            keys = [row_list[i] for i in first]
        else:
            keys = [tuple(row_list[i][p] for p in positions) for i in first]
        return Counter(dict(zip(keys, counts)))

    def projection_counts_naive(self, names: Iterable[str]) -> Counter[Row]:
        """Reference implementation of :meth:`projection_counts`.

        Row-at-a-time Counter loop, kept as the independently-checkable
        legacy path; property tests assert the columnar path matches it
        bit-for-bit.
        """
        ordered = self._schema.canonical_order(names)
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        getter = self._getter(ordered)
        return Counter(getter(row) for row in self._rows)

    def projection_count_values(self, names: Iterable[str]) -> np.ndarray:
        """Multiplicities of the projection onto ``names`` — counts only.

        Returns the ``int64`` count vector (one entry per distinct
        projected value, in packed-key order) without decoding the value
        tuples.  This is the entropy hot path: ``H(Y)`` needs only the
        multiplicities, never the values.
        """
        ordered = self._schema.canonical_order(names)
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        return self.columns().counts(self._schema.indices(ordered))

    def projection_size(self, names: Iterable[str]) -> int:
        """``|Π_names(R)|`` — number of distinct projected values.

        Equivalent to ``len(self.project(names))`` without materializing
        the projection.
        """
        return len(self.projection_count_values(names))

    def select(
        self,
        predicate: Callable[[dict[str, Value]], bool],
        *,
        attrs: Iterable[str] | None = None,
    ) -> "Relation":
        """Selection by an arbitrary predicate over named values.

        Parameters
        ----------
        predicate:
            Called with a ``{name: value}`` dict per row; rows where it
            returns truthy are kept.
        attrs:
            Fast path: when given, the per-row dict contains only these
            attributes (the ones the predicate actually reads), which
            skips materializing the full-width dict for wide schemas.
            For single-attribute equality use the vectorized
            :meth:`select_eq` instead.
        """
        if attrs is None:
            names = self._schema.names
            kept = [
                row for row in self._rows if predicate(dict(zip(names, row)))
            ]
        else:
            ordered = self._schema.canonical_order(attrs)
            if not ordered:
                raise UnknownAttributeError("selection over an empty attribute set")
            positions = self._schema.indices(ordered)
            pairs = tuple(zip(ordered, positions))
            kept = [
                row
                for row in self._rows
                if predicate({name: row[p] for name, p in pairs})
            ]
        return Relation(self._schema, kept, validate=False)

    def select_eq(self, name: str, value: Value) -> "Relation":
        """Selection ``σ_{name=value}(R)`` (the paper's ``R_ℓ = σ_{C=ℓ}R``).

        Vectorized via the code columns: the value is looked up in the
        attribute's encoder and the matching rows come from one boolean
        mask over the ``int64`` codes.  Tiny relations without a built
        store use a plain scan (building columns would cost more).
        """
        pos = self._schema.index(name)
        if self._store is None and len(self._rows) < 64:
            return Relation(
                self._schema,
                [row for row in self._rows if row[pos] == value],
                validate=False,
            )
        store = self.columns()
        try:
            code = store.encoder(pos).get(value)
        except TypeError:  # unhashable probe (e.g. a set): scan with ==
            return Relation(
                self._schema,
                [row for row in self._rows if row[pos] == value],
                validate=False,
            )
        if code is None:
            return Relation(self._schema, (), validate=False)
        row_list = store.row_list
        kept = [
            row_list[i]
            for i in np.flatnonzero(store.codes[pos] == code).tolist()
        ]
        return Relation(self._schema, kept, validate=False)

    def reorder(self, names: Sequence[str]) -> "Relation":
        """Permute columns into exactly the given order.

        ``names`` must be a permutation of the schema's attribute names.
        Unlike :meth:`project`, the requested order is honored verbatim —
        used to align relations with different schema layouts over the
        same attribute set.
        """
        ordered = tuple(names)
        if set(ordered) != set(self._schema.names) or len(ordered) != self._schema.arity:
            raise SchemaError(
                f"reorder needs a permutation of {list(self._schema.names)}, "
                f"got {list(ordered)}"
            )
        if ordered == self._schema.names:
            return self
        idx = self._schema.indices(ordered)
        return Relation(
            self._schema.project(ordered),
            ((tuple(row[i] for i in idx)) for row in self._rows),
            validate=False,
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (old → new)."""
        from repro.relations.schema import Attribute

        new_attrs = []
        for attr in self._schema.attributes:
            new_name = mapping.get(attr.name, attr.name)
            new_attrs.append(Attribute(new_name, attr.domain))
        return Relation(RelationSchema(new_attrs), self._rows, validate=False)

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must have identical attribute names/order."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows | other._rows, validate=False)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``R \\ S``; schemas must match."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows - other._rows, validate=False)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; schemas must match."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows & other._rows, validate=False)

    def _require_compatible(self, other: "Relation") -> None:
        if self._schema.names != other._schema.names:
            raise SchemaError(
                "set operation needs identical schemas: "
                f"{list(self._schema.names)} vs {list(other._schema.names)}"
            )

    def extended_with(self, rows: Iterable[Row]) -> "Relation":
        """A new relation holding this relation's rows plus ``rows``.

        The delta-ingest path: unlike :meth:`union` (which unions row
        *sets* and re-factorizes columns lazily), this seeds a
        :class:`~repro.relations.builder.ColumnStoreBuilder` with the
        resident columnar store and dictionary-codes only the appended
        rows, so the result's store extends the existing coding
        in place of a from-scratch rebuild.  The result equals — rows,
        columnar content, and :meth:`fingerprint` — an eager ingest of
        the concatenated rows, for any split of the data into appends
        (pinned by the property tests in ``tests/test_service_append.py``).

        The result's schema keeps this relation's attribute *names* but
        drops declared domains (appended values may extend them); apply
        :func:`repro.relations.io.infer_integer_domains` to re-derive
        them.  ``self`` is untouched — relations stay immutable; live
        engines and caches keyed on ``self`` remain valid for ``self``.
        """
        from repro.relations.builder import ColumnStoreBuilder

        builder = ColumnStoreBuilder.from_relation(self)
        builder.add_rows(rows)
        return builder.finish(RelationSchema.from_names(self._schema.names))

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable content fingerprint of this relation instance.

        The fingerprint is a 32-hex-digit hash over the schema's attribute
        names (in order) and the *set* of rows.  Two relations have equal
        fingerprints iff they have the same attribute names in the same
        order and the same rows — regardless of

        * **ingestion path**: eager ``read_csv`` and streamed
          ``from_csv_stream`` of one CSV agree for every chunk size;
        * **row iteration order**: per-row digests are *sorted* before
          the final hash, so the hash-seed-dependent ``frozenset`` order
          (and ``PYTHONHASHSEED``) never leaks in — and unlike an
          additive digest combiner, a collision still requires breaking
          the underlying hash;
        * **process**: the value is reproducible across interpreter runs,
          so it can key an on-disk result cache that stays warm over
          service restarts.

        Declared attribute domains are *not* hashed (they are derived
        metadata; ``infer_integer_domains`` does not change the content).
        The value is computed once and cached on the relation.

        Examples
        --------
        >>> schema = RelationSchema.from_names(["A", "B"])
        >>> a = Relation(schema, [(1, "x"), (2, "y")])
        >>> b = Relation(schema, [(2, "y"), (1, "x")])
        >>> a.fingerprint() == b.fingerprint()
        True
        """
        fp = self._fingerprint
        if fp is None:
            combined = hashlib.blake2b(digest_size=16)
            combined.update(
                hashlib.blake2b(
                    "\x1f".join(self._schema.names).encode("utf-8"),
                    digest_size=16,
                ).digest()
            )
            combined.update(len(self._rows).to_bytes(8, "big"))
            for digest in sorted(
                hashlib.blake2b(
                    repr(row).encode("utf-8"), digest_size=16
                ).digest()
                for row in self._rows
            ):
                combined.update(digest)
            fp = combined.hexdigest()
            self._fingerprint = fp
        return fp

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def active_domain(self, name: str) -> frozenset[Value]:
        """Values of ``name`` actually present in the relation.

        Always scans the rows so the *original* stored values are
        returned (the columnar encoders canonicalize numerically-equal
        values, e.g. ``True`` → ``1``, which would change labels).
        """
        pos = self._schema.index(name)
        return frozenset(row[pos] for row in self._rows)

    def active_domain_size(self, name: str) -> int:
        """``|Π_name(R)|`` — the paper's ``d_A``-style quantity."""
        return self.projection_size((name,))

    def group_sizes(self, names: Iterable[str]) -> dict[Row, int]:
        """Alias of :meth:`projection_counts` returning a plain dict."""
        return dict(self.projection_counts(names))

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (for display and tests)."""
        return sorted(self._rows, key=repr)

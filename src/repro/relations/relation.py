"""Relation instances: immutable sets of tuples over a schema.

A :class:`Relation` models the paper's relation instance ``R ∈ Rel(Ω)``: a
finite *set* of tuples (no duplicates).  Projections return relations
(sets), but multiplicity information — how many tuples of ``R`` project to
each value — is exposed via :meth:`Relation.projection_counts`, which is the
workhorse for all empirical-entropy computations.
"""

from __future__ import annotations

import operator
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError, UnknownAttributeError
from repro.relations.schema import RelationSchema, Row, Value


class Relation:
    """An immutable relation instance over a :class:`RelationSchema`.

    Duplicate input rows are collapsed (a relation is a set); use
    :func:`len` for ``N = |R|``.

    Parameters
    ----------
    schema:
        The relation's schema.
    rows:
        Iterable of tuples, each validated against the schema.
    validate:
        If ``False``, skip per-row domain validation (rows are still
        tuple-ified and deduplicated).  Use for trusted internal callers on
        hot paths such as samplers.

    Examples
    --------
    >>> schema = RelationSchema.from_names(["A", "B"])
    >>> r = Relation(schema, [(1, "x"), (2, "y"), (1, "x")])
    >>> len(r)
    2
    >>> sorted(r.project(["A"]).rows())
    [(1,), (2,)]
    """

    __slots__ = ("_rows", "_schema")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Value]],
        *,
        validate: bool = True,
    ) -> None:
        self._schema = schema
        if validate:
            self._rows: frozenset[Row] = frozenset(
                schema.validate_row(row) for row in rows
            )
        else:
            self._rows = frozenset(tuple(row) for row in rows)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_named_rows(
        cls, schema: RelationSchema, rows: Iterable[dict[str, Value]]
    ) -> "Relation":
        """Build a relation from dict rows keyed by attribute name."""
        names = schema.names
        return cls(schema, (tuple(row[n] for n in names) for row in rows))

    @classmethod
    def empty(cls, schema: RelationSchema) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(schema, [])

    @classmethod
    def full(cls, schema: RelationSchema) -> "Relation":
        """The full product relation ``D(X₁) × … × D(X_n)``.

        Every attribute must have a declared domain.  Intended for small
        schemas (tests and examples); the size is the product of domain
        sizes.
        """
        import itertools

        domains = []
        for attr in schema.attributes:
            if attr.domain is None:
                raise SchemaError(
                    f"attribute {attr.name!r} has no declared domain; "
                    "Relation.full needs finite domains"
                )
            domains.append(sorted(attr.domain, key=repr))
        return cls(schema, itertools.product(*domains), validate=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation's schema."""
        return self._schema

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return self._schema.names

    def rows(self) -> frozenset[Row]:
        """The underlying set of tuples."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema.names == other._schema.names and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema.names, self._rows))

    def __repr__(self) -> str:
        return f"Relation({list(self._schema.names)}, N={len(self._rows)})"

    def is_empty(self) -> bool:
        """Whether the relation has no tuples."""
        return not self._rows

    # ------------------------------------------------------------------
    # Relational algebra
    # ------------------------------------------------------------------
    def _getter(self, names: Sequence[str]) -> Callable[[Row], Row]:
        """Return a function extracting ``names`` positions from a row."""
        idx = self._schema.indices(names)
        if len(idx) == 1:
            single = idx[0]
            return lambda row: (row[single],)
        getter = operator.itemgetter(*idx)
        return lambda row: getter(row)

    def project(self, names: Iterable[str]) -> "Relation":
        """Projection ``R[Y]`` onto the attribute *set* ``names``.

        The output schema orders attributes canonically (by their position
        in this relation's schema), so projections onto equal sets are
        equal relations.
        """
        ordered = self._schema.canonical_order(names)
        if ordered == self._schema.names:
            return self
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        getter = self._getter(ordered)
        return Relation(
            self._schema.project(ordered),
            {getter(row) for row in self._rows},
            validate=False,
        )

    def projection_counts(self, names: Iterable[str]) -> Counter[Row]:
        """Multiplicities of projected values: ``value -> |R(Y=value)|``.

        This is the empirical-distribution workhorse: the marginal
        probability of ``y`` is ``counts[y] / N`` (Section 2.2 of the
        paper).
        """
        ordered = self._schema.canonical_order(names)
        if not ordered:
            raise UnknownAttributeError("projection onto the empty attribute set")
        getter = self._getter(ordered)
        return Counter(getter(row) for row in self._rows)

    def select(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Selection by an arbitrary predicate over named values."""
        names = self._schema.names
        kept = [
            row for row in self._rows if predicate(dict(zip(names, row)))
        ]
        return Relation(self._schema, kept, validate=False)

    def select_eq(self, name: str, value: Value) -> "Relation":
        """Selection ``σ_{name=value}(R)`` (the paper's ``R_ℓ = σ_{C=ℓ}R``)."""
        pos = self._schema.index(name)
        return Relation(
            self._schema,
            [row for row in self._rows if row[pos] == value],
            validate=False,
        )

    def reorder(self, names: Sequence[str]) -> "Relation":
        """Permute columns into exactly the given order.

        ``names`` must be a permutation of the schema's attribute names.
        Unlike :meth:`project`, the requested order is honored verbatim —
        used to align relations with different schema layouts over the
        same attribute set.
        """
        ordered = tuple(names)
        if set(ordered) != set(self._schema.names) or len(ordered) != self._schema.arity:
            raise SchemaError(
                f"reorder needs a permutation of {list(self._schema.names)}, "
                f"got {list(ordered)}"
            )
        if ordered == self._schema.names:
            return self
        idx = self._schema.indices(ordered)
        return Relation(
            self._schema.project(ordered),
            ((tuple(row[i] for i in idx)) for row in self._rows),
            validate=False,
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (old → new)."""
        from repro.relations.schema import Attribute

        new_attrs = []
        for attr in self._schema.attributes:
            new_name = mapping.get(attr.name, attr.name)
            new_attrs.append(Attribute(new_name, attr.domain))
        return Relation(RelationSchema(new_attrs), self._rows, validate=False)

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must have identical attribute names/order."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows | other._rows, validate=False)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``R \\ S``; schemas must match."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows - other._rows, validate=False)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; schemas must match."""
        self._require_compatible(other)
        return Relation(self._schema, self._rows & other._rows, validate=False)

    def _require_compatible(self, other: "Relation") -> None:
        if self._schema.names != other._schema.names:
            raise SchemaError(
                "set operation needs identical schemas: "
                f"{list(self._schema.names)} vs {list(other._schema.names)}"
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def active_domain(self, name: str) -> frozenset[Value]:
        """Values of ``name`` actually present in the relation."""
        pos = self._schema.index(name)
        return frozenset(row[pos] for row in self._rows)

    def active_domain_size(self, name: str) -> int:
        """``|Π_name(R)|`` — the paper's ``d_A``-style quantity."""
        return len(self.active_domain(name))

    def group_sizes(self, names: Iterable[str]) -> dict[Row, int]:
        """Alias of :meth:`projection_counts` returning a plain dict."""
        return dict(self.projection_counts(names))

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (for display and tests)."""
        return sorted(self._rows, key=repr)

"""Relation schemas: ordered attribute names with optional finite domains.

A :class:`RelationSchema` is the type of a relation instance: an ordered
sequence of distinct attribute names, each optionally carrying a finite
domain.  Domains matter for the paper's random relation model
(Definition 5.2), where the domain sizes ``d_i`` enter every bound, and for
validating tuples on construction.

The paper writes ``Ω = {X₁, …, X_n}`` for the attribute set; here attribute
names are plain strings and ``Ω`` maps to a schema or a frozenset of names
depending on context (join-tree bags are frozensets of names).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DomainError, SchemaError, UnknownAttributeError

#: Values stored in relation tuples.  Kept deliberately loose: the library
#: only requires hashability (tuples live in sets and dict keys).
Value = Any

#: A database tuple: one value per schema attribute, in schema order.
Row = tuple[Value, ...]

#: Shared instances for :meth:`RelationSchema.integer_domains` (bounded).
_INTEGER_SCHEMA_CACHE: dict = {}


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an optional finite domain.

    Parameters
    ----------
    name:
        Attribute name; must be non-empty.
    domain:
        Optional finite domain.  ``None`` means "unconstrained": any
        hashable value is accepted and the active domain (the set of values
        actually present) is used where a domain is needed.
    """

    name: str
    domain: frozenset[Value] | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")
        if not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be str, got {type(self.name).__name__}")
        if self.domain is not None and not isinstance(self.domain, frozenset):
            object.__setattr__(self, "domain", frozenset(self.domain))
        if self.domain is not None and len(self.domain) == 0:
            raise SchemaError(f"attribute {self.name!r} has an empty domain")

    @property
    def domain_size(self) -> int | None:
        """Size of the declared domain, or ``None`` if unconstrained."""
        return None if self.domain is None else len(self.domain)

    def validate(self, value: Value) -> None:
        """Raise :class:`DomainError` if ``value`` is outside the domain."""
        if self.domain is not None and value not in self.domain:
            raise DomainError(
                f"value {value!r} not in domain of attribute {self.name!r}"
            )

    def __repr__(self) -> str:
        if self.domain is None:
            return f"Attribute({self.name!r})"
        return f"Attribute({self.name!r}, |domain|={len(self.domain)})"


class RelationSchema:
    """An ordered sequence of distinct attributes.

    The schema is immutable.  Attribute order defines tuple layout; all
    set-like operations (projection targets, bags) use attribute *names*.

    Examples
    --------
    >>> schema = RelationSchema.from_names(["A", "B", "C"])
    >>> schema.names
    ('A', 'B', 'C')
    >>> schema.index("B")
    1
    """

    __slots__ = ("_attributes", "_index", "_name_set", "_names")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a relation schema needs at least one attribute")
        names = tuple(a.name for a in attrs)
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        self._attributes: tuple[Attribute, ...] = attrs
        self._names: tuple[str, ...] = names
        self._index: dict[str, int] = {name: i for i, name in enumerate(names)}
        self._name_set: frozenset[str] = frozenset(names)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_names(cls, names: Sequence[str]) -> "RelationSchema":
        """Build a schema of unconstrained attributes from plain names."""
        return cls(Attribute(name) for name in names)

    @classmethod
    def from_domains(cls, domains: Mapping[str, Iterable[Value]]) -> "RelationSchema":
        """Build a schema from a mapping ``name -> finite domain``.

        Iteration order of the mapping fixes attribute order (Python dicts
        preserve insertion order).
        """
        return cls(
            Attribute(name, frozenset(domain)) for name, domain in domains.items()
        )

    @classmethod
    def integer_domains(cls, sizes: Mapping[str, int]) -> "RelationSchema":
        """Build a schema where attribute ``X`` has domain ``{0, …, d−1}``.

        This matches the paper's convention ``D(X_i) = [d_i]`` (we use
        0-based values; only the *size* matters for every bound).  Schemas
        are immutable, so repeated requests for the same sizes (samplers
        in experiment loops) return one shared cached instance.
        """
        for name, size in sizes.items():
            if size <= 0:
                raise SchemaError(f"domain size for {name!r} must be positive, got {size}")
        key = tuple(sizes.items())
        cached = _INTEGER_SCHEMA_CACHE.get(key)
        if cached is None:
            cached = cls(
                Attribute(name, frozenset(range(size)))
                for name, size in sizes.items()
            )
            if len(_INTEGER_SCHEMA_CACHE) >= 512:
                _INTEGER_SCHEMA_CACHE.clear()
            _INTEGER_SCHEMA_CACHE[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes in schema order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return self._names

    @property
    def name_set(self) -> frozenset[str]:
        """Attribute names as a frozenset (the paper's ``Ω``; cached)."""
        return self._name_set

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._names)

    def index(self, name: str) -> int:
        """Position of attribute ``name`` in tuple layout."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(
                f"unknown attribute {name!r}; schema has {list(self._names)}"
            ) from None

    def indices(self, names: Iterable[str]) -> tuple[int, ...]:
        """Positions of several attributes, in the order given."""
        return tuple(self.index(n) for n in names)

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` object for ``name``."""
        return self._attributes[self.index(name)]

    def domain_size(self, name: str) -> int | None:
        """Declared domain size of ``name`` (``None`` if unconstrained)."""
        return self.attribute(name).domain_size

    def total_domain_size(self) -> int | None:
        """``∏ᵢ dᵢ``, the size of the full product domain.

        Returns ``None`` if any attribute is unconstrained.
        """
        total = 1
        for attr in self._attributes:
            if attr.domain is None:
                return None
            total *= len(attr.domain)
        return total

    def contains(self, names: Iterable[str]) -> bool:
        """Whether every name in ``names`` belongs to this schema."""
        return all(n in self._index for n in names)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "RelationSchema":
        """Sub-schema over ``names``, keeping the given order."""
        return RelationSchema(self.attribute(n) for n in names)

    def canonical_order(self, names: Iterable[str]) -> tuple[str, ...]:
        """Order ``names`` by their position in this schema.

        Used so that projections onto the same attribute *set* always share
        tuple layout regardless of how the caller spelled the set.
        """
        wanted = set(names)
        unknown = wanted - self._index.keys()
        if unknown:
            raise UnknownAttributeError(
                f"unknown attributes {sorted(unknown)}; schema has {list(self._names)}"
            )
        return tuple(n for n in self._names if n in wanted)

    def validate_row(self, row: Sequence[Value]) -> Row:
        """Validate arity and domains of ``row``; return it as a tuple."""
        tup = tuple(row)
        if len(tup) != self.arity:
            from repro.errors import ArityError

            raise ArityError(
                f"tuple has {len(tup)} values but schema has {self.arity} attributes"
            )
        for attr, value in zip(self._attributes, tup):
            attr.validate(value)
        return tup

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.arity

    def __iter__(self):
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({list(self._names)})"

"""Semijoins and the Yannakakis full reducer for acyclic schemas.

Yannakakis' algorithm [26 in the paper] is the reason acyclic schemas
"enable efficient query evaluation": two semijoin sweeps over a join tree
remove every *dangling* tuple (one that joins with nothing), after which
the join can be computed with output-linear cost.

When all projections come from a single universal relation — the paper's
setting — the reducer is a no-op (the projections are already globally
consistent); tests verify both that fact and genuine reduction on
independently-built relations.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import JoinTreeError
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation

#: Below this size a plain row scan beats building/consulting columns.
_SCAN_LIMIT = 64


def semijoin(left: Relation, right: Relation) -> Relation:
    """``left ⋉ right``: the tuples of ``left`` matching some tuple of ``right``.

    Matching is on the shared attributes; with no shared attributes the
    semijoin is ``left`` itself when ``right`` is non-empty, else empty.

    Large left sides run columnar: the left rows are grouped once by the
    shared attributes (a cached
    :class:`~repro.relations.columns.GroupIndex`), membership is decided
    per *distinct* key group rather than per row, and the surviving rows
    come from one boolean mask over the group ids.
    """
    shared = [n for n in left.schema.names if n in set(right.schema.names)]
    if not shared:
        return left if not right.is_empty() else Relation.empty(left.schema)
    left_idx = left.schema.indices(shared)
    right_idx = right.schema.indices(shared)
    keys = {tuple(row[i] for i in right_idx) for row in right}
    if len(left) >= _SCAN_LIMIT:
        store = left.columns()
        group = store.groups(left_idx)
        row_list = store.row_list
        keep = np.fromiter(
            (
                tuple(row_list[i][p] for p in left_idx) in keys
                for i in group.first_index.tolist()
            ),
            dtype=bool,
            count=len(group.counts),
        )
        kept = [row_list[i] for i in np.flatnonzero(keep[group.gids]).tolist()]
        return Relation(left.schema, kept, validate=False)
    kept = [
        row for row in left if tuple(row[i] for i in left_idx) in keys
    ]
    return Relation(left.schema, kept, validate=False)


def full_reduce(
    relations: Mapping[int, Relation], jointree: JoinTree
) -> dict[int, Relation]:
    """Yannakakis' full reducer: remove all dangling tuples.

    Parameters
    ----------
    relations:
        One relation per join-tree node, keyed by node id; each
        relation's attribute set must equal the node's bag.
    jointree:
        The acyclic schema's join tree.

    Returns
    -------
    dict
        Reduced relations (same keys); after reduction, every tuple of
        every relation participates in at least one join result.

    The classic two sweeps: leaves-to-root semijoins, then root-to-leaves.
    """
    _validate_cover(relations, jointree)
    reduced = dict(relations)
    order = jointree.dfs_order()
    parent = jointree.parents()

    # Upward sweep: each node filters its parent.
    for node in reversed(order[1:]):
        p = parent[node]
        reduced[p] = semijoin(reduced[p], reduced[node])

    # Downward sweep: each parent filters its children.
    for node in order[1:]:
        p = parent[node]
        reduced[node] = semijoin(reduced[node], reduced[p])
    return reduced


def is_globally_consistent(
    relations: Mapping[int, Relation], jointree: JoinTree
) -> bool:
    """Whether the full reducer would change nothing (no dangling tuples)."""
    reduced = full_reduce(relations, jointree)
    return all(
        len(reduced[node]) == len(relations[node]) for node in relations
    )


def projections_for_tree(
    relation: Relation, jointree: JoinTree
) -> dict[int, Relation]:
    """The paper's decomposition: ``node ↦ R[χ(node)]``.

    These are always globally consistent (they come from one instance),
    so Yannakakis applies with zero reduction work.
    """
    return {
        node: relation.project(
            relation.schema.canonical_order(jointree.bag(node))
        )
        for node in jointree.node_ids()
    }


def dangling_counts(
    relations: Mapping[int, Relation], jointree: JoinTree
) -> dict[int, int]:
    """Per-node number of dangling tuples the reducer removes."""
    reduced = full_reduce(relations, jointree)
    return {
        node: len(relations[node]) - len(reduced[node]) for node in relations
    }


def _validate_cover(
    relations: Mapping[int, Relation], jointree: JoinTree
) -> None:
    node_ids: Sequence[int] = jointree.node_ids()
    if set(relations) != set(node_ids):
        raise JoinTreeError(
            f"relations keyed by {sorted(relations)} but the tree has "
            f"nodes {list(node_ids)}"
        )
    for node in node_ids:
        have = relations[node].schema.name_set
        want = jointree.bag(node)
        if have != want:
            raise JoinTreeError(
                f"node {node}: relation has attributes {sorted(have)} but "
                f"the bag is {sorted(want)}"
            )

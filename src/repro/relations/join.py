"""Natural joins and acyclic join-size counting.

Two families of operations:

* **Materializing joins** — :func:`natural_join` (pairwise hash join) and
  :func:`natural_join_all` (multiway fold with a connectivity-aware order).
  These produce :class:`~repro.relations.relation.Relation` objects and are
  fine for small instances and tests.

* **Counting joins** — :func:`join_size` (pairwise, no materialization) and
  :func:`acyclic_join_size` (message passing over a join tree).  The
  spurious-tuple counts studied by the paper grow like the product of
  domain sizes (``|R'| = N·(1+ρ)`` can be orders of magnitude larger than
  ``N``), so the loss computations never materialize ``R'``.

The message-passing counter exploits the key structural fact that all
projections come from the *same* instance ``R``: every separator value seen
at a join-tree node also appears in its neighbor's projection, so no
semijoin filtering is needed and a single bottom-up sweep of weighted counts
yields ``|⋈ᵢ R[Ωᵢ]|`` exactly (Yannakakis-style count aggregation).
"""

from __future__ import annotations

import operator
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import JoinTreeError, SchemaError
from repro.relations.columns import _dense_limit
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema, Row

#: Cartesian-bound ceiling under which the vectorized int64 message
#: passing is provably overflow-free (every intermediate weight is at most
#: the product of all bag projection sizes).
_INT64_SAFE_BOUND = 1 << 62

#: Below this bound float64 accumulation (``numpy.bincount``) is exact, so
#: the faster bincount path replaces ``numpy.add.at``.
_FLOAT64_EXACT_BOUND = 1 << 53


def _common_attributes(left: Relation, right: Relation) -> tuple[str, ...]:
    """Shared attribute names, ordered by the left schema."""
    right_names = set(right.schema.names)
    return tuple(n for n in left.schema.names if n in right_names)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ``left ⋈ right`` via a hash join on shared attributes.

    The output schema is the left schema followed by the right-only
    attributes (in right-schema order).  If the relations share no
    attributes this is the Cartesian product.
    """
    shared = _common_attributes(left, right)
    right_only = tuple(n for n in right.schema.names if n not in set(shared))

    left_idx = left.schema.indices(shared) if shared else ()
    right_shared_idx = right.schema.indices(shared) if shared else ()
    right_only_idx = right.schema.indices(right_only) if right_only else ()

    # Bucket the smaller side; iterate the larger.
    swap = len(left) > len(right)
    build, probe = (right, left) if swap else (left, right)
    build_key_idx = right_shared_idx if swap else left_idx
    probe_key_idx = left_idx if swap else right_shared_idx

    buckets: dict[Row, list[Row]] = defaultdict(list)
    for row in build:
        buckets[tuple(row[i] for i in build_key_idx)].append(row)

    out_rows: list[Row] = []
    for probe_row in probe:
        key = tuple(probe_row[i] for i in probe_key_idx)
        matches = buckets.get(key)
        if not matches:
            continue
        for build_row in matches:
            lrow, rrow = (probe_row, build_row) if swap else (build_row, probe_row)
            out_rows.append(lrow + tuple(rrow[i] for i in right_only_idx))

    out_schema_attrs = list(left.schema.attributes) + [
        right.schema.attribute(n) for n in right_only
    ]
    return Relation(RelationSchema(out_schema_attrs), out_rows, validate=False)


def natural_join_all(relations: Sequence[Relation]) -> Relation:
    """Multiway natural join ``⋈ᵢ Rᵢ``.

    Relations are folded in a connectivity-aware order: at each step the
    next operand is one sharing attributes with the accumulated result (if
    any exists), postponing Cartesian products as long as possible.
    """
    if not relations:
        raise SchemaError("natural_join_all needs at least one relation")
    remaining = list(relations)
    result = remaining.pop(0)
    while remaining:
        covered = set(result.schema.names)
        pick = next(
            (i for i, rel in enumerate(remaining)
             if covered & set(rel.schema.names)),
            0,
        )
        result = natural_join(result, remaining.pop(pick))
    return result


def join_size(left: Relation, right: Relation) -> int:
    """``|left ⋈ right|`` without materializing the join.

    Counts distinct result tuples: for each shared-attribute value ``v``,
    the join contributes ``|σ_v(left)| · |σ_v(right)|`` tuples (all
    distinct because the inputs are sets and the output concatenates
    disjoint columns around the shared key).
    """
    shared = _common_attributes(left, right)
    if not shared:
        return len(left) * len(right)
    left_counts = left.projection_counts(shared)
    right_counts = right.projection_counts(shared)
    # projection_counts is keyed by left/right canonical order, which can
    # differ; re-key on a shared canonical order (sorted names).
    order = tuple(sorted(shared))
    left_counts = _rekey(left_counts, left.schema.canonical_order(shared), order)
    right_counts = _rekey(right_counts, right.schema.canonical_order(shared), order)
    if len(left_counts) > len(right_counts):
        left_counts, right_counts = right_counts, left_counts
    return sum(
        count * right_counts[key]
        for key, count in left_counts.items()
        if key in right_counts
    )


def split_join_size(relation: Relation, left: Iterable[str], right: Iterable[str]) -> int:
    """``|R[left] ⋈ R[right]|`` when both projections come from ``relation``.

    The two-projection join sizes of Eq. 28 are the per-split loss
    workhorse.  Because both sides project the *same* instance, the count
    decomposes per shared-key group: ``Σ_k aₖ·bₖ`` where ``aₖ``/``bₖ``
    are the numbers of distinct left/right projections within key group
    ``k``.  Both are one bincount over the relation's cached columnar
    :class:`~repro.relations.columns.GroupIndex` objects — nothing is
    materialized and no tuples are hashed.

    With no shared attributes the join is the Cartesian product of the
    two projection sizes.  Falls back to exact Python bignums when the
    product bound could overflow int64.
    """
    schema = relation.schema
    left_order = schema.canonical_order(left)
    right_order = schema.canonical_order(right)
    if relation.is_empty():
        return 0
    store = relation.columns()
    left_groups = store.groups(schema.indices(left_order))
    right_groups = store.groups(schema.indices(right_order))
    shared = set(left_order) & set(right_order)
    if not shared:
        return len(left_groups.counts) * len(right_groups.counts)
    key_groups = store.groups(schema.indices(schema.canonical_order(shared)))
    n_keys = len(key_groups.counts)
    a = np.bincount(key_groups.gids[left_groups.first_index], minlength=n_keys)
    b = np.bincount(key_groups.gids[right_groups.first_index], minlength=n_keys)
    if len(left_groups.counts) * len(right_groups.counts) < _INT64_SAFE_BOUND:
        return int(a @ b)
    return sum(int(x) * int(y) for x, y in zip(a.tolist(), b.tolist()))


def _rekey(counts: Counter[Row], have: tuple[str, ...], want: tuple[str, ...]) -> Counter[Row]:
    """Re-order composite keys from attribute order ``have`` to ``want``."""
    if have == want:
        return counts
    positions = tuple(have.index(name) for name in want)
    getter = operator.itemgetter(*positions)
    if len(positions) == 1:
        return Counter({(key[positions[0]],): c for key, c in counts.items()})
    return Counter({tuple(getter(key)): c for key, c in counts.items()})


def acyclic_join_size(relation: Relation, jointree) -> int:
    """``|⋈ᵢ R[Ωᵢ]|`` for the bags ``Ωᵢ`` of ``jointree``, via counting.

    Runs one bottom-up message pass over the join tree.  Each node holds a
    table ``bag-tuple → weight`` (initially 1 for each distinct projected
    tuple).  A child sends its parent the sum of weights per separator
    value; the parent multiplies each of its tuples' weights by the
    matching message entry.  The root's total weight is the join size.

    Correct for any join tree whose bags are subsets of the relation's
    attributes (running intersection guarantees the DP decomposes the
    count).  Never materializes the join, so it is safe even when the join
    result would have billions of tuples.

    Parameters
    ----------
    relation:
        The universal relation instance ``R``.
    jointree:
        A :class:`repro.jointrees.jointree.JoinTree` over (a subset of)
        the relation's attributes.
    """
    bags = jointree.bags()
    missing = set().union(*bags) - set(relation.schema.names)
    if missing:
        raise JoinTreeError(
            f"join tree mentions attributes not in the relation: {sorted(missing)}"
        )
    if relation.is_empty():
        return 0

    order = jointree.topological_order()  # leaves-first, root last
    parent_of = jointree.parents()

    size = _acyclic_join_size_dense(relation, jointree, order, parent_of)
    if size is None:
        size = _acyclic_join_size_columnar(relation, jointree, order, parent_of)
    if size is not None:
        return size
    return _acyclic_join_size_python(relation, jointree, order, parent_of)


def _bag_positions(relation: Relation, bag) -> tuple[int, ...]:
    schema = relation.schema
    return schema.indices(schema.canonical_order(bag))


def _dense_radix(store, positions) -> tuple[tuple[int, ...], int]:
    """Per-position strides and total radix for a dense mixed-radix pack."""
    strides = [1] * len(positions)
    radix = 1
    for i in range(len(positions) - 1, -1, -1):
        strides[i] = radix
        radix *= max(store.cards[positions[i]], 1)
    return tuple(strides), radix


def _acyclic_join_size_dense(
    relation: Relation, jointree, order, parent_of
) -> int | None:
    """Bincount-only message passing for dense integer-coded relations.

    Every bag's mixed-radix keyspace is materialized as a flat weight
    vector (no sorting ``numpy.unique`` at all); separator cells are
    recovered from bag cells arithmetically (digit extraction), so the
    whole DP is ``O(N + Σ radixᵢ)``.  Returns ``None`` when any bag's
    keyspace is too large for this to pay off (the sparse columnar or
    dict paths then take over).
    """
    store = relation.columns()
    n = len(store.row_list)
    limit = _dense_limit(n)
    node_ids = jointree.node_ids()
    plans: dict[int, tuple[tuple[int, ...], tuple[int, ...], int]] = {}
    for node in node_ids:
        positions = _bag_positions(relation, jointree.bag(node))
        strides, radix = _dense_radix(store, positions)
        if radix > limit:
            return None
        plans[node] = (positions, strides, radix)

    # Present-cell weight vectors per node, plus a conservative magnitude
    # bound: every intermediate weight is at most ∏ᵢ |R[Ωᵢ]| ≤ ∏ᵢ radixᵢ.
    bound = 1
    cells: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    for node in node_ids:
        positions, strides, radix = plans[node]
        key = store.codes[positions[0]] * strides[0]
        for p, stride in zip(positions[1:], strides[1:]):
            key = key + store.codes[p] * stride
        present = np.flatnonzero(np.bincount(key, minlength=radix))
        cells[node] = present
        weights[node] = np.ones(len(present), dtype=np.int64)
        bound *= max(len(present), 1)
    if bound >= _INT64_SAFE_BOUND:
        return None
    use_bincount = bound < _FLOAT64_EXACT_BOUND

    def subkey(node: int, sep_positions, sep_strides) -> np.ndarray:
        """Separator cell of each of ``node``'s present bag cells."""
        positions, strides, _ = plans[node]
        where = {p: i for i, p in enumerate(positions)}
        bag_cells = cells[node]
        out = np.zeros(len(bag_cells), dtype=np.int64)
        for p, sep_stride in zip(sep_positions, sep_strides):
            i = where[p]
            card = max(store.cards[p], 1)
            out += ((bag_cells // strides[i]) % card) * sep_stride
        return out

    for node in order[:-1]:  # every non-root node sends a message up
        parent = parent_of[node]
        separator = jointree.bag(node) & jointree.bag(parent)
        child_weights = weights.pop(node)
        if not separator:
            weights[parent] = weights[parent] * int(child_weights.sum())
            continue
        sep_positions = _bag_positions(relation, separator)
        sep_strides, sep_radix = _dense_radix(store, sep_positions)
        child_sep = subkey(node, sep_positions, sep_strides)
        if use_bincount:
            message = np.bincount(
                child_sep, weights=child_weights, minlength=sep_radix
            ).astype(np.int64)
        else:
            message = np.zeros(sep_radix, dtype=np.int64)
            np.add.at(message, child_sep, child_weights)
        parent_sep = subkey(parent, sep_positions, sep_strides)
        weights[parent] = weights[parent] * message[parent_sep]
    return int(weights[order[-1]].sum())


def _acyclic_join_size_columnar(
    relation: Relation, jointree, order, parent_of
) -> int | None:
    """Vectorized message passing over the relation's code columns.

    Each node's table is a dense ``int64`` weight vector indexed by the
    node's distinct bag groups; messages are bincounts over separator
    group ids shared through the relation's cached
    :class:`~repro.relations.columns.GroupIndex` objects.  Returns ``None``
    when the Cartesian bound ``∏|R[Ωᵢ]|`` could overflow int64 (the exact
    dict-based fallback then takes over with Python bignums).
    """
    schema = relation.schema
    store = relation.columns()
    groups = {}
    bound = 1
    for node in jointree.node_ids():
        positions = schema.indices(schema.canonical_order(jointree.bag(node)))
        group = store.groups(positions)
        groups[node] = group
        bound *= len(group.counts)
    if bound >= _INT64_SAFE_BOUND:
        return None
    use_bincount = bound < _FLOAT64_EXACT_BOUND

    weights = {
        node: np.ones(len(groups[node].counts), dtype=np.int64)
        for node in jointree.node_ids()
    }
    for node in order[:-1]:  # every non-root node sends a message up
        parent = parent_of[node]
        separator = jointree.bag(node) & jointree.bag(parent)
        child_weights = weights.pop(node)
        if not separator:
            weights[parent] = weights[parent] * int(child_weights.sum())
            continue
        sep_positions = schema.indices(schema.canonical_order(separator))
        sep_group = store.groups(sep_positions)
        n_sep = len(sep_group.counts)
        child_sep = sep_group.gids[groups[node].first_index]
        if use_bincount:
            message = np.bincount(
                child_sep, weights=child_weights, minlength=n_sep
            ).astype(np.int64)
        else:
            message = np.zeros(n_sep, dtype=np.int64)
            np.add.at(message, child_sep, child_weights)
        parent_sep = sep_group.gids[groups[parent].first_index]
        weights[parent] = weights[parent] * message[parent_sep]
    return int(weights[order[-1]].sum())


def _acyclic_join_size_python(
    relation: Relation, jointree, order, parent_of
) -> int:
    """Reference dict-based DP (exact with Python bignums, any size)."""
    # weight tables: node -> {bag-tuple(canonical order) -> weight}
    tables: dict[int, dict[Row, int]] = {}
    bag_orders: dict[int, tuple[str, ...]] = {}
    for node in jointree.node_ids():
        bag = jointree.bag(node)
        bag_order = relation.schema.canonical_order(bag)
        bag_orders[node] = bag_order
        tables[node] = {
            row: 1 for row in relation.project(bag_order).rows()
        }

    for node in order[:-1]:  # every non-root node sends a message up
        parent = parent_of[node]
        separator = jointree.bag(node) & jointree.bag(parent)
        message: dict[Row, int] = defaultdict(int)
        sep_order = relation.schema.canonical_order(separator) if separator else ()
        child_positions = tuple(bag_orders[node].index(a) for a in sep_order)
        for row, weight in tables[node].items():
            key = tuple(row[i] for i in child_positions)
            message[key] += weight

        parent_positions = tuple(bag_orders[parent].index(a) for a in sep_order)
        parent_table = tables[parent]
        for row in list(parent_table):
            key = tuple(row[i] for i in parent_positions)
            hit = message.get(key)
            if hit is None:
                # Cannot happen when all bags project the same R, but keep
                # the DP correct for arbitrary inputs.
                del parent_table[row]
            else:
                parent_table[row] *= hit
        del tables[node]

    root = order[-1]
    return sum(tables[root].values())


def materialized_acyclic_join(relation: Relation, jointree) -> Relation:
    """Materialize ``⋈ᵢ R[Ωᵢ]`` for the bags of ``jointree``.

    For tests and small instances only; prefer :func:`acyclic_join_size`
    for counting.  Joins projections in a join-tree traversal order so
    intermediate results stay calibrated (no Cartesian blowup beyond the
    final result size).
    """
    order = jointree.topological_order()
    projections = [
        relation.project(relation.schema.canonical_order(jointree.bag(node)))
        for node in reversed(order)  # root first: keeps joins connected
    ]
    return natural_join_all(projections)


def cartesian_size(relation: Relation, attribute_sets: Iterable[frozenset[str]]) -> int:
    """Upper bound ``∏ᵢ |R[Ωᵢ]|`` on any join of the given projections."""
    total = 1
    for attrs in attribute_sets:
        total *= relation.projection_size(attrs)
    return total

"""Natural joins and acyclic join-size counting.

Two families of operations:

* **Materializing joins** — :func:`natural_join` (pairwise hash join) and
  :func:`natural_join_all` (multiway fold with a connectivity-aware order).
  These produce :class:`~repro.relations.relation.Relation` objects and are
  fine for small instances and tests.

* **Counting joins** — :func:`join_size` (pairwise, no materialization) and
  :func:`acyclic_join_size` (message passing over a join tree).  The
  spurious-tuple counts studied by the paper grow like the product of
  domain sizes (``|R'| = N·(1+ρ)`` can be orders of magnitude larger than
  ``N``), so the loss computations never materialize ``R'``.

The message-passing counter exploits the key structural fact that all
projections come from the *same* instance ``R``: every separator value seen
at a join-tree node also appears in its neighbor's projection, so no
semijoin filtering is needed and a single bottom-up sweep of weighted counts
yields ``|⋈ᵢ R[Ωᵢ]|`` exactly (Yannakakis-style count aggregation).
"""

from __future__ import annotations

import operator
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence

from repro.errors import JoinTreeError, SchemaError
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema, Row


def _common_attributes(left: Relation, right: Relation) -> tuple[str, ...]:
    """Shared attribute names, ordered by the left schema."""
    right_names = set(right.schema.names)
    return tuple(n for n in left.schema.names if n in right_names)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ``left ⋈ right`` via a hash join on shared attributes.

    The output schema is the left schema followed by the right-only
    attributes (in right-schema order).  If the relations share no
    attributes this is the Cartesian product.
    """
    shared = _common_attributes(left, right)
    right_only = tuple(n for n in right.schema.names if n not in set(shared))

    left_idx = left.schema.indices(shared) if shared else ()
    right_shared_idx = right.schema.indices(shared) if shared else ()
    right_only_idx = right.schema.indices(right_only) if right_only else ()

    # Bucket the smaller side; iterate the larger.
    swap = len(left) > len(right)
    build, probe = (right, left) if swap else (left, right)
    build_key_idx = right_shared_idx if swap else left_idx
    probe_key_idx = left_idx if swap else right_shared_idx

    buckets: dict[Row, list[Row]] = defaultdict(list)
    for row in build:
        buckets[tuple(row[i] for i in build_key_idx)].append(row)

    out_rows: list[Row] = []
    for probe_row in probe:
        key = tuple(probe_row[i] for i in probe_key_idx)
        matches = buckets.get(key)
        if not matches:
            continue
        for build_row in matches:
            lrow, rrow = (probe_row, build_row) if swap else (build_row, probe_row)
            out_rows.append(lrow + tuple(rrow[i] for i in right_only_idx))

    out_schema_attrs = list(left.schema.attributes) + [
        right.schema.attribute(n) for n in right_only
    ]
    return Relation(RelationSchema(out_schema_attrs), out_rows, validate=False)


def natural_join_all(relations: Sequence[Relation]) -> Relation:
    """Multiway natural join ``⋈ᵢ Rᵢ``.

    Relations are folded in a connectivity-aware order: at each step the
    next operand is one sharing attributes with the accumulated result (if
    any exists), postponing Cartesian products as long as possible.
    """
    if not relations:
        raise SchemaError("natural_join_all needs at least one relation")
    remaining = list(relations)
    result = remaining.pop(0)
    while remaining:
        covered = set(result.schema.names)
        pick = next(
            (i for i, rel in enumerate(remaining)
             if covered & set(rel.schema.names)),
            0,
        )
        result = natural_join(result, remaining.pop(pick))
    return result


def join_size(left: Relation, right: Relation) -> int:
    """``|left ⋈ right|`` without materializing the join.

    Counts distinct result tuples: for each shared-attribute value ``v``,
    the join contributes ``|σ_v(left)| · |σ_v(right)|`` tuples (all
    distinct because the inputs are sets and the output concatenates
    disjoint columns around the shared key).
    """
    shared = _common_attributes(left, right)
    if not shared:
        return len(left) * len(right)
    left_counts = left.projection_counts(shared)
    right_counts = right.projection_counts(shared)
    # projection_counts is keyed by left/right canonical order, which can
    # differ; re-key on a shared canonical order (sorted names).
    order = tuple(sorted(shared))
    left_counts = _rekey(left_counts, left.schema.canonical_order(shared), order)
    right_counts = _rekey(right_counts, right.schema.canonical_order(shared), order)
    if len(left_counts) > len(right_counts):
        left_counts, right_counts = right_counts, left_counts
    return sum(
        count * right_counts[key]
        for key, count in left_counts.items()
        if key in right_counts
    )


def _rekey(counts: Counter[Row], have: tuple[str, ...], want: tuple[str, ...]) -> Counter[Row]:
    """Re-order composite keys from attribute order ``have`` to ``want``."""
    if have == want:
        return counts
    positions = tuple(have.index(name) for name in want)
    getter = operator.itemgetter(*positions)
    if len(positions) == 1:
        return Counter({(key[positions[0]],): c for key, c in counts.items()})
    return Counter({tuple(getter(key)): c for key, c in counts.items()})


def acyclic_join_size(relation: Relation, jointree) -> int:
    """``|⋈ᵢ R[Ωᵢ]|`` for the bags ``Ωᵢ`` of ``jointree``, via counting.

    Runs one bottom-up message pass over the join tree.  Each node holds a
    table ``bag-tuple → weight`` (initially 1 for each distinct projected
    tuple).  A child sends its parent the sum of weights per separator
    value; the parent multiplies each of its tuples' weights by the
    matching message entry.  The root's total weight is the join size.

    Correct for any join tree whose bags are subsets of the relation's
    attributes (running intersection guarantees the DP decomposes the
    count).  Never materializes the join, so it is safe even when the join
    result would have billions of tuples.

    Parameters
    ----------
    relation:
        The universal relation instance ``R``.
    jointree:
        A :class:`repro.jointrees.jointree.JoinTree` over (a subset of)
        the relation's attributes.
    """
    bags = jointree.bags()
    missing = set().union(*bags) - set(relation.schema.names)
    if missing:
        raise JoinTreeError(
            f"join tree mentions attributes not in the relation: {sorted(missing)}"
        )
    if relation.is_empty():
        return 0

    order = jointree.topological_order()  # leaves-first, root last
    parent_of = jointree.parents()

    # weight tables: node -> {bag-tuple(canonical order) -> weight}
    tables: dict[int, dict[Row, int]] = {}
    bag_orders: dict[int, tuple[str, ...]] = {}
    for node in jointree.node_ids():
        bag = jointree.bag(node)
        bag_order = relation.schema.canonical_order(bag)
        bag_orders[node] = bag_order
        tables[node] = {
            row: 1 for row in relation.project(bag_order).rows()
        }

    for node in order[:-1]:  # every non-root node sends a message up
        parent = parent_of[node]
        separator = jointree.bag(node) & jointree.bag(parent)
        message: dict[Row, int] = defaultdict(int)
        sep_order = relation.schema.canonical_order(separator) if separator else ()
        child_positions = tuple(bag_orders[node].index(a) for a in sep_order)
        for row, weight in tables[node].items():
            key = tuple(row[i] for i in child_positions)
            message[key] += weight

        parent_positions = tuple(bag_orders[parent].index(a) for a in sep_order)
        parent_table = tables[parent]
        for row in list(parent_table):
            key = tuple(row[i] for i in parent_positions)
            hit = message.get(key)
            if hit is None:
                # Cannot happen when all bags project the same R, but keep
                # the DP correct for arbitrary inputs.
                del parent_table[row]
            else:
                parent_table[row] *= hit
        del tables[node]

    root = order[-1]
    return sum(tables[root].values())


def materialized_acyclic_join(relation: Relation, jointree) -> Relation:
    """Materialize ``⋈ᵢ R[Ωᵢ]`` for the bags of ``jointree``.

    For tests and small instances only; prefer :func:`acyclic_join_size`
    for counting.  Joins projections in a join-tree traversal order so
    intermediate results stay calibrated (no Cartesian blowup beyond the
    final result size).
    """
    order = jointree.topological_order()
    projections = [
        relation.project(relation.schema.canonical_order(jointree.bag(node)))
        for node in reversed(order)  # root first: keeps joins connected
    ]
    return natural_join_all(projections)


def cartesian_size(relation: Relation, attribute_sets: Iterable[frozenset[str]]) -> int:
    """Upper bound ``∏ᵢ |R[Ωᵢ]|`` on any join of the given projections."""
    total = 1
    for attrs in attribute_sets:
        total *= len(relation.project(relation.schema.canonical_order(attrs)))
    return total

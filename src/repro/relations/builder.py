"""Incremental columnar ingestion: build a relation chunk-by-chunk.

:class:`ColumnStoreBuilder` dictionary-codes each column as rows arrive
and deduplicates **incrementally**, retaining only

* one ``int64`` code array per ingested chunk holding that chunk's
  *globally new* distinct rows (8 bytes per cell),
* one ``value → code`` dict plus its ``code → value`` list per column
  (one entry per distinct value), and
* one set of seen code-tuples (one entry per distinct row).

Dictionary codes are append-only — a value's code never changes once
assigned — so code-tuples are stable deduplication keys across chunks.
Peak memory during ingestion is therefore bounded by a single chunk of
raw Python values plus state proportional to the *distinct* content,
never the full file's worth of Python tuples that the eager reader
materializes: a billion-row log with a million distinct rows streams in
constant + O(distinct) memory.  ``finish()`` decodes the distinct rows
once and seeds the relation's
:class:`~repro.relations.columns.ColumnStore` directly from the codes —
no re-factorization and no end-of-stream dedup pass.

The per-column dict coding uses Python's hash-based equality, exactly
like the relation's row ``frozenset`` (``1 == True == 1.0`` collapse),
so the built relation is equal to the eagerly constructed one for any
chunk size — pinned by the property tests in ``tests/test_streaming.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relations.columns import ColumnStore
from repro.relations.relation import _distinct_row_indices
from repro.relations.schema import RelationSchema, Row


class ColumnStoreBuilder:
    """Dictionary-code rows chunk-by-chunk into a columnar relation.

    Examples
    --------
    >>> from repro.relations.schema import RelationSchema
    >>> builder = ColumnStoreBuilder(2)
    >>> builder.add_rows([(1, "x"), (2, "y")])
    >>> builder.add_rows([(1, "x"), (3, "z")])
    >>> r = builder.finish(RelationSchema.from_names(["A", "B"]))
    >>> len(r)  # duplicates collapse, like Relation(...)
    3
    """

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise SchemaError(f"arity must be >= 1, got {arity}")
        self._arity = arity
        self._encoders: list[dict] = [{} for _ in range(arity)]
        self._decoders: list[list] = [[] for _ in range(arity)]
        self._chunks: list[np.ndarray] = []
        self._seen: set[tuple[int, ...]] = set()
        self._n = 0
        self._finished = False

    @classmethod
    def from_relation(cls, relation) -> "ColumnStoreBuilder":
        """Seed a builder with an existing relation's coded content.

        The delta-ingest primitive: the relation's columnar store is
        adopted *as codes* — its rows become the builder's first chunk
        and its dictionaries become the builder's encoders — so
        appending rows extends the dictionary coding instead of
        re-factorizing the resident data.  Dictionary codes stay
        append-only (an existing value keeps its code; new values take
        the next free one), which is what makes ``finish()`` equal to a
        from-scratch ingest of the concatenated rows for any chunking.

        Encoders are rebuilt from dense per-column ``code → value``
        decoders (:func:`repro.relations.persist._derive_decoders`):
        identity-coded columns admit code gaps, and a gap at code ``c``
        decodes to ``int(c)`` — so the derived encoder maps that value
        back to ``c``, keeping the mapping a bijection.
        """
        from repro.relations.persist import _derive_decoders

        store = relation.columns()
        arity = len(store.cards)
        builder = cls(arity)
        builder._decoders = [list(d) for d in _derive_decoders(relation)]
        builder._encoders = [
            {value: code for code, value in enumerate(decoder)}
            for decoder in builder._decoders
        ]
        if store.n_rows:
            base = np.stack(
                [
                    np.asarray(store.codes[j], dtype=np.int64)
                    for j in range(arity)
                ],
                axis=1,
            )
            builder._chunks = [base]
            builder._seen = set(map(tuple, base.tolist()))
        builder._n = store.n_rows
        return builder

    @property
    def rows_ingested(self) -> int:
        """Number of rows added so far (before deduplication)."""
        return self._n

    @property
    def rows_distinct(self) -> int:
        """Number of distinct rows retained so far."""
        return len(self._seen)

    def cardinalities(self) -> tuple[int, ...]:
        """Distinct values seen per column so far."""
        return tuple(len(d) for d in self._decoders)

    def add_rows(self, rows: Iterable[Sequence]) -> None:
        """Ingest one chunk of row tuples.

        Only integer codes of the chunk's globally new distinct rows (and
        any newly seen dictionary values) are retained; the chunk's
        Python objects can be garbage-collected by the caller immediately
        after this returns.
        """
        if self._finished:
            raise SchemaError("builder already finished")
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return
        arity = self._arity
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"row has {len(row)} fields, builder expects {arity}"
                )
        self._n += len(rows)
        columns = zip(*rows)
        arrays = []
        for j, column in enumerate(columns):
            encoder = self._encoders[j]
            decoder = self._decoders[j]
            get = encoder.get
            codes = [0] * len(rows)
            for i, value in enumerate(column):
                code = get(value)
                if code is None:
                    code = len(encoder)
                    encoder[value] = code
                    decoder.append(value)
                codes[i] = code
            arrays.append(np.asarray(codes, dtype=np.int64))
        chunk = np.stack(arrays, axis=1)
        # Vectorized within-chunk dedup first (cheap), then the global
        # seen-set filters only the chunk's distinct rows.  Codes are
        # append-only, so code-tuples are stable keys across chunks.
        keep = _distinct_row_indices(chunk, self.cardinalities())
        if keep is not None and len(keep) != chunk.shape[0]:
            chunk = chunk[keep]
        seen = self._seen
        fresh = []
        for row in map(tuple, chunk.tolist()):
            if row not in seen:
                seen.add(row)
                fresh.append(row)
        if fresh:
            self._chunks.append(np.asarray(fresh, dtype=np.int64))

    def finish(self, schema: RelationSchema):
        """Decode the accumulated distinct rows and assemble the relation.

        No dedup pass runs here — rows were deduplicated as they arrived.
        The relation's columnar store is seeded from the accumulated
        codes (dict coding), so downstream entropy/grouping queries skip
        per-column factorization entirely.
        """
        from repro.relations.relation import Relation

        if self._finished:
            raise SchemaError("builder already finished")
        self._finished = True
        if schema.arity != self._arity:
            raise SchemaError(
                f"schema has {schema.arity} attributes, builder was sized "
                f"for {self._arity}"
            )
        if not self._seen:
            return Relation(schema, [], validate=False)
        self._seen = set()  # release the dedup set before decoding
        arr = (
            self._chunks[0]
            if len(self._chunks) == 1
            else np.concatenate(self._chunks)
        )
        self._chunks = []  # release per-chunk arrays
        cards = [len(d) for d in self._decoders]
        decoded_columns = []
        for j in range(self._arity):
            decoder = self._decoders[j]
            # One object-array fancy index per column instead of a
            # per-cell Python lookup loop: the decode is a single
            # vectorized gather (~4x faster on wide unique-heavy data).
            dec_arr = np.fromiter(decoder, dtype=object, count=len(decoder))
            decoded_columns.append(dec_arr[arr[:, j]].tolist())
        row_list = tuple(zip(*decoded_columns))
        rows = frozenset(row_list)
        if len(rows) != len(row_list):  # cannot happen (distinct codes decode
            # to pairwise-distinct values); guard anyway, mirroring from_codes
            return Relation(schema, rows, validate=False)
        relation = Relation.__new__(Relation)
        relation._schema = schema
        relation._rows = rows
        relation._engine = None
        relation._eval = None
        relation._fingerprint = None
        relation._store = ColumnStore.from_coded_columns(
            row_list,
            [np.ascontiguousarray(arr[:, j]) for j in range(self._arity)],
            cards,
            [list(d) for d in self._decoders],
        )
        return relation


def relation_from_chunks(
    schema_names: Sequence[str], chunks: Iterable[Sequence[Row]]
):
    """Convenience: feed row chunks through a builder and finish.

    ``schema_names`` become the relation schema
    (:meth:`RelationSchema.from_names`); each element of ``chunks`` is an
    iterable of row tuples.
    """
    schema = RelationSchema.from_names(schema_names)
    builder = ColumnStoreBuilder(schema.arity)
    for chunk in chunks:
        builder.add_rows(chunk)
    return builder.finish(schema)

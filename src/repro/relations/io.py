"""CSV import/export for relation instances.

Plain-text interchange so users can analyze their own tables:

* :func:`read_csv` — load a relation from a CSV file (header row = schema).
* :func:`write_csv` — save a relation (deterministic row order).
* :func:`infer_integer_domains` — tighten a loaded relation's schema to the
  active domains, which the paper's bounds need (``d_A``, ``d_B``, …).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SchemaError
from repro.relations.relation import Relation
from repro.relations.schema import Attribute, RelationSchema


def read_csv(
    path: str | Path,
    *,
    typed: bool = True,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Parameters
    ----------
    path:
        File to read.
    typed:
        If true, values that parse as integers/floats are converted; this
        keeps domains compact for numeric tables.  Strings otherwise.
    delimiter:
        CSV delimiter.
    """
    path = Path(path)
    try:
        with path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(
                    f"{path} is empty; a header row is required"
                ) from None
            rows = []
            for raw in reader:
                if not raw:
                    continue
                if len(raw) != len(header):
                    raise SchemaError(
                        f"{path}: row {reader.line_num} has {len(raw)} fields, "
                        f"header has {len(header)}"
                    )
                rows.append(tuple(_coerce(v) for v in raw) if typed else tuple(raw))
    except OSError as exc:
        reason = exc.strerror or exc
        raise SchemaError(f"cannot read {path}: {reason}") from exc
    except UnicodeDecodeError as exc:
        raise SchemaError(
            f"{path} is not a readable CSV text file ({exc.reason}); "
            "is it binary?"
        ) from exc
    except csv.Error as exc:
        raise SchemaError(f"{path} is not parseable as CSV: {exc}") from exc
    schema = RelationSchema.from_names(header)
    return Relation(schema, rows, validate=False)


def _coerce(text: str):
    """Convert ``text`` to int or float when it cleanly parses as one."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def write_csv(relation: Relation, path: str | Path, *, delimiter: str = ",") -> None:
    """Save ``relation`` to a CSV file with a header row.

    Rows are written in a deterministic (repr-sorted) order so output is
    reproducible.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.names)
        writer.writerows(relation.sorted_rows())


def infer_integer_domains(relation: Relation) -> Relation:
    """Return ``relation`` with each attribute's domain set to its active domain.

    After loading external data the schema has unconstrained attributes;
    the paper's random-model bounds need explicit domain sizes.  This uses
    the *active* domain ``Π_X(R)`` as the declared domain — the tightest
    choice, matching the paper's ``d_A = |Π_A(R)|`` convention.
    """
    attrs = [
        Attribute(name, frozenset(relation.active_domain(name)))
        for name in relation.schema.names
    ]
    return Relation(RelationSchema(attrs), relation.rows(), validate=False)

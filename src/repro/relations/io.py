"""CSV import/export for relation instances — eager and streaming.

Plain-text interchange so users can analyze their own tables:

* :func:`read_csv` — load a relation from a CSV file (header row = schema);
* :func:`iter_csv_chunks` — stream the same file chunk-by-chunk for
  out-of-core ingestion (see
  :meth:`repro.relations.relation.Relation.from_csv_stream`);
* :func:`sniff_header` — read just the header row;
* :func:`write_csv` — save a relation (deterministic row order);
* :func:`infer_integer_domains` — tighten a loaded relation's schema to the
  active domains, which the paper's bounds need (``d_A``, ``d_B``, …).

Both readers consume one shared parsing core (:func:`_parse_stream`), so
the eager and streaming paths **cannot diverge** on dialect, NUL-byte
rejection, blank/trailing-line skipping, ragged-row detection, or error
translation — a property pinned by ``tests/test_streaming.py``.
"""

from __future__ import annotations

import csv
from collections.abc import Iterator
from pathlib import Path
from typing import NamedTuple

from repro.errors import SchemaError
from repro.relations.relation import Relation
from repro.relations.schema import Attribute, RelationSchema, Row

#: Default number of data rows per streamed chunk.  Large enough that
#: per-chunk numpy/dict overheads amortize, small enough that one chunk
#: of raw Python values stays a few MB.
DEFAULT_CHUNK_ROWS = 65536


class CsvChunk(NamedTuple):
    """One streamed batch of CSV data rows.

    Attributes
    ----------
    header:
        The file's header row (identical tuple on every chunk).
    start_row:
        0-based index of the chunk's first data row within the file
        (blank lines excluded).
    rows:
        The chunk's parsed row tuples (values coerced exactly as
        :func:`read_csv` would).
    """

    header: tuple[str, ...]
    start_row: int
    rows: list[Row]


def _coerce(text: str):
    """Convert ``text`` to int or float when it cleanly parses as one."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _nul_guard(handle, path: Path) -> Iterator[str]:
    """Reject NUL bytes *before* the ``csv`` module sees each line.

    NUL bytes mean binary data, and the stdlib ``csv`` module's handling
    of them varies by Python version (< 3.11 raises its own
    ``Error: line contains NUL``; newer versions silently pass NULs
    through into field values).  Screening the raw lines makes both
    readers reject identically — same message, same line number — on
    every supported interpreter.
    """
    for line_num, line in enumerate(handle, start=1):
        if "\x00" in line:
            raise SchemaError(
                f"{path}: line {line_num} contains a NUL byte; "
                "is the file binary or truncated?"
            )
        yield line


def _parse_stream(
    path: str | Path, *, typed: bool, delimiter: str
) -> Iterator[tuple]:
    """The shared CSV parsing core: yields the header tuple, then row tuples.

    Single source of truth for dialect, NUL-byte, blank-line, and
    ragged-row handling, plus the translation of ``OSError`` /
    ``UnicodeDecodeError`` / ``csv.Error`` into :class:`SchemaError`.
    Both :func:`read_csv` and :func:`iter_csv_chunks` drain this
    generator, so the two paths agree row-for-row by construction.
    """
    path = Path(path)
    try:
        with path.open(newline="") as handle:
            reader = csv.reader(_nul_guard(handle, path), delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(
                    f"{path} is empty; a header row is required"
                ) from None
            width = len(header)
            yield tuple(header)
            for raw in reader:
                if not raw:  # blank line (including a trailing newline)
                    continue
                if len(raw) != width:
                    raise SchemaError(
                        f"{path}: row {reader.line_num} has {len(raw)} fields, "
                        f"header has {width}"
                    )
                yield tuple(_coerce(v) for v in raw) if typed else tuple(raw)
    except OSError as exc:
        reason = exc.strerror or exc
        raise SchemaError(f"cannot read {path}: {reason}") from exc
    except UnicodeDecodeError as exc:
        raise SchemaError(
            f"{path} is not a readable CSV text file ({exc.reason}); "
            "is it binary?"
        ) from exc
    except csv.Error as exc:
        raise SchemaError(f"{path} is not parseable as CSV: {exc}") from exc


def sniff_header(path: str | Path, *, delimiter: str = ",") -> tuple[str, ...]:
    """Read and return just the header row (shared parsing rules apply)."""
    stream = _parse_stream(path, typed=False, delimiter=delimiter)
    try:
        return next(stream)
    finally:
        stream.close()


def read_csv(
    path: str | Path,
    *,
    typed: bool = True,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Parameters
    ----------
    path:
        File to read.
    typed:
        If true, values that parse as integers/floats are converted; this
        keeps domains compact for numeric tables.  Strings otherwise.
    delimiter:
        CSV delimiter.
    """
    stream = _parse_stream(path, typed=typed, delimiter=delimiter)
    header = next(stream)
    rows = list(stream)
    schema = RelationSchema.from_names(header)
    return Relation(schema, rows, validate=False)


def iter_csv_chunks(
    path: str | Path,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    typed: bool = True,
    delimiter: str = ",",
) -> Iterator[CsvChunk]:
    """Stream a CSV file as :class:`CsvChunk` batches of at most ``chunk_rows``.

    Rows are parsed, coerced, and validated exactly as :func:`read_csv`
    does (same shared core).  At least one chunk is always yielded — a
    header-only file produces a single empty chunk — so consumers learn
    the schema even when there is no data.  Errors (unreadable file, NUL
    bytes, ragged rows, …) surface lazily, as the offending part of the
    file is reached.
    """
    if chunk_rows < 1:
        raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
    stream = _parse_stream(path, typed=typed, delimiter=delimiter)
    header = next(stream)
    start = 0
    rows: list[Row] = []
    for row in stream:
        rows.append(row)
        if len(rows) >= chunk_rows:
            yield CsvChunk(header, start, rows)
            start += len(rows)
            rows = []
    if rows or start == 0:
        yield CsvChunk(header, start, rows)


def write_csv(relation: Relation, path: str | Path, *, delimiter: str = ",") -> None:
    """Save ``relation`` to a CSV file with a header row.

    Rows are written in a deterministic (repr-sorted) order so output is
    reproducible.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.names)
        writer.writerows(relation.sorted_rows())


def infer_integer_domains(relation: Relation) -> Relation:
    """Return ``relation`` with each attribute's domain set to its active domain.

    After loading external data the schema has unconstrained attributes;
    the paper's random-model bounds need explicit domain sizes.  This uses
    the *active* domain ``Π_X(R)`` as the declared domain — the tightest
    choice, matching the paper's ``d_A = |Π_A(R)|`` convention.
    """
    attrs = [
        Attribute(name, frozenset(relation.active_domain(name)))
        for name in relation.schema.names
    ]
    out = Relation(RelationSchema(attrs), relation.rows(), validate=False)
    # Same names, same rows: the content fingerprint is unchanged too.
    out._fingerprint = relation._fingerprint
    if relation._store is not None:
        # Same row set, same attribute order — only the declared domains
        # changed, which the columnar codes never depend on.  Carrying the
        # store over keeps a streamed relation's pre-seeded codes (and any
        # warm group caches) instead of re-factorizing every column.
        out._store = relation._store
    return out

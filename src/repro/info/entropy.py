"""Entropy computations over relations and count vectors.

The paper's entropies are always taken over the empirical distribution of
a relation instance (Section 2.2): for a set ``Y ⊆ Ω`` of attributes,

    H(Y) = log N − (1/N) · Σ_y |R(Y=y)| · log |R(Y=y)|,

where the sum runs over the distinct values of the projection.  This module
computes that directly from multiplicity counts, avoiding the construction
of explicit probability dictionaries on hot paths.

Count/probability vectors are handled array-first: ndarray inputs are used
as-is (zeros masked with boolean indexing, no Python-level comprehension),
and relation-level entropies are answered by the relation's memoizing
:class:`~repro.info.engine.EntropyEngine` over its columnar counts, so
repeated queries for overlapping attribute subsets are computed once.

All functions return **nats** by default; pass ``base=2`` for bits.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.errors import DistributionError, UnknownAttributeError
from repro.info.engine import EntropyEngine
from repro.relations.relation import Relation


def _convert(value_nats: float, base: float | None) -> float:
    if base is None:
        return value_nats
    if base <= 0 or base == 1.0:
        raise DistributionError(f"log base must be positive and != 1, got {base}")
    return value_nats / math.log(base)


def _as_float_array(values: Iterable[float]) -> np.ndarray:
    """Coerce counts/probs to a float64 ndarray without a Python loop."""
    if isinstance(values, np.ndarray):
        return values.astype(np.float64, copy=False)
    if not isinstance(values, (list, tuple)):
        values = list(values)
    return np.asarray(values, dtype=np.float64)


def entropy_of_counts(counts: Iterable[int], *, base: float | None = None) -> float:
    """Entropy of the empirical distribution given value multiplicities.

    ``counts`` are the multiplicities of each distinct value; they need not
    be normalized.  Zero counts are ignored.  Accepts any iterable, and
    ndarrays directly (zeros are masked with boolean indexing — no
    per-element Python comprehension).

    Examples
    --------
    >>> round(entropy_of_counts([1, 1, 1, 1], base=2), 6)
    2.0
    >>> import numpy as np
    >>> round(entropy_of_counts(np.array([2, 0, 2])), 6) == round(math.log(2), 6)
    True
    """
    arr = _as_float_array(counts)
    if arr.size:
        lo = float(arr.min())
        if lo < 0:
            raise DistributionError("counts must be non-negative")
        if lo == 0.0:
            arr = arr[arr != 0.0]
    if arr.size == 0:
        raise DistributionError("entropy of an empty count vector is undefined")
    total = float(arr.sum())
    h = math.log(total) - float(arr @ np.log(arr)) / total
    return _convert(max(h, 0.0), base)


def entropy_of_probs(probs: Iterable[float], *, base: float | None = None) -> float:
    """Entropy of an explicit probability vector (must sum to 1).

    Accepts ndarrays directly; non-positive entries are masked out with
    boolean indexing before the sum-to-one check, matching the historical
    behaviour of the list-comprehension implementation.
    """
    arr = _as_float_array(probs)
    arr = arr[arr > 0.0]
    if arr.size == 0:
        raise DistributionError("entropy of an empty distribution is undefined")
    total = float(arr.sum())
    if abs(total - 1.0) > 1e-6:
        raise DistributionError(f"probabilities sum to {total}, expected 1")
    h = -float(arr @ np.log(arr))
    return _convert(max(h, 0.0), base)


def joint_entropy(
    relation: Relation,
    attributes: Iterable[str],
    *,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> float:
    """``H(attributes)`` under the empirical distribution of ``relation``.

    This is the joint entropy of the (possibly multi-attribute) projection,
    computed from columnar projection multiplicities and memoized per
    attribute subset on the relation's shared
    :class:`~repro.info.engine.EntropyEngine` (pass ``engine`` to reuse an
    explicit one).  For the full attribute set it equals ``log N`` because
    a relation instance is a set.
    """
    if relation.is_empty():
        raise DistributionError("entropy over an empty relation is undefined")
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    key = engine.key(attributes)
    if not key:
        raise UnknownAttributeError("projection onto the empty attribute set")
    return engine.entropy(key, base=base)


def relation_entropy(relation: Relation, *, base: float | None = None) -> float:
    """``H(Ω) = log N`` for a relation instance of size ``N``."""
    if relation.is_empty():
        raise DistributionError("entropy over an empty relation is undefined")
    return _convert(math.log(len(relation)), base)


def conditional_entropy(
    relation: Relation,
    targets: Iterable[str],
    given: Iterable[str],
    *,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> float:
    """``H(targets | given) = H(targets ∪ given) − H(given)``.

    Clamped at zero to absorb floating-point noise.
    """
    targets = tuple(targets)
    given = tuple(given)
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    joint = joint_entropy(relation, set(targets) | set(given), base=base, engine=engine)
    if not given:
        return joint
    return max(joint - joint_entropy(relation, given, base=base, engine=engine), 0.0)


def max_entropy(support_size: int, *, base: float | None = None) -> float:
    """``log(support_size)`` — the uniform-distribution entropy ceiling."""
    if support_size <= 0:
        raise DistributionError("support size must be positive")
    return _convert(math.log(support_size), base)

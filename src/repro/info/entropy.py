"""Entropy computations over relations and count vectors.

The paper's entropies are always taken over the empirical distribution of
a relation instance (Section 2.2): for a set ``Y ⊆ Ω`` of attributes,

    H(Y) = log N − (1/N) · Σ_y |R(Y=y)| · log |R(Y=y)|,

where the sum runs over the distinct values of the projection.  This module
computes that directly from multiplicity counts, avoiding the construction
of explicit probability dictionaries on hot paths.

All functions return **nats** by default; pass ``base=2`` for bits.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.errors import DistributionError
from repro.relations.relation import Relation


def _convert(value_nats: float, base: float | None) -> float:
    if base is None:
        return value_nats
    if base <= 0 or base == 1.0:
        raise DistributionError(f"log base must be positive and != 1, got {base}")
    return value_nats / math.log(base)


def entropy_of_counts(counts: Iterable[int], *, base: float | None = None) -> float:
    """Entropy of the empirical distribution given value multiplicities.

    ``counts`` are the multiplicities of each distinct value; they need not
    be normalized.  Zero counts are ignored.

    Examples
    --------
    >>> round(entropy_of_counts([1, 1, 1, 1], base=2), 6)
    2.0
    """
    arr = np.asarray([c for c in counts if c], dtype=np.float64)
    if arr.size == 0:
        raise DistributionError("entropy of an empty count vector is undefined")
    if np.any(arr < 0):
        raise DistributionError("counts must be non-negative")
    total = float(arr.sum())
    h = math.log(total) - float((arr * np.log(arr)).sum()) / total
    return _convert(max(h, 0.0), base)


def entropy_of_probs(probs: Iterable[float], *, base: float | None = None) -> float:
    """Entropy of an explicit probability vector (must sum to 1)."""
    arr = np.asarray([p for p in probs if p > 0.0], dtype=np.float64)
    if arr.size == 0:
        raise DistributionError("entropy of an empty distribution is undefined")
    total = float(arr.sum())
    if abs(total - 1.0) > 1e-6:
        raise DistributionError(f"probabilities sum to {total}, expected 1")
    h = -float((arr * np.log(arr)).sum())
    return _convert(max(h, 0.0), base)


def joint_entropy(
    relation: Relation,
    attributes: Iterable[str],
    *,
    base: float | None = None,
) -> float:
    """``H(attributes)`` under the empirical distribution of ``relation``.

    This is the joint entropy of the (possibly multi-attribute) projection,
    computed from projection multiplicities.  For the full attribute set it
    equals ``log N`` because a relation instance is a set.
    """
    if relation.is_empty():
        raise DistributionError("entropy over an empty relation is undefined")
    counts = relation.projection_counts(attributes)
    return entropy_of_counts(counts.values(), base=base)


def relation_entropy(relation: Relation, *, base: float | None = None) -> float:
    """``H(Ω) = log N`` for a relation instance of size ``N``."""
    if relation.is_empty():
        raise DistributionError("entropy over an empty relation is undefined")
    return _convert(math.log(len(relation)), base)


def conditional_entropy(
    relation: Relation,
    targets: Iterable[str],
    given: Iterable[str],
    *,
    base: float | None = None,
) -> float:
    """``H(targets | given) = H(targets ∪ given) − H(given)``.

    Clamped at zero to absorb floating-point noise.
    """
    targets = tuple(targets)
    given = tuple(given)
    joint = joint_entropy(relation, set(targets) | set(given), base=base)
    if not given:
        return joint
    return max(joint - joint_entropy(relation, given, base=base), 0.0)


def max_entropy(support_size: int, *, base: float | None = None) -> float:
    """``log(support_size)`` — the uniform-distribution entropy ceiling."""
    if support_size <= 0:
        raise DistributionError("support size must be positive")
    return _convert(math.log(support_size), base)

"""Entropy estimators beyond the plug-in (maximum-likelihood) one.

The paper's Proposition 5.4 quantifies the *negative bias* of the
plug-in entropy under the random relation model:
``0 ≤ log d_A − E[H(A_S)] ≤ C(d_B)``.  This module provides the two
classic bias-corrected estimators so users analyzing sampled data can
compare:

* :func:`miller_madow` — plug-in + ``(K−1)/(2N)`` first-order bias
  correction (K = observed support size);
* :func:`jackknife` — the leave-one-out jackknife estimator.

Both reduce the deficit measured in experiment E4; an ablation bench
(`benchmarks/test_bench_estimators.py`) quantifies by how much.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import DistributionError
from repro.info.entropy import entropy_of_counts
from repro.relations.relation import Relation


def _counts_array(counts: Iterable[int]) -> np.ndarray:
    """Coerce counts to a positive int64 ndarray (zeros masked, no loop)."""
    if isinstance(counts, np.ndarray):
        arr = counts.astype(np.int64, copy=False)
    else:
        if not isinstance(counts, (list, tuple)):
            counts = list(counts)
        arr = np.asarray(counts, dtype=np.int64)
    if arr.size:
        lo = int(arr.min())
        if lo < 0:
            raise DistributionError("counts must be non-negative")
        if lo == 0:
            arr = arr[arr != 0]
    if arr.size == 0:
        raise DistributionError("entropy of an empty count vector is undefined")
    return arr


def plug_in(counts: Iterable[int], *, base: float | None = None) -> float:
    """The maximum-likelihood (plug-in) estimator — alias of the default."""
    return entropy_of_counts(counts, base=base)


def miller_madow(counts: Iterable[int], *, base: float | None = None) -> float:
    """Miller–Madow estimator: plug-in plus ``(K−1)/(2N)`` (nats).

    ``K`` is the number of observed distinct values.  First-order bias
    correction; can overshoot ``log K`` on tiny samples (not clamped —
    the estimator is reported as defined).
    """
    import math

    arr = _counts_array(counts)
    n = int(arr.sum())
    k = int(arr.size)
    value = entropy_of_counts(arr) + (k - 1) / (2.0 * n)
    if base is not None:
        value /= math.log(base)
    return value


def jackknife(counts: Iterable[int], *, base: float | None = None) -> float:
    """Leave-one-out jackknife estimator.

    ``H_JK = N·H − (N−1)/N · Σ_j c_j · H_{−j}`` where ``H_{−j}`` is the
    plug-in entropy with one observation of value ``j`` removed.
    Computed in closed form from the count vector (vectorized over the
    distinct values — no Python-level loop).
    """
    import math

    arr = _counts_array(counts).astype(np.float64)
    n = int(arr.sum())
    if n < 2:
        raise DistributionError("jackknife needs at least two observations")
    h_full = entropy_of_counts(arr)

    # Plug-in entropy of the full sample: H = log n − S/n with
    # S = Σ c log c.  Removing one observation of a value with count c
    # gives n' = n − 1 and S' = S − c log c + (c−1) log(c−1).
    c_log_c = arr * np.log(arr)
    s_full = float(c_log_c.sum())
    c_minus_1 = arr - 1.0
    s_minus = s_full - c_log_c + c_minus_1 * np.log(np.maximum(c_minus_1, 1.0))
    h_minus = math.log(n - 1) - s_minus / (n - 1)
    loo_sum = float(arr @ h_minus)
    value = n * h_full - (n - 1) / n * loo_sum
    value = max(value, 0.0)
    if base is not None:
        value /= math.log(base)
    return value


def estimate_joint_entropy(
    relation: Relation,
    attributes: Iterable[str],
    *,
    estimator: str = "plug_in",
    base: float | None = None,
) -> float:
    """Joint entropy of a projection under a chosen estimator.

    ``estimator`` is ``"plug_in"``, ``"miller_madow"``, or
    ``"jackknife"``.
    """
    estimators = {
        "plug_in": plug_in,
        "miller_madow": miller_madow,
        "jackknife": jackknife,
    }
    if estimator not in estimators:
        raise DistributionError(
            f"unknown estimator {estimator!r}; choose from {sorted(estimators)}"
        )
    counts = relation.projection_count_values(attributes)
    return estimators[estimator](counts, base=base)

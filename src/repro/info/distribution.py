"""Empirical (and general finite) distributions over attribute tuples.

The paper associates with every relation instance ``R`` of size ``N`` its
*empirical distribution*: the uniform distribution assigning ``1/N`` to
each tuple (Section 2.2).  :class:`EmpiricalDistribution` generalizes this
slightly to arbitrary finite distributions over named tuples, since the
variational results of Section 3 hold for any joint distribution ``P``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.errors import DistributionError, UnknownAttributeError
from repro.relations.relation import Relation
from repro.relations.schema import Row

#: Tolerance for "probabilities sum to one" checks.
_SUM_TOLERANCE = 1e-9


class EmpiricalDistribution:
    """A finite joint distribution over tuples of named attributes.

    Parameters
    ----------
    attributes:
        Attribute names, fixing tuple layout.
    probabilities:
        Mapping ``tuple -> probability``.  Probabilities must be
        non-negative and sum to 1 (within tolerance); zero-probability
        entries are dropped.

    Examples
    --------
    >>> p = EmpiricalDistribution(("A", "B"), {(0, 0): 0.5, (1, 1): 0.5})
    >>> p.prob((0, 0))
    0.5
    >>> p.marginal(["A"]).prob((1,))
    0.5
    """

    __slots__ = ("_attributes", "_index", "_probs")

    def __init__(
        self,
        attributes: Iterable[str],
        probabilities: Mapping[Row, float],
    ) -> None:
        self._attributes = tuple(attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise DistributionError("duplicate attribute names")
        if not self._attributes:
            raise DistributionError("a distribution needs at least one attribute")
        self._index = {name: i for i, name in enumerate(self._attributes)}
        probs: dict[Row, float] = {}
        total = 0.0
        arity = len(self._attributes)
        for row, p in probabilities.items():
            if p < -_SUM_TOLERANCE:
                raise DistributionError(f"negative probability {p} for {row!r}")
            if len(row) != arity:
                raise DistributionError(
                    f"tuple {row!r} has arity {len(row)}, expected {arity}"
                )
            if p > 0.0:
                probs[tuple(row)] = probs.get(tuple(row), 0.0) + p
                total += p
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(f"probabilities sum to {total}, expected 1")
        self._probs = probs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "EmpiricalDistribution":
        """The uniform distribution over the tuples of ``relation``."""
        n = len(relation)
        if n == 0:
            raise DistributionError(
                "the empirical distribution of an empty relation is undefined"
            )
        p = 1.0 / n
        return cls(relation.schema.names, {row: p for row in relation})

    @classmethod
    def from_counts(
        cls, attributes: Iterable[str], counts: Mapping[Row, int]
    ) -> "EmpiricalDistribution":
        """Empirical distribution of a multiset given by multiplicities."""
        total = sum(counts.values())
        if total <= 0:
            raise DistributionError("counts must have positive total")
        return cls(attributes, {row: c / total for row, c in counts.items()})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in tuple-layout order."""
        return self._attributes

    def support(self) -> frozenset[Row]:
        """Tuples with positive probability."""
        return frozenset(self._probs)

    def support_size(self) -> int:
        """Number of tuples with positive probability."""
        return len(self._probs)

    def prob(self, row: Row) -> float:
        """Probability of ``row`` (0 if outside the support)."""
        return self._probs.get(tuple(row), 0.0)

    def items(self):
        """Iterate ``(tuple, probability)`` pairs."""
        return self._probs.items()

    def is_uniform(self, *, tolerance: float = 1e-9) -> bool:
        """Whether all support points carry (nearly) equal mass."""
        if not self._probs:
            return True
        target = 1.0 / len(self._probs)
        return all(abs(p - target) <= tolerance for p in self._probs.values())

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def canonical_order(self, names: Iterable[str]) -> tuple[str, ...]:
        """Order ``names`` by their layout position (mirrors RelationSchema)."""
        wanted = set(names)
        unknown = wanted - set(self._attributes)
        if unknown:
            raise UnknownAttributeError(
                f"unknown attributes {sorted(unknown)}; "
                f"distribution has {list(self._attributes)}"
            )
        return tuple(n for n in self._attributes if n in wanted)

    def marginal(self, names: Iterable[str]) -> "EmpiricalDistribution":
        """The marginal distribution ``P[names]``.

        Output attribute order is canonical (layout order), so marginals
        onto equal attribute *sets* are identical.
        """
        ordered = self.canonical_order(names)
        if not ordered:
            raise UnknownAttributeError("marginal onto the empty attribute set")
        positions = tuple(self._index[n] for n in ordered)
        out: dict[Row, float] = {}
        for row, p in self._probs.items():
            key = tuple(row[i] for i in positions)
            out[key] = out.get(key, 0.0) + p
        return EmpiricalDistribution(ordered, out)

    def marginal_probs(self, names: Iterable[str]) -> dict[Row, float]:
        """Marginal as a plain dict (avoids re-validation on hot paths)."""
        ordered = self.canonical_order(names)
        positions = tuple(self._index[n] for n in ordered)
        out: dict[Row, float] = {}
        for row, p in self._probs.items():
            key = tuple(row[i] for i in positions)
            out[key] = out.get(key, 0.0) + p
        return out

    def entropy(self, *, base: float | None = None) -> float:
        """Shannon entropy ``H(P)`` in nats (or in the given ``base``)."""
        h = -sum(p * math.log(p) for p in self._probs.values() if p > 0.0)
        if base is not None:
            h /= math.log(base)
        return max(h, 0.0)

    def restrict(self, name: str, value) -> "EmpiricalDistribution":
        """The conditional distribution ``P(· | name = value)``."""
        pos = self._index.get(name)
        if pos is None:
            raise UnknownAttributeError(f"unknown attribute {name!r}")
        mass = {
            row: p for row, p in self._probs.items() if row[pos] == value
        }
        total = sum(mass.values())
        if total <= 0.0:
            raise DistributionError(
                f"conditioning event {name}={value!r} has probability 0"
            )
        return EmpiricalDistribution(
            self._attributes, {row: p / total for row, p in mass.items()}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EmpiricalDistribution):
            return NotImplemented
        if self._attributes != other._attributes:
            return False
        keys = set(self._probs) | set(other._probs)
        return all(
            math.isclose(
                self._probs.get(k, 0.0), other._probs.get(k, 0.0), abs_tol=1e-9
            )
            for k in keys
        )

    def __hash__(self) -> int:  # pragma: no cover - defined for API symmetry
        return hash(self._attributes)

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution({list(self._attributes)}, "
            f"support={len(self._probs)})"
        )

    def total_variation(self, other: "EmpiricalDistribution") -> float:
        """Total variation distance ``½ Σ |P − Q|`` to another distribution."""
        if self._attributes != other._attributes:
            raise DistributionError(
                "total variation needs identical attribute layouts"
            )
        keys = set(self._probs) | set(other._probs)
        return 0.5 * sum(
            abs(self._probs.get(k, 0.0) - other._probs.get(k, 0.0)) for k in keys
        )

"""Pluggable entropy backends: exact columnar counts or bounded-memory sketches.

The :class:`~repro.info.engine.EntropyEngine` memoizes ``H(Y)`` per
attribute subset; *how* each entropy is produced is delegated to an
:class:`EntropyBackend`:

* :class:`ExactEntropyBackend` — the plug-in entropy from the relation's
  exact columnar multiplicity counts (the PR 1 hot path; bit-identical
  to the pre-backend engine);
* :class:`SketchEntropyBackend` — a **one-pass, bounded-memory
  estimator**: the subset's packed keys are streamed in chunks through an
  :class:`EntropySketch` (exact counts up to a capacity, with overflow
  spilling into a CountMin sketch plus a KMV distinct-sample), and the
  entropy estimate carries a Miller–Madow bias correction.

Backends also answer the spurious-loss question (``ρ``), so the whole
``H``/``J``/``ρ`` triple of a mined schema can be produced without the
exact group-by machinery: the sketch backend estimates each support
split's join size with a streaming per-separator distinct counter
(exact under capacity, degrading to the distinct-count uniformity
estimate ``|Π_L|·|Π_R|/|Π_S|``) and combines splits with the paper's
Proposition 5.1 product form.

Sketch states are mergeable (:meth:`EntropySketch.merge`), mirroring the
``EntropyEngine.cache_snapshot`` / ``merge_cache`` pattern of the
parallel split scorer: per-chunk partial states can be built
independently (e.g. by future shard workers) and folded together, and
the result is identical to one sequential pass — pinned by
``tests/test_backends.py``.

While every queried subset stays within the sketch capacity the sketch
counts are *exact*, so on small relations the backend's ``H`` equals the
plug-in entropy plus its Miller–Madow term and its ``ρ`` equals the
exact product-bound value — the property the tolerance tests rely on.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.relations.io import DEFAULT_CHUNK_ROWS as DEFAULT_SKETCH_CHUNK_ROWS
from repro.relations.relation import Relation

#: Default exact-count capacity before a sketch spills to CountMin.
DEFAULT_SKETCH_CAPACITY = 1 << 17

_U64 = np.uint64
#: splitmix64 constants (Steele et al.) for the vectorized key hash.
_MIX_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_2 = _U64(0x94D049BB133111EB)
_GOLDEN = _U64(0x9E3779B97F4A7C15)


def _hash_u64(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 key array."""
    x = keys.astype(_U64, copy=True)
    x += _GOLDEN
    x ^= x >> _U64(30)
    x *= _MIX_1
    x ^= x >> _U64(27)
    x *= _MIX_2
    x ^= x >> _U64(31)
    return x


def iter_packed_key_chunks(
    relation: Relation,
    positions: Sequence[int],
    chunk_rows: int,
) -> Iterator[np.ndarray]:
    """Stream one subset's row keys in chunks, without a full-length pack.

    When the subset's exact mixed-radix product fits in int64 the keys
    are the same exact packs :meth:`ColumnStore.packed_key` would
    produce (collision-free); otherwise each column is folded in with a
    splitmix64 mix in the uint64 ring — a deterministic hash key whose
    collisions are what make the sketch backend *approximate* on
    astronomically wide keyspaces.  Chunking is positional, so zipping
    several subsets' iterators walks the same rows in lockstep.
    """
    store = relation.columns()
    n = len(store)
    if not positions:
        for start in range(0, max(n, 1), chunk_rows):
            yield np.zeros(min(chunk_rows, max(n - start, 0)), dtype=np.int64)
        return
    radix = 1
    exact = True
    for position in positions:
        radix *= max(store.cards[position], 1)
        if radix >= 1 << 62:
            exact = False
            break
    for start in range(0, n, chunk_rows):
        stop = min(start + chunk_rows, n)
        if exact:
            key = store.codes[positions[0]][start:stop].copy()
            for position in positions[1:]:
                card = store.cards[position]
                if card <= 1:
                    continue
                key *= card
                key += store.codes[position][start:stop]
            yield key
        else:
            key = np.zeros(stop - start, dtype=_U64)
            for position in positions:
                key = _hash_u64(
                    key ^ store.codes[position][start:stop].astype(_U64)
                )
            yield key.view(np.int64)


class CountMinSketch:
    """A classic CountMin frequency sketch over int64 keys.

    ``depth`` independent hash rows of ``width`` counters; point
    estimates take the row-wise minimum (always an over-estimate).
    Merging adds tables element-wise (requires identical seeds, which
    all sketches built from one :class:`SketchParams` share).
    """

    __slots__ = ("depth", "width", "table", "_salts")

    def __init__(self, depth: int, width: int, seed: int) -> None:
        self.depth = depth
        self.width = width
        self.table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        self._salts = rng.integers(1, 1 << 62, size=depth, dtype=np.int64).astype(
            _U64
        )

    def _indices(self, keys: np.ndarray, row: int) -> np.ndarray:
        hashed = _hash_u64(keys.astype(_U64) ^ self._salts[row])
        return (hashed % _U64(self.width)).astype(np.int64)

    def update(self, keys: np.ndarray, counts: np.ndarray) -> None:
        """Add ``counts[i]`` occurrences of ``keys[i]``."""
        for row in range(self.depth):
            np.add.at(self.table[row], self._indices(keys, row), counts)

    def point_estimate(self, keys: np.ndarray) -> np.ndarray:
        """Estimated multiplicity of each key (row-wise minimum)."""
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        estimates = np.empty((self.depth, keys.size), dtype=np.int64)
        for row in range(self.depth):
            estimates[row] = self.table[row][self._indices(keys, row)]
        return estimates.min(axis=0)

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch built with the same seeds into this one."""
        if (self.depth, self.width) != (other.depth, other.width):
            raise DistributionError(
                "cannot merge CountMin sketches of different shapes"
            )
        self.table += other.table


class KMVSample:
    """K-minimum-values distinct sketch that also keeps the sampled keys.

    The ``k`` smallest 64-bit hash values among all inserted keys give a
    distinct-count estimate (exact while fewer than ``k`` distinct keys
    were seen), and the keys achieving them form a uniform sample of the
    *distinct* key population — which the sketch backend combines with
    CountMin point estimates to extrapolate the tail's entropy mass.
    """

    __slots__ = ("k", "_hashes", "_keys")

    def __init__(self, k: int) -> None:
        self.k = k
        self._hashes = np.empty(0, dtype=_U64)
        self._keys = np.empty(0, dtype=np.int64)

    def update(self, keys: np.ndarray) -> None:
        """Insert distinct candidate keys (duplicates collapse by hash)."""
        if keys.size == 0:
            return
        hashes = _hash_u64(keys.astype(_U64))
        merged_h = np.concatenate([self._hashes, hashes])
        merged_k = np.concatenate([self._keys, keys.astype(np.int64)])
        order = np.argsort(merged_h, kind="stable")
        merged_h = merged_h[order]
        merged_k = merged_k[order]
        distinct = np.ones(merged_h.size, dtype=bool)
        distinct[1:] = merged_h[1:] != merged_h[:-1]
        merged_h = merged_h[distinct][: self.k]
        merged_k = merged_k[distinct][: self.k]
        self._hashes = merged_h
        self._keys = merged_k

    def merge(self, other: "KMVSample") -> None:
        self.update(other._keys)

    def sample_keys(self) -> np.ndarray:
        """The retained uniform sample of distinct keys."""
        return self._keys

    def distinct_estimate(self) -> float:
        """Estimated number of distinct inserted keys."""
        size = self._hashes.size
        if size < self.k:
            return float(size)
        kth = float(self._hashes[-1]) / float(1 << 64)
        if kth <= 0.0:
            return float(size)
        return (self.k - 1) / kth


class SketchParams:
    """Shared configuration (and hash seeds) for one family of sketches."""

    __slots__ = ("capacity", "cm_depth", "cm_width", "kmv_size", "seed")

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_SKETCH_CAPACITY,
        cm_depth: int = 4,
        cm_width: int = 1 << 13,
        kmv_size: int = 256,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise DistributionError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cm_depth = cm_depth
        self.cm_width = cm_width
        self.kmv_size = kmv_size
        self.seed = seed


class EntropySketch:
    """Bounded-memory streaming multiplicity counter for one key stream.

    Counts are exact (a key → count dict) while the number of distinct
    keys stays within ``params.capacity``; past that, *new* keys spill
    into a CountMin sketch + KMV distinct-sample while already-tracked
    keys keep exact counts.  :meth:`entropy_nats` returns the plug-in
    entropy of the (partly estimated) count profile plus the
    Miller–Madow ``(K̂ − 1)/(2N)`` bias correction.

    Two sketches built from the same :class:`SketchParams` can be
    :meth:`merge`-d; a merge of per-chunk states equals one sequential
    pass over the concatenated stream.
    """

    __slots__ = ("_counts", "_cm", "_kmv", "_params", "_tail_mass", "_total")

    def __init__(self, params: SketchParams) -> None:
        self._params = params
        self._counts: dict[int, int] = {}
        self._cm: CountMinSketch | None = None
        self._kmv: KMVSample | None = None
        self._tail_mass = 0
        self._total = 0

    # -- ingestion ------------------------------------------------------
    def update(self, keys: np.ndarray) -> None:
        """Fold one chunk of row keys into the sketch."""
        if keys.size == 0:
            return
        uniques, counts = np.unique(keys, return_counts=True)
        self._add_key_counts(uniques, counts)

    def _add_key_counts(self, uniques: np.ndarray, counts: np.ndarray) -> None:
        self._total += int(counts.sum())
        table = self._counts
        capacity = self._params.capacity
        overflow_keys: list[int] = []
        overflow_counts: list[int] = []
        for key, count in zip(uniques.tolist(), counts.tolist()):
            existing = table.get(key)
            if existing is not None:
                table[key] = existing + count
            elif len(table) < capacity:
                table[key] = count
            else:
                overflow_keys.append(key)
                overflow_counts.append(count)
        if overflow_keys:
            self._spill(
                np.asarray(overflow_keys, dtype=np.int64),
                np.asarray(overflow_counts, dtype=np.int64),
            )

    def _spill(self, keys: np.ndarray, counts: np.ndarray) -> None:
        if self._cm is None:
            self._cm = CountMinSketch(
                self._params.cm_depth, self._params.cm_width, self._params.seed
            )
            self._kmv = KMVSample(self._params.kmv_size)
        self._cm.update(keys, counts)
        self._kmv.update(keys)
        self._tail_mass += int(counts.sum())

    def merge(self, other: "EntropySketch") -> None:
        """Fold another sketch (same params) into this one."""
        if other._params is not self._params and (
            other._params.seed != self._params.seed
            or other._params.capacity != self._params.capacity
            or other._params.cm_depth != self._params.cm_depth
            or other._params.cm_width != self._params.cm_width
            or other._params.kmv_size != self._params.kmv_size
        ):
            raise DistributionError(
                "cannot merge sketches built from incompatible params"
            )
        if other._counts:
            items = list(other._counts.items())
            keys = np.asarray([k for k, _ in items], dtype=np.int64)
            counts = np.asarray([c for _, c in items], dtype=np.int64)
            self._add_key_counts(keys, counts)
        if other._cm is not None:
            if self._cm is None:
                self._cm = CountMinSketch(
                    self._params.cm_depth,
                    self._params.cm_width,
                    self._params.seed,
                )
                self._kmv = KMVSample(self._params.kmv_size)
            self._cm.merge(other._cm)
            self._kmv.merge(other._kmv)
            self._tail_mass += other._tail_mass
            self._total += other._tail_mass
            # other's exact counts were re-added above; its tail total was
            # folded here.  (other._total includes both.)

    # -- estimates ------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """Whether no key ever spilled (counts are exact multiplicities)."""
        return self._tail_mass == 0

    def total(self) -> int:
        """Total stream mass folded in so far."""
        return self._total

    def distinct_estimate(self) -> float:
        """Estimated number of distinct keys (exact while unspilled)."""
        tail = self._kmv.distinct_estimate() if self._kmv is not None else 0.0
        return len(self._counts) + tail

    def entropy_nats(self, n: int) -> float:
        """Miller–Madow-corrected entropy estimate of the stream (nats).

        ``n`` is the stream length (``Σ counts``); passing it explicitly
        lets callers evaluate partial merges.  Exact regime: exactly the
        plug-in entropy plus ``(K − 1)/(2N)``.
        """
        if n <= 0:
            raise DistributionError("entropy of an empty stream is undefined")
        s = 0.0
        if self._counts:
            counts = np.fromiter(
                self._counts.values(), dtype=np.float64, count=len(self._counts)
            )
            s += float(counts @ np.log(counts))
        k_hat = float(len(self._counts))
        if self._tail_mass and self._kmv is not None and self._cm is not None:
            tail_distinct = max(self._kmv.distinct_estimate(), 1.0)
            sample = self._kmv.sample_keys()
            estimates = self._cm.point_estimate(sample).astype(np.float64)
            estimates = np.maximum(estimates, 1.0)
            s += tail_distinct * float(
                np.mean(estimates * np.log(estimates))
            )
            k_hat += tail_distinct
        value = math.log(n) - s / n
        value = min(max(value, 0.0), math.log(n))
        return value + (k_hat - 1.0) / (2.0 * n)


class EntropyBackend:
    """How an :class:`~repro.info.engine.EntropyEngine` produces ``H`` and ``ρ``.

    Subclasses implement :meth:`entropy_nats` (one canonical attribute
    subset → entropy in nats) and :meth:`spurious_loss` (``ρ(R, S)`` of
    a join tree).  The engine supplies memoization on top, so backends
    stay stateless per query.
    """

    #: Registry name (CLI value; see :func:`available_backends`).
    name = "abstract"

    def entropy_nats(self, relation: Relation, key: tuple[str, ...]) -> float:
        """``H(key)`` in nats; ``key`` is canonical and non-empty."""
        raise NotImplementedError

    def spurious_loss(self, relation: Relation, jointree) -> float:
        """``ρ(R, S)`` for the schema defined by ``jointree``."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-ready description (CLI reports embed it)."""
        return {"backend": self.name}


class ExactEntropyBackend(EntropyBackend):
    """Exact plug-in entropies from the columnar multiplicity counts.

    Bit-identical to the pre-backend engine: one
    ``projection_count_values`` group-by per subset, and the exact
    message-passing join counter (via the relation's
    :class:`~repro.core.evalcontext.EvalContext`) for ``ρ``.
    """

    name = "exact"

    def entropy_nats(self, relation: Relation, key: tuple[str, ...]) -> float:
        n = len(relation)
        counts = relation.projection_count_values(key)
        c = counts.astype(np.float64, copy=False)
        return max(math.log(n) - float(c @ np.log(c)) / n, 0.0)

    def spurious_loss(self, relation: Relation, jointree) -> float:
        from repro.core.loss import spurious_loss

        return spurious_loss(relation, jointree)


class _SplitJoinEstimator:
    """Streaming ``|R[left] ⋈ R[right]|`` estimate for one support split.

    Exact mode tracks, per separator group, the number of distinct
    left-side and right-side keys (``|φ| = Σ_s d_L(s)·d_R(s)``) using
    global seen-key sets.  When the tracked key population exceeds the
    capacity it degrades to three KMV distinct counters and the
    uniformity estimate ``D_L · D_R / D_S`` — the classic cardinality
    model, exact when group sizes are balanced.
    """

    __slots__ = ("_dl", "_dr", "_exact", "_kmv", "_params", "_seen")

    def __init__(self, params: SketchParams) -> None:
        self._params = params
        self._dl: dict[int, int] = {}
        self._dr: dict[int, int] = {}
        self._seen: tuple[set, set] = (set(), set())
        self._exact = True
        self._kmv: tuple[KMVSample, KMVSample, KMVSample] | None = None

    def _degrade(self) -> None:
        self._exact = False
        self._kmv = (
            KMVSample(self._params.kmv_size),
            KMVSample(self._params.kmv_size),
            KMVSample(self._params.kmv_size),
        )
        # Seed the distinct counters with everything already seen.
        left_seen, right_seen = self._seen
        self._kmv[0].update(np.fromiter(left_seen, dtype=np.int64, count=len(left_seen)))
        self._kmv[1].update(np.fromiter(right_seen, dtype=np.int64, count=len(right_seen)))
        seps = self._dl.keys() | self._dr.keys()
        self._kmv[2].update(np.fromiter(seps, dtype=np.int64, count=len(seps)))
        self._dl = {}
        self._dr = {}
        self._seen = (set(), set())

    def update(
        self,
        sep_keys: np.ndarray,
        left_keys: np.ndarray,
        right_keys: np.ndarray,
    ) -> None:
        """Fold one lockstep chunk of (separator, left, right) row keys."""
        if not self._exact:
            assert self._kmv is not None
            self._kmv[0].update(np.unique(left_keys))
            self._kmv[1].update(np.unique(right_keys))
            self._kmv[2].update(np.unique(sep_keys))
            return
        for side, keys, groups in (
            (0, left_keys, self._dl),
            (1, right_keys, self._dr),
        ):
            uniques, first = np.unique(keys, return_index=True)
            seps = sep_keys[first]
            seen = self._seen[side]
            for key, sep in zip(uniques.tolist(), seps.tolist()):
                if key not in seen:
                    seen.add(key)
                    groups[sep] = groups.get(sep, 0) + 1
        if (
            len(self._seen[0]) + len(self._seen[1])
            > self._params.capacity
        ):
            self._degrade()

    def estimate(self) -> float:
        """The (estimated) split join size."""
        if self._exact:
            dr = self._dr
            return float(
                sum(count * dr.get(sep, 0) for sep, count in self._dl.items())
            )
        assert self._kmv is not None
        d_left = self._kmv[0].distinct_estimate()
        d_right = self._kmv[1].distinct_estimate()
        d_sep = max(self._kmv[2].distinct_estimate(), 1.0)
        return max(d_left * d_right / d_sep, d_left, d_right)


class SketchEntropyBackend(EntropyBackend):
    """Approximate ``H``/``J``/``ρ`` from one bounded-memory pass per query.

    Parameters
    ----------
    chunk_rows:
        Rows per streamed pass chunk (ties to the CLI's ``--chunk-rows``).
    capacity:
        Exact-count budget per sketch before spilling to CountMin.
    cm_depth, cm_width:
        CountMin table shape for spilled (tail) keys.
    kmv_size:
        Size of the KMV distinct-sample used for tail extrapolation.
    seed:
        Hash seed shared by every sketch the backend builds (merges
        require it).

    While all queried subsets stay under ``capacity`` the estimates are
    deterministic and exactly ``plug-in + Miller–Madow``; beyond it they
    are genuine sketch estimates with bounded memory.
    """

    name = "sketch"

    def __init__(
        self,
        *,
        chunk_rows: int | None = None,
        capacity: int = DEFAULT_SKETCH_CAPACITY,
        cm_depth: int = 4,
        cm_width: int = 1 << 13,
        kmv_size: int = 256,
        seed: int = 0,
    ) -> None:
        self.chunk_rows = (
            chunk_rows if chunk_rows is not None else DEFAULT_SKETCH_CHUNK_ROWS
        )
        if self.chunk_rows < 1:
            raise DistributionError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        self.params = SketchParams(
            capacity=capacity,
            cm_depth=cm_depth,
            cm_width=cm_width,
            kmv_size=kmv_size,
            seed=seed,
        )

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "chunk_rows": self.chunk_rows,
            "capacity": self.params.capacity,
            "cm_depth": self.params.cm_depth,
            "cm_width": self.params.cm_width,
            "kmv_size": self.params.kmv_size,
            "seed": self.params.seed,
        }

    # -- entropy --------------------------------------------------------
    def subset_sketch(
        self, relation: Relation, attributes: Iterable[str]
    ) -> EntropySketch:
        """One pass over the subset's keys, folded into a fresh sketch."""
        key = relation.schema.canonical_order(attributes)
        positions = relation.schema.indices(key)
        sketch = EntropySketch(self.params)
        for keys in iter_packed_key_chunks(relation, positions, self.chunk_rows):
            sketch.update(keys)
        return sketch

    def entropy_nats(self, relation: Relation, key: tuple[str, ...]) -> float:
        return self.subset_sketch(relation, key).entropy_nats(len(relation))

    # -- spurious loss --------------------------------------------------
    def split_join_size_estimate(
        self,
        relation: Relation,
        left: Iterable[str],
        right: Iterable[str],
    ) -> float:
        """Streaming estimate of ``|R[left] ⋈ R[right]|``."""
        schema = relation.schema
        left_key = schema.canonical_order(left)
        right_key = schema.canonical_order(right)
        sep_key = schema.canonical_order(set(left_key) & set(right_key))
        estimator = _SplitJoinEstimator(self.params)
        chunks = zip(
            iter_packed_key_chunks(
                relation, schema.indices(sep_key), self.chunk_rows
            ),
            iter_packed_key_chunks(
                relation, schema.indices(left_key), self.chunk_rows
            ),
            iter_packed_key_chunks(
                relation, schema.indices(right_key), self.chunk_rows
            ),
        )
        for sep_chunk, left_chunk, right_chunk in chunks:
            estimator.update(sep_chunk, left_chunk, right_chunk)
        return estimator.estimate()

    def spurious_loss(self, relation: Relation, jointree) -> float:
        """``ρ̂(R, S)``: per-split streaming estimates, product-combined.

        Each rooted-split join size is estimated in one bounded-memory
        pass; the splits are combined with the Proposition 5.1 product
        form ``1 + ρ̂ = ∏ᵢ (1 + ρ̂ᵢ)`` (an upper-bound-flavoured
        estimate; exact for two-bag schemas in the exact regime).
        """
        if relation.is_empty():
            raise DistributionError("ρ(R, S) is undefined for an empty relation")
        n = len(relation)
        factor = 1.0
        for split in jointree.rooted_splits(None):
            estimate = self.split_join_size_estimate(
                relation, split.prefix, split.suffix
            )
            factor *= max(estimate, float(n)) / n
        return max(factor - 1.0, 0.0)


def available_backends() -> tuple[str, ...]:
    """Registered backend names (CLI ``--backend`` choices)."""
    return (ExactEntropyBackend.name, SketchEntropyBackend.name)


def make_backend(
    spec: "str | EntropyBackend | None" = None,
    *,
    chunk_rows: int | None = None,
) -> EntropyBackend:
    """Resolve a backend from a name, an instance, or ``None`` (exact).

    ``chunk_rows`` configures the sketch backend's streaming pass size
    and is ignored by the exact backend (and by ready instances).
    """
    if isinstance(spec, EntropyBackend):
        return spec
    if spec is None or spec == ExactEntropyBackend.name:
        return ExactEntropyBackend()
    if spec == SketchEntropyBackend.name:
        return SketchEntropyBackend(chunk_rows=chunk_rows)
    raise DistributionError(
        f"unknown entropy backend {spec!r}; known: "
        + ", ".join(available_backends())
    )

"""Memoizing entropy engine: one relation, one cache, all of ``H``/CMI.

Every quantity the paper computes — joint entropies ``H(Y)``, the CMIs
``I(Y;Z|X)`` that drive MVD mining, and the J-measure assembled from both —
reduces to projection multiplicity counts of a *single* relation instance.
:class:`EntropyEngine` wraps one relation and memoizes ``H(Y)`` (in nats)
per canonical attribute-subset key, so a lattice search that revisits
overlapping subsets (the discovery miner evaluates thousands of CMIs whose
four-entropy expansions share terms) computes each distinct entropy once,
from the relation's vectorized columnar counts.

Cache keying and invalidation
-----------------------------
Keys are the attribute subsets in the *relation schema's canonical order*
(``schema.canonical_order``), so every spelling of the same set hits the
same entry.  Relations are immutable, hence the memo is never invalidated:
derived relations (projections, selections, unions) are new objects with
fresh engines.  Use :meth:`EntropyEngine.for_relation` to get the engine
cached *on* the relation, which is how the discovery, core, and info
layers all end up sharing one cache per relation instance.

Backends
--------
*How* each memoized entropy is produced is pluggable
(:mod:`repro.info.backends`): the default ``"exact"`` backend computes
plug-in entropies from the exact columnar counts (bit-identical to the
pre-backend engine), while ``"sketch"`` streams each subset's keys in
bounded-memory chunks through CountMin/KMV counters and returns
Miller–Madow-corrected estimates.  The memo layer is backend-agnostic.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable

from repro.errors import DistributionError
from repro.info.backends import EntropyBackend, make_backend
from repro.relations.relation import Relation


def _convert(value_nats: float, base: float | None) -> float:
    if base is None:
        return value_nats
    if base <= 0 or base == 1.0:
        raise DistributionError(f"log base must be positive and != 1, got {base}")
    return value_nats / math.log(base)


class EntropyEngine:
    """Vectorized, memoizing empirical-entropy oracle for one relation.

    All entropies are plug-in (maximum-likelihood) entropies of the
    relation's empirical distribution, in nats unless ``base`` is given —
    exactly the quantities of Section 2.2 of the paper.

    Examples
    --------
    >>> from repro.relations.schema import RelationSchema
    >>> schema = RelationSchema.from_names(["A", "B"])
    >>> r = Relation(schema, [(0, 0), (0, 1), (1, 0), (1, 1)])
    >>> engine = EntropyEngine.for_relation(r)
    >>> round(engine.entropy(["A"], base=2), 6)
    1.0
    >>> engine.cmi(["A"], ["B"])  # independent: I(A;B) = 0
    0.0
    """

    __slots__ = ("_backend", "_cache", "_log_n", "_n", "_relation")

    def __init__(
        self,
        relation: Relation,
        *,
        backend: "str | EntropyBackend | None" = None,
    ) -> None:
        self._relation = relation
        self._backend = make_backend(backend)
        self._cache: dict[tuple[str, ...], float] = {}
        self._n = len(relation)
        self._log_n = math.log(self._n) if self._n else None

    @classmethod
    def for_relation(
        cls,
        relation: Relation,
        *,
        backend: "str | EntropyBackend | None" = None,
    ) -> "EntropyEngine":
        """The engine cached on ``relation`` (created on first use).

        All library call sites route through this accessor, so any mix of
        ``joint_entropy`` / CMI / J-measure / miner calls against the same
        relation instance shares a single memo.

        With ``backend=None`` (the default) the cached engine is returned
        whatever backend it was built with.  Requesting a specific
        backend returns the cached engine when it matches; otherwise a
        fresh *detached* engine is built around the requested backend.
        **Only exact engines are ever cached on the relation**: an
        approximate backend must never leak into callers that asked for
        the default (e.g. an exact ``decompose`` report following a
        sketch-backed mining run), so non-exact requests always get
        detached engines.
        """
        engine = relation._engine
        if engine is not None:
            if backend is None or engine._matches_backend(backend):
                return engine
            return cls(relation, backend=backend)
        engine = cls(relation, backend=backend)
        if engine._backend.name == "exact":
            relation._engine = engine
        return engine

    def _matches_backend(self, backend: "str | EntropyBackend") -> bool:
        if isinstance(backend, EntropyBackend):
            return self._backend is backend
        return self._backend.name == backend

    @property
    def relation(self) -> Relation:
        """The wrapped relation."""
        return self._relation

    @property
    def backend(self) -> EntropyBackend:
        """The entropy backend producing this engine's (memoized) values."""
        return self._backend

    def key(self, attributes: Iterable[str]) -> tuple[str, ...]:
        """Canonical cache key for an attribute subset (schema order)."""
        return self._relation.schema.canonical_order(attributes)

    def cache_size(self) -> int:
        """Number of memoized entropy entries."""
        return len(self._cache)

    def cache_info(self) -> dict:
        """JSON-ready memo summary (the service's ``/stats`` embeds it).

        Long-lived holders of an engine (the service's dataset registry
        keeps one resident per dataset) report this to show how much
        cross-request amortization the shared memo is buying.
        """
        return {
            "backend": self._backend.name,
            "entries": len(self._cache),
            "n_rows": self._n,
        }

    def cache_snapshot(self) -> dict[tuple[str, ...], float]:
        """A shallow copy of the memo: canonical subset key → ``H`` (nats).

        Used by the parallel split scorer to ship a worker's newly
        computed entropies back to the parent process.
        """
        return dict(self._cache)

    def cache_entries_since(self, mark: int) -> dict[tuple[str, ...], float]:
        """Entries added after the first ``mark`` insertions.

        The memo only ever grows, so ``mark = cache_size()`` taken before
        a unit of work identifies exactly that work's new entries (dicts
        preserve insertion order) without copying the whole cache.
        """
        if mark <= 0:
            return dict(self._cache)
        return dict(itertools.islice(self._cache.items(), mark, None))

    def merge_cache(self, entries: dict[tuple[str, ...], float]) -> int:
        """Adopt precomputed entropies (canonical keys, nats).

        Entries already memoized locally are kept (both sides compute the
        same value for the same key, so precedence is irrelevant).
        Returns the number of newly added entries.  This is how the
        multiprocessing scorer folds per-worker memos into the run's
        shared engine.
        """
        added = 0
        cache = self._cache
        for key, value in entries.items():
            if key not in cache:
                cache[key] = value
                added += 1
        return added

    # ------------------------------------------------------------------
    # Entropies
    # ------------------------------------------------------------------
    def _entropy_nats(self, key: tuple[str, ...]) -> float:
        """``H(key)`` in nats; ``key`` must already be canonical."""
        if not key:
            return 0.0  # H(∅) = 0 (the empty-separator convention)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._log_n is None:
            raise DistributionError("entropy over an empty relation is undefined")
        value = max(self._backend.entropy_nats(self._relation, key), 0.0)
        self._cache[key] = value
        return value

    def entropy(
        self, attributes: Iterable[str], *, base: float | None = None
    ) -> float:
        """``H(attributes)`` under the relation's empirical distribution.

        The empty set yields ``H(∅) = 0``; unknown attribute names raise
        :class:`~repro.errors.UnknownAttributeError`.
        """
        return _convert(self._entropy_nats(self.key(attributes)), base)

    def entropies(
        self,
        subsets: Iterable[Iterable[str]],
        *,
        base: float | None = None,
    ) -> list[float]:
        """Batched :meth:`entropy` over several attribute subsets."""
        return [self.entropy(subset, base=base) for subset in subsets]

    def conditional_entropy(
        self,
        targets: Iterable[str],
        given: Iterable[str] = (),
        *,
        base: float | None = None,
    ) -> float:
        """``H(targets | given) = H(targets ∪ given) − H(given)`` (clamped)."""
        target_key = self.key(targets)
        given_key = self.key(given)
        joint = self._entropy_nats(self.key(set(target_key) | set(given_key)))
        if not given_key:
            return _convert(joint, base)
        return _convert(max(joint - self._entropy_nats(given_key), 0.0), base)

    def cmi(
        self,
        left: Iterable[str],
        right: Iterable[str],
        given: Iterable[str] = (),
        *,
        base: float | None = None,
    ) -> float:
        """``I(left; right | given)`` via the four-entropy formula (Eq. 4).

        The sides may overlap (Theorem 2.2 applies the measure to
        overlapping prefix/suffix unions); with empty ``given`` this is
        the plain mutual information.  Clamped at zero.
        """
        left = set(left)
        right = set(right)
        given = set(given)
        if not left or not right:
            raise DistributionError("mutual information needs non-empty sides")
        h_c = self._entropy_nats(self.key(given)) if given else 0.0
        h_ac = self._entropy_nats(self.key(left | given))
        h_bc = self._entropy_nats(self.key(right | given))
        h_abc = self._entropy_nats(self.key(left | right | given))
        return _convert(max(h_bc + h_ac - h_abc - h_c, 0.0), base)

    def mutual_information(
        self,
        left: Iterable[str],
        right: Iterable[str],
        *,
        base: float | None = None,
    ) -> float:
        """``I(left; right)`` — :meth:`cmi` with an empty separator."""
        return self.cmi(left, right, (), base=base)

"""Information-theory substrate: distributions, entropies, divergences."""

from repro.info.backends import (
    EntropyBackend,
    EntropySketch,
    ExactEntropyBackend,
    SketchEntropyBackend,
    available_backends,
    make_backend,
)
from repro.info.distribution import EmpiricalDistribution
from repro.info.engine import EntropyEngine
from repro.info.divergence import (
    conditional_mutual_information,
    distribution_conditional_mutual_information,
    interaction_deficit,
    kl_divergence,
    kl_divergence_to_callable,
    mutual_information,
)
from repro.info.entropy import (
    conditional_entropy,
    entropy_of_counts,
    entropy_of_probs,
    joint_entropy,
    max_entropy,
    relation_entropy,
)
from repro.info.estimators import (
    estimate_joint_entropy,
    jackknife,
    miller_madow,
    plug_in,
)
from repro.info.factorization import (
    FactorizedDistribution,
    junction_tree_factorization,
    marginal_preservation_gaps,
    models_tree,
)
from repro.info.functional import (
    functional_entropy_exact,
    functional_entropy_sample,
)

__all__ = [
    "EmpiricalDistribution",
    "EntropyBackend",
    "EntropyEngine",
    "EntropySketch",
    "ExactEntropyBackend",
    "FactorizedDistribution",
    "SketchEntropyBackend",
    "available_backends",
    "conditional_entropy",
    "conditional_mutual_information",
    "distribution_conditional_mutual_information",
    "entropy_of_counts",
    "entropy_of_probs",
    "estimate_joint_entropy",
    "functional_entropy_exact",
    "functional_entropy_sample",
    "jackknife",
    "interaction_deficit",
    "joint_entropy",
    "junction_tree_factorization",
    "kl_divergence",
    "kl_divergence_to_callable",
    "make_backend",
    "marginal_preservation_gaps",
    "max_entropy",
    "miller_madow",
    "models_tree",
    "mutual_information",
    "plug_in",
    "relation_entropy",
]

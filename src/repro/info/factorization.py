"""Junction-tree factorization ``P^T`` (Proposition 3.1, Eq. 10).

Given a joint distribution ``P`` and a join tree ``T`` with bags ``Ωᵢ``
and separators ``Δᵢ``,

    P^T(x) = ∏ᵢ P[Ωᵢ](x[Ωᵢ]) / ∏ᵢ P[Δᵢ](x[Δᵢ]).

``P^T`` is the KL-projection of ``P`` onto the distributions that model
``T`` (Lemma 3.4), it preserves every bag and separator marginal
(Lemma 3.3), and ``D_KL(P‖P^T) = J(T)`` (Theorem 3.2).

:class:`FactorizedDistribution` evaluates ``P^T`` *lazily*: its support is
the join of the bag-marginal supports, which can be astronomically larger
than ``P``'s support, so only pointwise evaluation plus an optional
materialization (for small instances) are provided.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DistributionError, JoinTreeError
from repro.info.distribution import EmpiricalDistribution
from repro.info.divergence import distribution_conditional_mutual_information
from repro.jointrees.jointree import JoinTree
from repro.relations.relation import Relation
from repro.relations.schema import RelationSchema, Row


class FactorizedDistribution:
    """``P^T`` for a base distribution ``P`` and join tree ``T``.

    Stores one marginal table per bag and per edge separator; evaluates
    the factorization pointwise.

    Parameters
    ----------
    base_dist:
        The joint distribution ``P``.
    jointree:
        A join tree whose attributes equal the distribution's attributes.
    """

    __slots__ = ("_attributes", "_bag_tables", "_base", "_index", "_sep_tables", "_tree")

    def __init__(self, base_dist: EmpiricalDistribution, jointree: JoinTree) -> None:
        tree_attrs = jointree.attributes()
        dist_attrs = frozenset(base_dist.attributes)
        if tree_attrs != dist_attrs:
            raise JoinTreeError(
                "join tree covers "
                f"{sorted(tree_attrs)} but the distribution has {sorted(dist_attrs)}"
            )
        self._base = base_dist
        self._tree = jointree
        self._attributes = base_dist.attributes
        self._index = {name: i for i, name in enumerate(self._attributes)}

        self._bag_tables: list[tuple[tuple[int, ...], dict[Row, float]]] = []
        for node in jointree.node_ids():
            bag_order = base_dist.canonical_order(jointree.bag(node))
            positions = tuple(self._index[a] for a in bag_order)
            self._bag_tables.append((positions, base_dist.marginal_probs(bag_order)))

        self._sep_tables: list[tuple[tuple[int, ...], dict[Row, float]]] = []
        for u, v in jointree.edges():
            separator = jointree.separator(u, v)
            if not separator:
                # An empty separator contributes a factor of 1.
                continue
            sep_order = base_dist.canonical_order(separator)
            positions = tuple(self._index[a] for a in sep_order)
            self._sep_tables.append((positions, base_dist.marginal_probs(sep_order)))

    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in tuple-layout order (same as the base)."""
        return self._attributes

    @property
    def jointree(self) -> JoinTree:
        """The join tree defining the factorization."""
        return self._tree

    def prob(self, row: Row) -> float:
        """``P^T(row)`` — zero when any bag marginal vanishes."""
        row = tuple(row)
        if len(row) != len(self._attributes):
            raise DistributionError(
                f"tuple arity {len(row)} != {len(self._attributes)}"
            )
        numerator = 1.0
        for positions, table in self._bag_tables:
            mass = table.get(tuple(row[i] for i in positions), 0.0)
            if mass <= 0.0:
                return 0.0
            numerator *= mass
        denominator = 1.0
        for positions, table in self._sep_tables:
            mass = table.get(tuple(row[i] for i in positions), 0.0)
            if mass <= 0.0:
                # Impossible when some bag containing the separator has
                # positive mass, but keep the evaluation total.
                return 0.0
            denominator *= mass
        return numerator / denominator

    def sample(self, n: int, rng) -> Relation:
        """Draw ``n`` tuples i.i.d. from ``P^T`` and return them as a relation.

        Duplicates collapse (a relation is a set), so the result may have
        fewer than ``n`` rows; use :meth:`sample_rows` for the raw draws.
        """
        rows = self.sample_rows(n, rng)
        schema = RelationSchema.from_names(self._attributes)
        return Relation(schema, rows, validate=False)

    def sample_rows(self, n: int, rng) -> list[Row]:
        """Draw ``n`` raw tuples i.i.d. from ``P^T`` (ancestral sampling).

        Samples the root bag from its marginal, then walks the join tree
        sampling each child bag conditionally on its separator value —
        linear in the tree size per tuple, no materialization.

        Parameters
        ----------
        n:
            Number of draws.
        rng:
            A ``numpy.random.Generator``.
        """
        if n <= 0:
            raise DistributionError(f"sample size must be positive, got {n}")
        order = self._tree.dfs_order()
        parent = self._tree.parents()

        # Precompute per-node marginal tables and, for non-root nodes,
        # conditional tables keyed by separator value.
        bag_orders = {
            node: self._base.canonical_order(self._tree.bag(node))
            for node in self._tree.node_ids()
        }
        root = order[0]
        root_items = list(self._base.marginal_probs(bag_orders[root]).items())
        conditionals: dict[int, dict[Row, list[tuple[Row, float]]]] = {}
        for node in order[1:]:
            p = parent[node]
            separator = self._tree.bag(node) & self._tree.bag(p)
            sep_order = self._base.canonical_order(separator) if separator else ()
            positions = tuple(bag_orders[node].index(a) for a in sep_order)
            table: dict[Row, list[tuple[Row, float]]] = {}
            for row, mass in self._base.marginal_probs(bag_orders[node]).items():
                key = tuple(row[i] for i in positions)
                table.setdefault(key, []).append((row, mass))
            conditionals[node] = table

        import numpy as np

        def draw(items: list[tuple[Row, float]]) -> Row:
            weights = np.asarray([m for _, m in items], dtype=np.float64)
            weights /= weights.sum()
            idx = rng.choice(len(items), p=weights)
            return items[idx][0]

        rows = []
        for _ in range(n):
            assignment: dict[str, object] = {}
            root_row = draw(root_items)
            assignment.update(zip(bag_orders[root], root_row))
            for node in order[1:]:
                p = parent[node]
                separator = self._tree.bag(node) & self._tree.bag(p)
                sep_order = (
                    self._base.canonical_order(separator) if separator else ()
                )
                key = tuple(assignment[a] for a in sep_order)
                choices = conditionals[node].get(key)
                if not choices:
                    # Impossible: separator values always come from the
                    # same base marginals.
                    raise DistributionError(
                        "internal error: separator value missing from child table"
                    )
                child_row = draw(choices)
                assignment.update(zip(bag_orders[node], child_row))
            rows.append(tuple(assignment[a] for a in self._attributes))
        return rows

    # ------------------------------------------------------------------
    def materialize(self, *, max_support: int = 2_000_000) -> EmpiricalDistribution:
        """Enumerate ``P^T``'s support and return it as an explicit distribution.

        The support is the natural join of the bag-marginal supports.  It
        is computed with the relational join machinery; a guard refuses to
        materialize supports larger than ``max_support``.
        """
        bag_relations = []
        for node in self._tree.node_ids():
            bag_order = self._base.canonical_order(self._tree.bag(node))
            marginal = self._base.marginal_probs(bag_order)
            schema = RelationSchema.from_names(bag_order)
            bag_relations.append(Relation(schema, marginal.keys(), validate=False))

        from repro.relations.join import natural_join_all

        joined = natural_join_all(bag_relations)
        if len(joined) > max_support:
            raise DistributionError(
                f"P^T support has {len(joined)} tuples; "
                f"refusing to materialize more than {max_support}"
            )
        positions = joined.schema.indices(self._attributes)
        probs: dict[Row, float] = {}
        for row in joined:
            full = tuple(row[i] for i in positions)
            mass = self.prob(full)
            if mass > 0.0:
                probs[full] = mass
        return EmpiricalDistribution(self._attributes, probs)


def junction_tree_factorization(
    source: EmpiricalDistribution | Relation, jointree: JoinTree
) -> FactorizedDistribution:
    """Build ``P^T`` from a distribution or directly from a relation."""
    if isinstance(source, Relation):
        source = EmpiricalDistribution.from_relation(source)
    return FactorizedDistribution(source, jointree)


def models_tree(
    source: EmpiricalDistribution | Relation,
    jointree: JoinTree,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Definition 2.2: whether ``P ⊨ T``.

    True iff every rooted-split conditional mutual information
    ``I(Ω_{1:i−1}; Ω_{i:m} | Δᵢ)`` vanishes.  By Proposition 3.1 this is
    equivalent to ``P = P^T``.
    """
    if isinstance(source, Relation):
        source = EmpiricalDistribution.from_relation(source)
    tree_attrs = jointree.attributes()
    if tree_attrs != frozenset(source.attributes):
        raise JoinTreeError(
            "join tree covers "
            f"{sorted(tree_attrs)} but the distribution has "
            f"{sorted(source.attributes)}"
        )
    for split in jointree.rooted_splits():
        cmi = distribution_conditional_mutual_information(
            source, split.prefix, split.suffix, split.separator
        )
        if cmi > tolerance:
            return False
    return True


def marginal_preservation_gaps(
    source: EmpiricalDistribution | Relation, jointree: JoinTree
) -> dict[str, float]:
    """Lemma 3.3 check: total-variation gaps between ``P`` and ``P^T`` marginals.

    Returns ``{"bags": max gap over bags, "separators": max gap over
    separators}``.  Both should be ~0 up to floating point; exposed for
    tests and diagnostics.  Requires materializing ``P^T`` (small inputs).
    """
    if isinstance(source, Relation):
        source = EmpiricalDistribution.from_relation(source)
    factorized = FactorizedDistribution(source, jointree).materialize()

    def max_gap(attr_sets: Iterable[frozenset[str]]) -> float:
        worst = 0.0
        for attrs in attr_sets:
            if not attrs:
                continue
            p_marg = source.marginal(attrs)
            q_marg = factorized.marginal(attrs)
            worst = max(worst, p_marg.total_variation(q_marg))
        return worst

    return {
        "bags": max_gap(jointree.bags()),
        "separators": max_gap(jointree.separators()),
    }

"""Functional entropy ``Ent(X) = E[X log X] − E[X] log E[X]`` (Eq. 53).

Not to be confused with Shannon entropy: the functional entropy of a
non-negative random variable is the quantity bounded by logarithmic
Sobolev inequalities (Boucheron–Lugosi–Massart, Ch. 5).  The paper uses it
to control how far Jensen's inequality is from equality in the proof of
Proposition 5.4.

Two evaluation modes:

* :func:`functional_entropy_exact` — exact for a finite distribution given
  as values and probabilities;
* :func:`functional_entropy_sample` — plug-in estimate from a sample.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import DistributionError


def _xlogx(values: np.ndarray) -> np.ndarray:
    """``x·log x`` with the continuous extension ``0·log 0 = 0``."""
    out = np.zeros_like(values, dtype=np.float64)
    positive = values > 0.0
    out[positive] = values[positive] * np.log(values[positive])
    return out


def functional_entropy_exact(
    values: Iterable[float], probabilities: Iterable[float]
) -> float:
    """``Ent(X)`` for a finite non-negative random variable.

    Parameters
    ----------
    values:
        The values ``X`` can take; must be non-negative.
    probabilities:
        Matching probabilities; must sum to 1.
    """
    x = np.asarray(list(values), dtype=np.float64)
    p = np.asarray(list(probabilities), dtype=np.float64)
    if x.shape != p.shape:
        raise DistributionError("values and probabilities must align")
    if x.size == 0:
        raise DistributionError("functional entropy of nothing is undefined")
    if np.any(x < 0):
        raise DistributionError("functional entropy needs non-negative values")
    if np.any(p < 0) or abs(float(p.sum()) - 1.0) > 1e-6:
        raise DistributionError("probabilities must be non-negative and sum to 1")
    mean = float((x * p).sum())
    e_xlogx = float((_xlogx(x) * p).sum())
    if mean <= 0.0:
        return 0.0
    return max(e_xlogx - mean * np.log(mean), 0.0)


def functional_entropy_sample(sample: Iterable[float]) -> float:
    """Plug-in ``Ent(X)`` estimate from an i.i.d.-style sample.

    Non-negativity of the estimate is guaranteed by Jensen (``t log t`` is
    convex); we clamp at zero against floating-point noise.
    """
    x = np.asarray(list(sample), dtype=np.float64)
    if x.size == 0:
        raise DistributionError("functional entropy of an empty sample is undefined")
    if np.any(x < 0):
        raise DistributionError("functional entropy needs non-negative values")
    mean = float(x.mean())
    if mean <= 0.0:
        return 0.0
    e_xlogx = float(_xlogx(x).mean())
    return max(e_xlogx - mean * np.log(mean), 0.0)

"""KL divergence and (conditional) mutual information.

Implements Eqs. 4–6 of the paper over empirical distributions and directly
over relation instances:

* ``D_KL(P‖Q) = Σ_x P(x) log(P(x)/Q(x))`` — :func:`kl_divergence`;
* ``I(A;B|C) = H(BC) + H(AC) − H(ABC) − H(C)`` —
  :func:`conditional_mutual_information`;
* ``I(A;B) = H(A) + H(B) − H(AB)`` — :func:`mutual_information`.

All values are in nats unless ``base`` is given.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import DistributionError
from repro.info.distribution import EmpiricalDistribution
from repro.info.engine import EntropyEngine
from repro.relations.relation import Relation


def kl_divergence(
    p: EmpiricalDistribution,
    q: EmpiricalDistribution,
    *,
    base: float | None = None,
) -> float:
    """``D_KL(P‖Q)`` between two distributions on the same attributes.

    Returns ``inf`` when ``P``'s support is not contained in ``Q``'s
    (absolute continuity fails).  Result is clamped at 0 to absorb
    floating-point noise.
    """
    if p.attributes != q.attributes:
        raise DistributionError(
            "KL divergence needs identical attribute layouts: "
            f"{list(p.attributes)} vs {list(q.attributes)}"
        )
    total = 0.0
    for row, p_mass in p.items():
        q_mass = q.prob(row)
        if q_mass <= 0.0:
            return math.inf
        total += p_mass * math.log(p_mass / q_mass)
    total = max(total, 0.0)
    if base is not None:
        total /= math.log(base)
    return total


def kl_divergence_to_callable(
    p: EmpiricalDistribution,
    q_prob,
    *,
    base: float | None = None,
) -> float:
    """``D_KL(P‖Q)`` where ``Q`` is given as a probability *function*.

    Used for factorized distributions (``P^T``) whose support is too large
    to materialize: only ``Q``'s values on ``P``'s support are needed.
    """
    total = 0.0
    for row, p_mass in p.items():
        q_mass = q_prob(row)
        if q_mass <= 0.0:
            return math.inf
        total += p_mass * math.log(p_mass / q_mass)
    total = max(total, 0.0)
    if base is not None:
        total /= math.log(base)
    return total


def mutual_information(
    relation: Relation,
    left: Iterable[str],
    right: Iterable[str],
    *,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> float:
    """``I(left; right)`` under the empirical distribution of ``relation``."""
    return conditional_mutual_information(
        relation, left, right, (), base=base, engine=engine
    )


def conditional_mutual_information(
    relation: Relation,
    left: Iterable[str],
    right: Iterable[str],
    given: Iterable[str],
    *,
    base: float | None = None,
    engine: EntropyEngine | None = None,
) -> float:
    """``I(left; right | given)`` via the four-entropy formula (Eq. 4).

    The attribute sets may overlap (Theorem 2.2 applies the measure to
    overlapping prefix/suffix unions); overlapping parts contribute their
    conditional entropy.  With empty ``given`` this is the plain mutual
    information.  Clamped at zero.

    The four entropies are served by the relation's memoizing
    :class:`~repro.info.engine.EntropyEngine` (or the explicitly supplied
    ``engine``), so repeated CMI queries over overlapping subsets — the
    discovery miner's hot path — share one entropy cache.
    """
    if engine is None:
        engine = EntropyEngine.for_relation(relation)
    return engine.cmi(left, right, given, base=base)


def distribution_conditional_mutual_information(
    dist: EmpiricalDistribution,
    left: Iterable[str],
    right: Iterable[str],
    given: Iterable[str] = (),
    *,
    base: float | None = None,
) -> float:
    """``I(left; right | given)`` for a general finite distribution.

    Same four-entropy formula as the relation-based variant, but marginal
    entropies come from the distribution's masses rather than counts.
    """
    left = set(left)
    right = set(right)
    given = set(given)
    if not left or not right:
        raise DistributionError("mutual information needs non-empty sides")

    def h(attrs: set[str]) -> float:
        if not attrs:
            return 0.0
        return dist.marginal(attrs).entropy()

    value = h(right | given) + h(left | given) - h(left | right | given) - h(given)
    value = max(value, 0.0)
    if base is not None:
        value /= math.log(base)
    return value


def interaction_deficit(
    relation: Relation,
    left: Iterable[str],
    right: Iterable[str],
    given: Iterable[str] = (),
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Whether ``left ⊥ right | given`` holds empirically (CMI ≈ 0)."""
    return (
        conditional_mutual_information(relation, left, right, given) <= tolerance
    )

"""Factorized decomposition pipeline: project, reduce, measure, persist.

The paper's end-to-end story in one module: given a universal relation
and a join tree (user-supplied or mined), materialize the acyclic
decomposition ``{R[Ωᵢ]}``, run Yannakakis' full semijoin reduction over
the columnar backend, measure exactly what the factorization costs — a
:class:`DecompositionReport` with ``J`` in both forms, ``ρ``, the
per-split CMIs of Theorem 2.2, the spurious-tuple count from the
message-passing join counter, and the storage footprint — and optionally
write the whole thing to disk as one CSV per bag plus a JSON report.

All measurement flows through the relation's shared
:class:`~repro.core.evalcontext.EvalContext`, so decomposing after
mining (or analyzing after decomposing) re-uses every entropy and join
size already paid for.

>>> import numpy as np
>>> from repro.datasets.synthetic import planted_mvd_relation
>>> from repro.jointrees.build import jointree_from_schema
>>> r = planted_mvd_relation(6, 6, 4, np.random.default_rng(0))
>>> dec = decompose(r, jointree_from_schema([{"A", "C"}, {"B", "C"}]))
>>> dec.report.spurious == 0 and reconstruct(dec) == r
True
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.evalcontext import EvalContext
from repro.core.jmeasure import j_measure, j_measure_kl, support_cmis
from repro.errors import ReproError
from repro.jointrees.jointree import JoinTree
from repro.jointrees.metrics import (
    TreeMetrics,
    compression_ratio,
    storage_cells,
    tree_metrics,
)
from repro.relations.io import write_csv
from repro.relations.relation import Relation
from repro.relations.semijoin import full_reduce, projections_for_tree
from repro.relations.yannakakis import evaluate_acyclic_join

__all__ = [
    "BagTable",
    "Decomposition",
    "DecompositionReport",
    "decompose",
    "discover_and_decompose",
    "reconstruct",
    "write_decomposition",
]


@dataclass(frozen=True)
class DecompositionReport:
    """Everything the paper says about one materialized decomposition.

    All information quantities are in nats.  ``spurious`` and
    ``join_size`` come from the message-passing counter
    (:func:`~repro.relations.join.acyclic_join_size`), never from a
    materialized join.
    """

    n_rows: int
    n_cols: int
    schema: tuple[tuple[str, ...], ...]
    j_measure: float
    j_kl: float
    rho: float
    spurious: int
    join_size: int
    split_cmis: tuple[float, ...]
    storage_cells: int
    compression_ratio: float
    metrics: TreeMetrics

    @property
    def lossless(self) -> bool:
        """Whether the AJD holds exactly (no spurious tuples)."""
        return self.spurious == 0

    def to_dict(self) -> dict:
        """JSON-ready view (merged into the CLI's shared report schema)."""
        return {
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "schema": [list(bag) for bag in self.schema],
            # Same shape as `mine --json`'s bags (attribute-name lists),
            # so the report family stays uniformly consumable.
            "bags": [list(bag) for bag in self.schema],
            "j_measure": self.j_measure,
            "j_kl": self.j_kl,
            "rho": self.rho,
            "spurious": self.spurious,
            "join_size": self.join_size,
            "lossless": self.lossless,
            "split_cmis": list(self.split_cmis),
            "storage_cells": self.storage_cells,
            "compression_ratio": self.compression_ratio,
            "tree": {
                "num_bags": self.metrics.num_bags,
                "width": self.metrics.width,
                "max_separator_size": self.metrics.max_separator_size,
                "diameter": self.metrics.diameter,
            },
        }


@dataclass(frozen=True)
class BagTable:
    """One materialized (and fully reduced) bag of the decomposition."""

    node: int
    attributes: tuple[str, ...]
    relation: Relation


@dataclass(frozen=True)
class Decomposition:
    """A materialized factorized instance plus its measured report."""

    jointree: JoinTree
    bags: tuple[BagTable, ...]
    report: DecompositionReport
    attribute_order: tuple[str, ...]


def decompose(
    relation: Relation,
    jointree: JoinTree,
    *,
    context: EvalContext | None = None,
) -> Decomposition:
    """Materialize and measure the decomposition of ``relation`` by ``jointree``.

    Projects every bag, applies Yannakakis' full semijoin reduction
    (a provable no-op for projections of one instance — running it keeps
    the pipeline honest for arbitrary inputs and costs two columnar
    sweeps), and assembles the :class:`DecompositionReport` from the
    shared evaluation context.
    """
    tree_attrs = jointree.attributes()
    if tree_attrs != relation.schema.name_set:
        raise ReproError(
            f"decomposition needs χ(T) = Ω; tree covers {sorted(tree_attrs)} "
            f"but the relation has {sorted(relation.schema.name_set)}"
        )
    if relation.is_empty():
        raise ReproError("cannot decompose an empty relation")
    if context is None:
        context = EvalContext.for_relation(relation)
    reduced = full_reduce(projections_for_tree(relation, jointree), jointree)
    join_size = context.join_size(jointree)
    report = DecompositionReport(
        n_rows=len(relation),
        n_cols=relation.schema.arity,
        schema=tuple(sorted(tuple(sorted(bag)) for bag in jointree.schema())),
        j_measure=j_measure(relation, jointree, engine=context.engine),
        j_kl=j_measure_kl(relation, jointree),
        rho=context.spurious_loss(jointree),
        spurious=join_size - len(relation),
        join_size=join_size,
        split_cmis=tuple(
            term.cmi
            for term in support_cmis(relation, jointree, engine=context.engine)
        ),
        storage_cells=storage_cells(relation, jointree, context=context),
        compression_ratio=compression_ratio(relation, jointree, context=context),
        metrics=tree_metrics(jointree),
    )
    bags = tuple(
        BagTable(
            node=node,
            attributes=reduced[node].schema.names,
            relation=reduced[node],
        )
        for node in jointree.node_ids()
    )
    return Decomposition(
        jointree=jointree,
        bags=bags,
        report=report,
        attribute_order=relation.schema.names,
    )


def discover_and_decompose(
    relation: Relation,
    *,
    strategy: str = "recursive",
    threshold: float = 1e-9,
    max_separator_size: int = 2,
    workers: int | None = None,
    deadline: float | None = None,
    deadline_at: float | None = None,
    seed: int = 0,
    backend: "object | None" = None,
):
    """Mine a low-J schema, then decompose and measure it in one call.

    Returns ``(decomposition, mined)`` where ``mined`` is the
    :class:`~repro.discovery.miner.MinedSchema`.  The mining run and the
    decomposition report share the relation's entropy memo and join-size
    cache, so the measurement step is nearly free after the search.

    ``backend`` steers the *mining* phase only (as with the CLI's
    ``decompose --backend``): the materialized decomposition and its
    report always measure with the exact engine.  ``deadline`` /
    ``deadline_at`` bound the mining search the way
    :func:`~repro.discovery.miner.mine_jointree` does.
    """
    from repro.discovery.miner import mine_jointree

    mined = mine_jointree(
        relation,
        threshold=threshold,
        max_separator_size=max_separator_size,
        strategy=strategy,
        workers=workers,
        deadline=deadline,
        deadline_at=deadline_at,
        seed=seed,
        backend=backend,
    )
    return decompose(relation, mined.jointree), mined


def reconstruct(decomposition: Decomposition) -> Relation:
    """Re-join the bags with Yannakakis' algorithm (columns re-aligned).

    This materializes exactly the join whose *size* the report counts;
    use it only when ``report.join_size`` is small enough to hold.  For a
    lossless decomposition the result equals the original relation.
    """
    joined = evaluate_acyclic_join(
        {bag.node: bag.relation for bag in decomposition.bags},
        decomposition.jointree,
    )
    return joined.reorder(decomposition.attribute_order)


def _bag_filename(index: int, attributes: tuple[str, ...]) -> str:
    """Deterministic, filesystem-safe CSV name for one bag."""
    safe = "_".join(
        re.sub(r"[^A-Za-z0-9_-]", "", attr) or "col" for attr in attributes
    )
    return f"bag_{index}_{safe}.csv"


def write_decomposition(
    decomposition: Decomposition,
    out_dir: str | Path,
    *,
    report_extra: dict | None = None,
) -> dict[str, Path]:
    """Persist a decomposition: one CSV per bag plus ``report.json``.

    ``report.json`` always satisfies the CLI's shared report schema
    (:mod:`repro.factorize.report`): the core fields default to
    ``command="decompose"``, ``strategy=None``, and ``wall_time_s=0.0``
    (library callers have no end-to-end clock; the CLI overrides all
    three).  ``bags`` keeps the family-wide shape (a list of
    attribute-name lists, as in ``mine --json``); the per-file details
    live under ``bag_files``.  ``report_extra`` entries are merged over
    the payload last.  Returns the written paths keyed by ``"report"``
    and each bag's filename.
    """
    from repro.factorize.report import base_report

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    bag_files = []
    for index, bag in enumerate(decomposition.bags):
        name = _bag_filename(index, bag.attributes)
        path = out / name
        write_csv(bag.relation, path)
        paths[name] = path
        bag_files.append(
            {"file": name, "attributes": list(bag.attributes), "rows": len(bag.relation)}
        )
    report = decomposition.report
    payload = base_report(
        command="decompose",
        strategy=None,
        j_measure=report.j_measure,
        rho=report.rho,
        wall_time_s=0.0,
        n_rows=report.n_rows,
        n_cols=report.n_cols,
    )
    payload.update(report.to_dict())
    payload["bag_files"] = bag_files
    if report_extra:
        payload.update(report_extra)
    report_path = out / "report.json"
    report_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    paths["report"] = report_path
    return paths

"""Shared machine-readable report schema for the CLI's JSON outputs.

``repro-ajd mine --json``, ``repro-ajd analyze --json``, and
``repro-ajd decompose`` all emit one JSON object built on a common core,
so downstream tooling can consume any of them uniformly:

==============  ======  =====================================================
field           type    meaning
==============  ======  =====================================================
``command``     str     which subcommand produced the report
``strategy``    str?    discovery strategy used (``null`` for a user schema)
``j_measure``   float   ``J`` of the evaluated schema, nats
``rho``         float   spurious-tuple loss ``ρ(R, S)``
``wall_time_s`` float   end-to-end wall time of the computation
``n_rows``      int     ``N = |R|``
``n_cols``      int     number of attributes
==============  ======  =====================================================

Commands append their own extra fields (bags, bounds, storage numbers);
extras are allowed by validation, missing/mistyped core fields are not.
:func:`validate_report` is what the test suite and the CI smoke job run
against the CLI's actual output.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ReproError

#: Core field → allowed types.  ``strategy`` is optional-by-value (null
#: when the schema was user-supplied), never absent.
REPORT_SCHEMA: dict[str, tuple[type, ...]] = {
    "command": (str,),
    "strategy": (str, type(None)),
    "j_measure": (int, float),
    "rho": (int, float),
    "wall_time_s": (int, float),
    "n_rows": (int,),
    "n_cols": (int,),
}


def base_report(
    *,
    command: str,
    strategy: str | None,
    j_measure: float,
    rho: float,
    wall_time_s: float,
    n_rows: int,
    n_cols: int,
) -> dict:
    """Assemble the shared core of a CLI JSON report."""
    return {
        "command": command,
        "strategy": strategy,
        "j_measure": float(j_measure),
        "rho": float(rho),
        "wall_time_s": float(wall_time_s),
        "n_rows": int(n_rows),
        "n_cols": int(n_cols),
    }


def validate_report(data: Mapping) -> None:
    """Check ``data`` against the shared report schema; raise on violation.

    Extra fields are fine (commands extend the core); missing core
    fields, wrong types, bools where numbers are expected, and negative
    sizes are reported together in one :class:`~repro.errors.ReproError`.
    """
    if not isinstance(data, Mapping):
        raise ReproError(f"report must be a JSON object, got {type(data).__name__}")
    problems = []
    for field, types in REPORT_SCHEMA.items():
        if field not in data:
            problems.append(f"missing field {field!r}")
            continue
        value = data[field]
        if isinstance(value, bool) or not isinstance(value, types):
            expected = "/".join(
                "null" if t is type(None) else t.__name__ for t in types
            )
            problems.append(
                f"field {field!r} should be {expected}, got {type(value).__name__}"
            )
    for field in ("n_rows", "n_cols"):
        value = data.get(field)
        if isinstance(value, int) and not isinstance(value, bool) and value < 0:
            problems.append(f"field {field!r} must be non-negative, got {value}")
    if problems:
        raise ReproError(
            "report fails the shared schema: " + "; ".join(problems)
        )

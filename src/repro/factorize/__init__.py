"""Factorized decomposition pipeline (project → reduce → measure → persist).

See :mod:`repro.factorize.pipeline` for the pipeline and
:mod:`repro.factorize.report` for the CLI's shared JSON report schema.
"""

from repro.factorize.pipeline import (
    BagTable,
    Decomposition,
    DecompositionReport,
    decompose,
    discover_and_decompose,
    reconstruct,
    write_decomposition,
)
from repro.factorize.report import REPORT_SCHEMA, base_report, validate_report

__all__ = [
    "BagTable",
    "Decomposition",
    "DecompositionReport",
    "REPORT_SCHEMA",
    "base_report",
    "decompose",
    "discover_and_decompose",
    "reconstruct",
    "validate_report",
    "write_decomposition",
]

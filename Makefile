# Developer entry points.  The repo is pure-Python (src layout); nothing
# needs building — targets just wire up PYTHONPATH consistently.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline bench-strategies bench-jmeasure \
	bench-streaming bench-service bench-store bench-cluster \
	bench-saturation bench-gate service-smoke chaos-smoke \
	saturation-smoke lint

## tier-1 suite (tests only; benchmarks are opt-in via `make bench`)
test:
	$(PYTHON) -m pytest tests -x -q

## full benchmark suite with comparison columns
bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-columns=mean,ops

## record the entropy-engine baseline JSON (see docs/performance.md)
bench-baseline:
	$(PYTHON) -m pytest benchmarks/test_bench_entropy_engine.py -q \
		--benchmark-json=BENCH_entropy_engine.json

## compare discovery strategies + serial vs multiprocessing scoring;
## appends a record to BENCH_discovery_strategies.json (see
## docs/architecture.md)
bench-strategies:
	$(PYTHON) -m pytest benchmarks/test_bench_strategies.py -q -s \
		--benchmark-columns=mean,ops

## engine-backed evaluation layer vs the pinned legacy paths at
## N=1e4/1e5; appends a record to BENCH_jmeasure.json (see
## docs/performance.md)
bench-jmeasure:
	$(PYTHON) -m pytest benchmarks/test_bench_jmeasure.py -q -s \
		--benchmark-disable

## streaming ingestion + sketch mining vs the eager path, peak-RSS and
## wall-clock at N=1e5 *and* N=1e6; appends a record to
## BENCH_streaming.json (see docs/performance.md)
bench-streaming:
	BENCH_STREAMING_FULL=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_streaming.py -q -s --benchmark-disable

## serving layer: cold-vs-warm HTTP latency + concurrent throughput
## against an in-process server; appends a record to BENCH_service.json
## (see docs/service.md)
bench-service:
	BENCH_SERVICE_FULL=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_service.py -q -s --benchmark-disable

## persistent columnar snapshots vs CSV re-ingest + batch-of-8 vs 8
## singleton jobs over HTTP; appends a record to BENCH_store.json (see
## docs/performance.md)
bench-store:
	BENCH_STORE_FULL=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_store.py -q -s --benchmark-disable

## multi-process scale-out: uncached mixed-dataset throughput at
## worker_procs 1/2/4 vs single-process; appends the cluster sweep
## tier to BENCH_service.json (see docs/service.md)
bench-cluster:
	BENCH_CLUSTER_SWEEP=1 $(PYTHON) -m pytest \
		benchmarks/test_bench_service.py -q -s -k cluster \
		--benchmark-disable

## boot a real `repro-ajd serve` subprocess and drive
## register -> mine -> decompose -> warm repeat over HTTP (the CI
## service-smoke job runs exactly this; see docs/service.md)
service-smoke:
	$(PYTHON) scripts/service_smoke.py

## boot a real server under a seeded fault plan (worker crash, torn
## spill, dropped responses) and assert the resilience invariants; the
## CI chaos-smoke job runs exactly this (see docs/robustness.md)
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py

## ramp concurrent clients against a warm in-process service until the
## p99 crosses the threshold (short CI ramp, no baseline recording);
## the CI saturation-smoke step runs exactly this and uploads the
## per-level latency table (see docs/observability.md)
saturation-smoke:
	$(PYTHON) scripts/saturation_load.py --smoke

## full saturation ramp (1..32 clients); appends the per-level
## p50/p95/p99 table + knee point to BENCH_service.json (see
## docs/observability.md)
bench-saturation:
	$(PYTHON) scripts/saturation_load.py --record

## benchmark-regression gate: re-run smoke benches and compare against
## the committed BENCH_*.json baselines (>2x degradation fails); the CI
## bench-gate job runs exactly this (see docs/ci.md)
bench-gate:
	$(PYTHON) benchmarks/check_regression.py

## byte-compile + import smoke check (no third-party linter is vendored
## in the runtime image; swap in ruff/flake8 here when available)
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples scripts
	$(PYTHON) -c "import repro, repro.info, repro.relations, repro.discovery, repro.service"

"""Setup shim.

Kept so `pip install -e . --no-use-pep517` (legacy editable install) works
in offline environments whose setuptools lacks the `wheel` package needed
for PEP 660 editable wheels.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

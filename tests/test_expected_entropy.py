"""Unit tests for repro.concentration.expected_entropy (exact E[H], E[I])."""

import math

import numpy as np
import pytest

from repro.concentration.expected_entropy import (
    exact_expected_entropy,
    exact_expected_mi,
    proposition_54_exact,
)
from repro.core.random_relations import random_relation
from repro.errors import BoundConditionError
from repro.info.divergence import mutual_information
from repro.info.entropy import joint_entropy


class TestExactExpectedEntropy:
    def test_full_grid_is_deterministic(self):
        # η = d_A·d_B: every cell present, H(A) = log d_A exactly.
        assert exact_expected_entropy(5, 4, 20) == pytest.approx(math.log(5))

    def test_single_tuple(self):
        # η = 1: one row occupied, H(A) = 0.
        assert exact_expected_entropy(5, 4, 1) == pytest.approx(0.0)

    def test_matches_simulation(self, rng):
        d_a, d_b, eta = 20, 15, 150
        exact = exact_expected_entropy(d_a, d_b, eta)
        sims = [
            joint_entropy(
                random_relation({"A": d_a, "B": d_b}, eta, rng), ["A"]
            )
            for _ in range(400)
        ]
        assert exact == pytest.approx(float(np.mean(sims)), abs=0.01)

    def test_bounded_by_log_da(self):
        for eta in (10, 100, 400):
            assert exact_expected_entropy(20, 20, eta) <= math.log(20) + 1e-12

    def test_monotone_in_eta(self):
        values = [exact_expected_entropy(20, 20, eta) for eta in (20, 80, 320)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(BoundConditionError):
            exact_expected_entropy(0, 4, 1)
        with pytest.raises(BoundConditionError):
            exact_expected_entropy(4, 4, 17)


class TestExactExpectedMI:
    def test_full_grid_zero_mi(self):
        assert exact_expected_mi(4, 5, 20) == pytest.approx(0.0, abs=1e-12)

    def test_matches_simulation(self, rng):
        d, eta = 25, 250
        exact = exact_expected_mi(d, d, eta)
        sims = [
            mutual_information(
                random_relation({"A": d, "B": d}, eta, rng), ["A"], ["B"]
            )
            for _ in range(200)
        ]
        assert exact == pytest.approx(float(np.mean(sims)), abs=0.02)

    def test_below_ceiling(self):
        # E[I] <= log(1 + rho-bar) always (I is a.s. below the ceiling).
        d, eta = 40, 800
        assert exact_expected_mi(d, d, eta) <= math.log(d * d / eta) + 1e-12

    def test_figure1_convergence(self):
        # The exact expected curve reproduces Figure 1's shape without
        # any sampling: the gap to log(1+rho) shrinks in d.
        gaps = []
        for d in (50, 100, 200):
            n = round(d * d / 1.1)
            gaps.append(math.log(d * d / n) - exact_expected_mi(d, d, n))
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 5e-4


class TestProposition54Exact:
    def test_holds_in_regime(self):
        # d_A = d_B = 16, η = 60·16 = 960 <= 256: in regime and true.
        report = proposition_54_exact(16, 16, 16 * 16)
        # η = 256 < 60·16 → out of regime, but the inequality still holds.
        assert report.proposition_holds

    def test_holds_on_grid(self):
        for d_a, d_b in ((12, 12), (16, 8), (20, 5)):
            for frac in (0.25, 0.5, 0.9):
                eta = max(1, int(frac * d_a * d_b))
                report = proposition_54_exact(d_a, d_b, eta)
                assert report.deficit >= -1e-9
                if report.in_regime:
                    assert report.proposition_holds

    def test_deficit_vanishes_when_dense(self):
        sparse = proposition_54_exact(16, 16, 64).deficit
        dense = proposition_54_exact(16, 16, 240).deficit
        assert dense < sparse

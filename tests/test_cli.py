"""End-to-end tests for the repro-ajd CLI."""

import json

import pytest

from repro.cli import _parse_schema, build_parser, main
from repro.errors import ReproError
from repro.factorize.report import validate_report


@pytest.fixture()
def table_csv(tmp_path):
    path = tmp_path / "table.csv"
    # A relation satisfying C ↠ A|B exactly: each c-class is a product.
    lines = ["A,B,C"]
    for c in (0, 1):
        for a in (0, 1):
            for b in (0, 1):
                lines.append(f"{a + 2 * c},{b},{c}")
    path.write_text("\n".join(lines) + "\n")
    return path


class TestParseSchema:
    def test_basic(self):
        assert _parse_schema("A,B;B,C") == [{"A", "B"}, {"B", "C"}]

    def test_whitespace_tolerated(self):
        assert _parse_schema(" A , B ; C ") == [{"A", "B"}, {"C"}]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            _parse_schema(" ; ")


class TestAnalyzeCommand:
    def test_lossless_schema(self, table_csv, capsys):
        code = main(["analyze", str(table_csv), "--schema", "A,C;B,C"])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss rho(R,S)            : 0" in out
        assert "J-measure (entropy form) : 0" in out

    def test_with_delta(self, table_csv, capsys):
        code = main(
            ["analyze", str(table_csv), "--schema", "A,C;B,C", "--delta", "0.1"]
        )
        assert code == 0
        assert "Prop 5.3" in capsys.readouterr().out

    def test_cyclic_schema_fails_cleanly(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", str(table_csv), "--schema", "A,B;B,C;A,C"])
        assert excinfo.value.code == 2
        assert "cyclic" in capsys.readouterr().err

    def test_json_output_matches_shared_schema(self, table_csv, capsys):
        code = main(["analyze", str(table_csv), "--schema", "A,C;B,C", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["command"] == "analyze"
        assert payload["strategy"] is None
        assert payload["rho"] == 0.0
        assert payload["n_rows"] == 8
        assert payload["n_cols"] == 3
        assert payload["sandwich"]["holds"] is True

    def test_json_with_delta_includes_probabilistic(self, table_csv, capsys):
        code = main(
            [
                "analyze",
                str(table_csv),
                "--schema",
                "A,C;B,C",
                "--delta",
                "0.1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "probabilistic" in payload


class TestMineCommand:
    def test_mines_lossless_schema(self, table_csv, capsys):
        # In this table B is independent of (A, C), so the miner may find
        # a refinement of the planted C ↠ A|B; it must be lossless.
        code = main(["mine", str(table_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "{A, C}" in out
        assert "J-measure: 0" in out
        assert "loss rho : 0" in out

    def test_threshold_flag(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--threshold", "0.5"])
        assert code == 0
        assert "mined schema" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "strategy", ["recursive", "beam", "greedy-agglomerative", "anytime"]
    )
    def test_strategy_flag(self, strategy, table_csv, capsys):
        code = main(["mine", str(table_csv), "--strategy", strategy])
        assert code == 0
        out = capsys.readouterr().out
        assert f"mined schema ({strategy})" in out
        assert "J-measure" in out

    def test_unknown_strategy_rejected_by_parser(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(table_csv), "--strategy", "quantum"])
        assert excinfo.value.code == 2

    def test_workers_flag(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--workers", "2"])
        assert code == 0
        assert "mined schema" in capsys.readouterr().out

    def test_deadline_flag(self, table_csv, capsys):
        # A generous deadline changes nothing on a tiny table.
        code = main(["mine", str(table_csv), "--deadline", "60", "--seed", "3"])
        assert code == 0
        assert "{A, C}" in capsys.readouterr().out

    def test_empty_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,C\n")  # header only, no data rows
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no data rows" in err
        assert "Traceback" not in err

    def test_one_column_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "narrow.csv"
        path.write_text("A\n1\n2\n3\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "at least two" in err
        assert "Traceback" not in err

    def test_headerless_empty_file_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "void.csv"
        path.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        assert "header row is required" in capsys.readouterr().err

    def test_missing_file_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "does-not-exist.csv"
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "Traceback" not in err

    def test_binary_garbage_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.csv"
        path.write_bytes(b"\xff\xfe\x00\x01binary\x00soup\x9c")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_ragged_rows_exit_cleanly(self, tmp_path, capsys):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\n1,2\n3,4,5\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        assert "fields" in capsys.readouterr().err

    def test_json_output_matches_shared_schema(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["command"] == "mine"
        assert payload["strategy"] == "recursive"
        assert ["A", "C"] in payload["bags"]
        assert payload["rho"] == 0.0


class TestDecomposeCommand:
    def test_writes_bags_and_valid_report(self, table_csv, tmp_path, capsys):
        out_dir = tmp_path / "decomp"
        code = main(
            [
                "decompose",
                str(table_csv),
                "--strategy",
                "beam",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        validate_report(stdout_payload)
        assert stdout_payload["command"] == "decompose"
        assert stdout_payload["strategy"] == "beam"

        report = json.loads((out_dir / "report.json").read_text())
        assert report["spurious"] == 0
        # `bags` keeps the family-wide shape (attribute lists, as in
        # mine --json); file details live under `bag_files`.
        assert all(isinstance(bag, list) for bag in report["bags"])
        bag_files = [entry["file"] for entry in report["bag_files"]]
        assert len(bag_files) >= 2
        for name in bag_files:
            assert (out_dir / name).exists()

    def test_roundtrip_reproduces_distinct_tuples(self, table_csv, tmp_path):
        from repro.jointrees.jointree import JoinTree
        from repro.relations.io import read_csv
        from repro.relations.yannakakis import evaluate_acyclic_join

        out_dir = tmp_path / "decomp"
        main(
            [
                "decompose",
                str(table_csv),
                "--strategy",
                "beam",
                "--out-dir",
                str(out_dir),
            ]
        )
        report = json.loads((out_dir / "report.json").read_text())
        bags = {
            i: frozenset(entry["attributes"])
            for i, entry in enumerate(report["bag_files"])
        }
        relations = {
            i: read_csv(out_dir / entry["file"])
            for i, entry in enumerate(report["bag_files"])
        }
        # Rebuild a join tree over the written bags (schema is acyclic).
        from repro.jointrees.build import jointree_from_schema

        tree = jointree_from_schema(list(bags.values()))
        keyed = {
            node: next(
                rel
                for rel in relations.values()
                if rel.schema.name_set == tree.bag(node)
            )
            for node in tree.node_ids()
        }
        rejoined = evaluate_acyclic_join(keyed, tree)
        original = read_csv(table_csv)
        assert rejoined.reorder(original.schema.names).rows() == original.rows()

    def test_explicit_schema_reports_null_strategy(self, table_csv, capsys):
        code = main(["decompose", str(table_csv), "--schema", "A,C;B,C"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["strategy"] is None
        assert payload["schema"] == [["A", "C"], ["B", "C"]]
        assert payload["lossless"] is True

    def test_lossy_schema_reports_spurious(self, table_csv, capsys):
        code = main(["decompose", str(table_csv), "--schema", "A,B;B,C"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spurious"] > 0
        assert payload["rho"] == payload["spurious"] / payload["n_rows"]

    def test_empty_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,C\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["decompose", str(path)])
        assert excinfo.value.code == 2
        assert "no data rows" in capsys.readouterr().err

    def test_unwritable_out_dir_exits_cleanly(self, table_csv, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "decompose",
                    str(table_csv),
                    "--schema",
                    "A,C;B,C",
                    "--out-dir",
                    str(blocker / "nested"),
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot write decomposition" in err
        assert "Traceback" not in err

    def test_schema_rejects_contradictory_mining_flags(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "decompose",
                    str(table_csv),
                    "--schema",
                    "A,C;B,C",
                    "--strategy",
                    "beam",
                    "--workers",
                    "4",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--strategy" in err and "--workers" in err


class TestStreamingAndBackendFlags:
    def test_mine_chunked_matches_eager(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--json"])
        assert code == 0
        eager = json.loads(capsys.readouterr().out)
        code = main(["mine", str(table_csv), "--chunk-rows", "3", "--json"])
        assert code == 0
        chunked = json.loads(capsys.readouterr().out)
        assert chunked["bags"] == eager["bags"]
        assert chunked["j_measure"] == eager["j_measure"]
        assert chunked["rho"] == eager["rho"]
        assert chunked["backend"] == "exact"

    def test_mine_sketch_backend(self, table_csv, capsys):
        code = main(
            [
                "mine",
                str(table_csv),
                "--backend",
                "sketch",
                "--chunk-rows",
                "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["backend"] == "sketch"
        # The planted C ↠ A|B split survives sketch scoring, and the
        # streamed ρ estimate is exact here (single split, tiny table).
        assert ["A", "C"] in payload["bags"]
        assert payload["rho"] == 0.0

    def test_analyze_sketch_backend(self, table_csv, capsys):
        code = main(
            [
                "analyze",
                str(table_csv),
                "--schema",
                "A,C;B,C",
                "--backend",
                "sketch",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["backend"] == "sketch"
        assert payload["rho"] == 0.0  # join counting stays exact in analyze

    def test_decompose_sketch_steers_mining_only(self, table_csv, capsys):
        code = main(
            ["decompose", str(table_csv), "--backend", "sketch"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["backend"] == "sketch"
        assert payload["lossless"] is True  # report itself is exact

    def test_decompose_schema_conflicts_with_backend(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "decompose",
                    str(table_csv),
                    "--schema",
                    "A,C;B,C",
                    "--backend",
                    "sketch",
                ]
            )
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_parser(self, table_csv):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(table_csv), "--backend", "quantum"])
        assert excinfo.value.code == 2

    def test_bad_chunk_rows_exits_cleanly(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(table_csv), "--chunk-rows", "0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "chunk_rows" in err
        assert "Traceback" not in err

    def test_chunked_nul_byte_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "nul.csv"
        path.write_bytes(b"A,B\n1,\x002\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path), "--chunk-rows", "2"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "NUL byte" in err
        assert "Traceback" not in err

    def test_chunked_truncated_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "truncated.csv"
        path.write_text("A,B,C\n1,2,3\n4,5")  # cut mid-row
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "mine",
                    str(path),
                    "--backend",
                    "sketch",
                    "--chunk-rows",
                    "1",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fields" in err
        assert "Traceback" not in err


class TestExitCodeContract:
    """Conventional exit codes: 0 for --help, 2 for usage errors.

    Service smoke scripts drive the CLI from shell and rely on exactly
    this contract; these tests pin it for every subcommand.
    """

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "command",
        ["analyze", "mine", "decompose", "serve", "experiment", "version"],
    )
    def test_subcommand_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_unknown_subcommand_exits_two_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "frobnicate" in err

    def test_no_arguments_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_flag_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", "whatever.csv", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_process_level_codes(self, tmp_path):
        """The `python -m repro.cli` process observes the same contract."""
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"

        def run(*argv):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            ).returncode

        assert run("--help") == 0
        assert run("serve", "--help") == 0
        assert run("frobnicate") == 2
        assert run() == 2


class TestServeCommand:
    def test_parser_accepts_service_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--workers", "3",
                "--memory-budget-mb", "64",
                "--spill-dir", "/tmp/spill",
                "--max-queue", "8",
                "--preload", "a.csv",
                "--preload", "b.csv",
            ]
        )
        assert args.port == 0
        assert args.workers == 3
        assert args.memory_budget_mb == 64
        assert args.spill_dir == "/tmp/spill"
        assert args.max_queue == 8
        assert args.preload == ["a.csv", "b.csv"]

    def test_bad_config_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", "99999"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "port" in err
        assert "Traceback" not in err

    def test_port_in_use_exits_two(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            with pytest.raises(SystemExit) as excinfo:
                main(["serve", "--port", str(port)])
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "cannot bind" in err
            assert "Traceback" not in err
        finally:
            blocker.close()

    def test_preload_missing_file_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "serve",
                    "--port", "0",
                    "--preload", str(tmp_path / "missing.csv"),
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "Traceback" not in err


class TestOtherCommands:
    def test_version(self, capsys):
        import repro

        assert main(["version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "E2"]) == 0
        assert "Example 4.1" in capsys.readouterr().out

    def test_unknown_experiment_lists_valid_ids(self, capsys):
        assert main(["experiment", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        # The error enumerates every valid id with its description.
        for key in ("E1", "E8", "E10"):
            assert key in err
        assert "Figure 1" in err
        assert "Traceback" not in err

    def test_runner_main_unknown_id(self, capsys):
        from repro.experiments import runner

        assert runner.main(["nope"]) == 2
        assert "known ids" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSnapshotCommand:
    def test_writes_loadable_snapshot(self, table_csv, tmp_path, capsys):
        from repro.relations.io import read_csv
        from repro.relations.relation import Relation

        out = tmp_path / "table.snap"
        code = main(["snapshot", str(table_csv), str(out)])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["command"] == "snapshot"
        assert report["out"] == str(out)
        eager = read_csv(table_csv)
        assert report["fingerprint"] == eager.fingerprint()
        assert report["n_rows"] == len(eager)
        assert report["n_cols"] == eager.schema.arity
        reloaded = Relation.load_snapshot(out)
        assert reloaded.fingerprint() == eager.fingerprint()
        assert reloaded.rows() == eager.rows()

    def test_streamed_ingest_same_snapshot(self, table_csv, tmp_path, capsys):
        out_eager = tmp_path / "eager.snap"
        out_streamed = tmp_path / "streamed.snap"
        assert main(["snapshot", str(table_csv), str(out_eager)]) == 0
        eager_fp = json.loads(capsys.readouterr().out)["fingerprint"]
        assert (
            main(
                [
                    "snapshot",
                    str(table_csv),
                    str(out_streamed),
                    "--chunk-rows",
                    "3",
                ]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["fingerprint"] == eager_fp

    def test_missing_csv_exits_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["snapshot", str(tmp_path / "nope.csv"), str(tmp_path / "o")])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_unwritable_out_exits_cleanly(self, table_csv, tmp_path, capsys):
        # the out path's parent does not exist and cannot be created
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["snapshot", str(table_csv), str(blocker / "nested" / "snap")]
            )
        assert excinfo.value.code == 2

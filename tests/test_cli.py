"""End-to-end tests for the repro-ajd CLI."""

import pytest

from repro.cli import _parse_schema, build_parser, main
from repro.errors import ReproError


@pytest.fixture()
def table_csv(tmp_path):
    path = tmp_path / "table.csv"
    # A relation satisfying C ↠ A|B exactly: each c-class is a product.
    lines = ["A,B,C"]
    for c in (0, 1):
        for a in (0, 1):
            for b in (0, 1):
                lines.append(f"{a + 2 * c},{b},{c}")
    path.write_text("\n".join(lines) + "\n")
    return path


class TestParseSchema:
    def test_basic(self):
        assert _parse_schema("A,B;B,C") == [{"A", "B"}, {"B", "C"}]

    def test_whitespace_tolerated(self):
        assert _parse_schema(" A , B ; C ") == [{"A", "B"}, {"C"}]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            _parse_schema(" ; ")


class TestAnalyzeCommand:
    def test_lossless_schema(self, table_csv, capsys):
        code = main(["analyze", str(table_csv), "--schema", "A,C;B,C"])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss rho(R,S)            : 0" in out
        assert "J-measure (entropy form) : 0" in out

    def test_with_delta(self, table_csv, capsys):
        code = main(
            ["analyze", str(table_csv), "--schema", "A,C;B,C", "--delta", "0.1"]
        )
        assert code == 0
        assert "Prop 5.3" in capsys.readouterr().out

    def test_cyclic_schema_fails_cleanly(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", str(table_csv), "--schema", "A,B;B,C;A,C"])
        assert excinfo.value.code == 2
        assert "cyclic" in capsys.readouterr().err


class TestMineCommand:
    def test_mines_lossless_schema(self, table_csv, capsys):
        # In this table B is independent of (A, C), so the miner may find
        # a refinement of the planted C ↠ A|B; it must be lossless.
        code = main(["mine", str(table_csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "{A, C}" in out
        assert "J-measure: 0" in out
        assert "loss rho : 0" in out

    def test_threshold_flag(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--threshold", "0.5"])
        assert code == 0
        assert "mined schema" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "strategy", ["recursive", "beam", "greedy-agglomerative", "anytime"]
    )
    def test_strategy_flag(self, strategy, table_csv, capsys):
        code = main(["mine", str(table_csv), "--strategy", strategy])
        assert code == 0
        out = capsys.readouterr().out
        assert f"mined schema ({strategy})" in out
        assert "J-measure" in out

    def test_unknown_strategy_rejected_by_parser(self, table_csv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(table_csv), "--strategy", "quantum"])
        assert excinfo.value.code == 2

    def test_workers_flag(self, table_csv, capsys):
        code = main(["mine", str(table_csv), "--workers", "2"])
        assert code == 0
        assert "mined schema" in capsys.readouterr().out

    def test_deadline_flag(self, table_csv, capsys):
        # A generous deadline changes nothing on a tiny table.
        code = main(["mine", str(table_csv), "--deadline", "60", "--seed", "3"])
        assert code == 0
        assert "{A, C}" in capsys.readouterr().out

    def test_empty_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,C\n")  # header only, no data rows
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no data rows" in err
        assert "Traceback" not in err

    def test_one_column_csv_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "narrow.csv"
        path.write_text("A\n1\n2\n3\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "at least two" in err
        assert "Traceback" not in err

    def test_headerless_empty_file_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "void.csv"
        path.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", str(path)])
        assert excinfo.value.code == 2
        assert "header row is required" in capsys.readouterr().err


class TestOtherCommands:
    def test_version(self, capsys):
        import repro

        assert main(["version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "E2"]) == 0
        assert "Example 4.1" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
